//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace.
//!
//! The build environment has no route to a crate registry, so the workspace
//! vendors the few primitives it needs: a seedable [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`RngExt`] sampling trait
//! (`random` / `random_range`), and [`seq::SliceRandom`] for in-place
//! Fisher–Yates shuffles. The API mirrors `rand` 0.9, with one deliberate
//! rename: the sampling trait is called [`RngExt`] here (real `rand` calls
//! it `Rng`) so the stand-in is never mistaken for the real crate. To swap
//! the real crate back in, point the root `Cargo.toml` at crates.io *and*
//! rename the `use rand::RngExt` imports to `use rand::Rng`.
//!
//! Determinism is part of the contract: every generator in this workspace is
//! seeded (`seed_from_u64`), and the test suite asserts bit-for-bit
//! reproducibility of generated graphs, so the stream produced here must
//! stay stable across releases.

/// A type that can be created from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (the expansion `rand` itself uses for
    /// small seeds).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling helpers layered over a raw `u64` stream.
///
/// This is the stand-in for `rand::Rng`, deliberately named `RngExt` so
/// the stand-in is never mistaken for the real trait (see the crate docs
/// for the swap-back procedure).
pub trait RngExt {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (see [`Random`] for the
    /// supported types; `f64` is uniform on `[0, 1)`).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform value in `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Types [`RngExt::random`] can produce.
pub trait Random: Sized {
    /// Samples one value uniformly from the type's natural domain.
    fn random<R: RngExt>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngExt>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize);

impl Random for bool {
    fn random<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn random<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_one<R: RngExt>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngExt>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngExt>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Maps a raw 64-bit draw onto `[0, span)` without `u128` bias tricks:
/// Lemire's multiply-shift reduction, unbiased enough for test workloads.
fn reduce(raw: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((raw as u128 * span as u128) >> 64) as u64
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngExt, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman/Vigna), state
    /// expanded from the seed with SplitMix64. Not cryptographically secure
    /// — none of the algorithms here need that — but fast, small, and with
    /// a stable, documented stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a stream
        /// mid-flight. Restoring it with [`StdRng::from_state`] resumes the
        /// stream exactly where it was captured — the primitive under the
        /// workspace's crash-recovery checkpoints, where a resumed run must
        /// draw the identical tie-break nonces an uninterrupted run would.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngExt;

    /// In-place random reordering and choice for slices.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngExt>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngExt>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngExt>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngExt>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(0..1);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        // Crude uniformity check: the mean of 1000 draws is near 1/2.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
