//! Offline stand-in for the subset of the `criterion` crate used by the
//! workspace's benches.
//!
//! Implements the structural API — [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple wall-clock measurement loop
//! instead of criterion's full statistical machinery: per benchmark it
//! runs a warm-up, sizes an iteration batch to roughly the configured
//! measurement time, and reports per-iteration sample statistics (mean,
//! median, sample std-dev, best). Good enough to compare engine variants
//! by eye and to keep `cargo bench` green offline; swap the real crate
//! back in (one `Cargo.toml` line) for publication-grade confidence
//! intervals.

use std::time::{Duration, Instant};

/// Top-level benchmark driver; collects settings and runs benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// How long to run the routine before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        let settings = self.clone();
        run_one(&settings, &label, &mut f);
        self
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let settings = self.criterion.clone();
        run_one(&settings, &label, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping each result alive until
    /// after the clock stops so returns are not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(settings: &Criterion, label: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: run single iterations until the warm-up
    // budget is spent, tracking the mean to size the timed batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

    // Size each sample's batch so all samples together roughly fill the
    // measurement budget.
    let budget = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut iters = 0u64;
    let mut samples = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        iters += b.iters;
        samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    let stats = Stats::from_samples(&samples);
    println!(
        "{label:<60} mean {:>12}  median {:>12}  stddev {:>12}  best {:>12}  ({} iters)",
        format_time(stats.mean),
        format_time(stats.median),
        format_time(stats.std_dev),
        format_time(stats.best),
        iters
    );
}

/// Per-iteration sample statistics over one benchmark's timed samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean of the per-iteration sample times.
    pub mean: f64,
    /// Median (midpoint of the two central samples for even counts).
    pub median: f64,
    /// Sample standard deviation (Bessel-corrected, n − 1); zero for a
    /// single sample.
    pub std_dev: f64,
    /// Fastest sample.
    pub best: f64,
}

impl Stats {
    /// Computes the summary of `samples` (seconds per iteration).
    ///
    /// # Panics
    /// Panics when `samples` is empty — the runner always collects at
    /// least one sample ([`Criterion::sample_size`] rejects zero).
    pub fn from_samples(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "no samples to summarize");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        let std_dev = if sorted.len() > 1 {
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        } else {
            0.0
        };
        Stats { mean, median, std_dev, best: sorted[0] }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Bundles benchmark functions under one runner name.
///
/// Both the plain form `criterion_group!(benches, f, g)` and the
/// configured form with `name = ...; config = ...; targets = ...` are
/// supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u64;
        group.bench_function("counts", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with-input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs > 0, "routine was never executed");
    }

    #[test]
    fn stats_of_an_odd_sample_count() {
        let s = Stats::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.best, 1.0);
        // Sample variance of {1,2,3} is ((1)^2 + 0 + (1)^2) / 2 = 1.
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_an_even_sample_count_average_the_middle_pair() {
        let s = Stats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.best, 1.0);
        // Sample variance of {1,2,3,4} is (2.25+0.25+0.25+2.25)/3 = 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn a_single_sample_has_zero_spread() {
        let s = Stats::from_samples(&[0.25]);
        assert_eq!(s.mean, 0.25);
        assert_eq!(s.median, 0.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.best, 0.25);
    }

    #[test]
    fn identical_samples_have_zero_std_dev() {
        let s = Stats::from_samples(&[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 0.5);
    }

    #[test]
    fn ids_render_as_name_slash_parameter() {
        assert_eq!(BenchmarkId::new("apsp", 100).label, "apsp/100");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
