//! Offline stand-in for the subset of the `criterion` crate used by the
//! workspace's benches.
//!
//! Implements the structural API — [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple wall-clock measurement loop
//! instead of criterion's statistical machinery: per benchmark it runs a
//! warm-up, sizes an iteration batch to roughly the configured measurement
//! time, and prints the mean time per iteration. Good enough to compare
//! engine variants by eye and to keep `cargo bench` green offline; swap the
//! real crate back in (one `Cargo.toml` line) for publication-grade
//! confidence intervals.

use std::time::{Duration, Instant};

/// Top-level benchmark driver; collects settings and runs benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// How long to run the routine before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        let settings = self.clone();
        run_one(&settings, &label, &mut f);
        self
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let settings = self.criterion.clone();
        run_one(&settings, &label, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping each result alive until
    /// after the clock stops so returns are not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(settings: &Criterion, label: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: run single iterations until the warm-up
    // budget is spent, tracking the mean to size the timed batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

    // Size each sample's batch so all samples together roughly fill the
    // measurement budget.
    let budget = settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
        let sample = b.elapsed.as_secs_f64() / b.iters as f64;
        if sample < best {
            best = sample;
        }
    }
    let mean = total.as_secs_f64() / iters.max(1) as f64;
    println!(
        "{label:<60} mean {:>12}  best {:>12}  ({} iters)",
        format_time(mean),
        format_time(best),
        iters
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Bundles benchmark functions under one runner name.
///
/// Both the plain form `criterion_group!(benches, f, g)` and the
/// configured form with `name = ...; config = ...; targets = ...` are
/// supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u64;
        group.bench_function("counts", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with-input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs > 0, "routine was never executed");
    }

    #[test]
    fn ids_render_as_name_slash_parameter() {
        assert_eq!(BenchmarkId::new("apsp", 100).label, "apsp/100");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
