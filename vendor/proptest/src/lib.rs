//! Offline stand-in for the subset of the `proptest` crate used by this
//! workspace's property tests.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`prelude::any`] for primitives, [`collection::vec`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Two deliberate simplifications versus the real crate:
//!
//! * **No shrinking.** A failing case reports the per-case seed; re-running
//!   the test reproduces it exactly (generation is deterministic in the
//!   test name and case index), which is enough to debug at this scale.
//! * **Fixed derivation of randomness.** Each case derives its RNG from
//!   FNV-1a(test name) ⊕ case index, so failures are stable across runs
//!   and machines rather than freshly random.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// Marker strategy returned by [`any`]; generates over the type's whole
    /// natural domain.
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Strategy over the full domain of a primitive type.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }

    impl_any!(bool, u8, u16, u32, u64, usize, f64);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Admissible length specifications for [`vec()`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<E::Value>` with a length drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<E::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test case loop.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases to run (and implicitly, how many rejects to allow).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases — smaller than real proptest's 256 to keep the
        /// workspace suite fast; individual tests override via
        /// `ProptestConfig::with_cases`.
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the inputs were invalid, not the code.
        Reject,
        /// `prop_assert!`-style failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// An input rejection (assume-failure).
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `case` until `config.cases` cases pass, panicking on the first
    /// failure and after too many consecutive assume-rejections.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let base = fnv1a(name);
        let max_rejects = (config.cases as u64) * 16 + 256;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        let mut rejects = 0u64;
        while passed < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects} rejects for {passed} passes)",
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {passed} \
                         (case seed {seed:#018x}): {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import for test modules: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discards the current case (without failing) when `cond` is false;
/// the runner draws a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// An optional `#![proptest_config(...)]` first line sets the case count
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_respects_size_and_flat_map_composes(
            v in crate::collection::vec(0usize..5, 2..7),
            w in (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..2, n)),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!((1..4).contains(&w.len()));
        }

        #[test]
        fn map_transforms(x in (0u16..100).prop_map(|v| v as u64 * 2)) {
            prop_assert!(x % 2 == 0 && x < 200);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_seed() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| Err(crate::test_runner::TestCaseError::fail("boom")),
        );
    }
}
