//! `ProgressObserver` contract:
//!
//! * exactly one `StepEvent` per committed step — event count equals
//!   `outcome.steps` for every strategy (greedy and exact);
//! * the final event's `maxLO`/`N` match `outcome.final_lo` /
//!   `outcome.final_n_at_max`, and its counters match the outcome's;
//! * observers incur **zero behavior change**: the same outcome with and
//!   without one attached;
//! * per-event counters are monotone and internally consistent.

use lopacity::{
    AnonymizationOutcome, AnonymizeConfig, Anonymizer, CountingObserver, ExactMinRemovals,
    ProgressObserver, Removal, RemovalInsertion, RunInfo, StepEvent, TypeSpec,
};
use lopacity_gen::er::gnm;
use lopacity_gen::Dataset;
use lopacity_graph::Graph;
use proptest::prelude::*;

/// Records the full event stream for offline assertions.
#[derive(Default)]
struct Recorder {
    starts: Vec<(String, f64, u64)>,
    events: Vec<StepEvent>,
    finishes: usize,
}

impl ProgressObserver for Recorder {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.starts.push((info.strategy.to_string(), info.theta, info.trials_before));
    }

    fn on_step(&mut self, event: &StepEvent) {
        self.events.push(*event);
    }

    fn on_run_end(&mut self, _outcome: &AnonymizationOutcome) {
        self.finishes += 1;
    }
}

fn check_stream(recorder: &Recorder, outcome: &AnonymizationOutcome) {
    // One event per committed step.
    assert_eq!(recorder.events.len(), outcome.steps, "event count != steps");
    assert_eq!(recorder.finishes, 1);
    // Step indices are 1..=steps; counters are monotone.
    for (i, event) in recorder.events.iter().enumerate() {
        assert_eq!(event.step, i + 1, "step index gap");
        assert_eq!(event.edits, event.removed + event.inserted);
    }
    for pair in recorder.events.windows(2) {
        assert!(pair[1].trials >= pair[0].trials, "trial clock went backwards");
        assert!(pair[1].edits >= pair[0].edits, "edit count went backwards");
    }
    // The final event agrees with the outcome.
    if let Some(last) = recorder.events.last() {
        assert_eq!(last.max_lo, outcome.final_lo, "final event maxLO != outcome.final_lo");
        assert_eq!(last.n_at_max, outcome.final_n_at_max);
        assert_eq!(last.removed, outcome.removed.len());
        assert_eq!(last.inserted, outcome.inserted.len());
        assert_eq!(last.edits, outcome.edits());
        // The greedy loop may stop right at the last event (or discover
        // exhaustion afterwards without further trials for Removal); the
        // trial clock never exceeds the outcome's.
        assert!(last.trials <= outcome.trials);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Event accounting holds for both greedy strategies on random graphs,
    /// and observers never change the outcome.
    #[test]
    fn observer_accounting_and_transparency(
        n in 8usize..22,
        theta in 0.2f64..0.7,
        seed in 0u64..1 << 48,
        which in 0usize..2,
    ) {
        let g = gnm(n, n + 5, seed);
        let config = AnonymizeConfig::new(1, theta).with_seed(seed);

        // Bare run (no observer).
        let mut bare = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config);
        let bare_outcome = match which {
            0 => bare.run(Removal),
            _ => bare.run(RemovalInsertion::default()),
        };

        // Observed run.
        let mut recorder = Recorder::default();
        let mut observed = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(config)
            .observer(&mut recorder);
        let observed_outcome = match which {
            0 => observed.run(Removal),
            _ => observed.run(RemovalInsertion::default()),
        };
        drop(observed);

        // Zero behavior change.
        prop_assert_eq!(&bare_outcome.graph, &observed_outcome.graph);
        prop_assert_eq!(&bare_outcome.removed, &observed_outcome.removed);
        prop_assert_eq!(&bare_outcome.inserted, &observed_outcome.inserted);
        prop_assert_eq!(bare_outcome.trials, observed_outcome.trials);
        prop_assert_eq!(bare_outcome.steps, observed_outcome.steps);

        check_stream(&recorder, &observed_outcome);
    }
}

/// The exact strategy also honors the event contract: one event per
/// removal of the optimal set.
#[test]
fn exact_strategy_emits_one_event_per_removal() {
    let g = Graph::from_edges(
        7,
        [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
    )
    .unwrap();
    let mut recorder = Recorder::default();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(1, 0.5).with_seed(1))
        .observer(&mut recorder);
    let outcome = session.run(ExactMinRemovals::default());
    drop(session);
    assert!(outcome.achieved);
    assert!(outcome.steps > 0);
    check_stream(&recorder, &outcome);
    // Exact runs charge their search nodes to the trial clock.
    assert!(outcome.trials >= outcome.steps as u64);
}

/// A run that needs no work emits no step events but still brackets the
/// run with start/end callbacks.
#[test]
fn trivial_run_emits_no_steps() {
    let g = gnm(10, 12, 5);
    let mut recorder = Recorder::default();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(1, 1.0))
        .observer(&mut recorder);
    let outcome = session.run(Removal);
    drop(session);
    assert!(outcome.achieved);
    assert_eq!(outcome.steps, 0);
    assert!(recorder.events.is_empty());
    assert_eq!(recorder.starts.len(), 1);
    assert_eq!(recorder.finishes, 1);
}

/// Sweeps emit one start/end bracket per θ segment; step events continue
/// across resumed segments, and the strategy name is carried through.
#[test]
fn sweep_brackets_each_theta_segment() {
    let g = Dataset::Gnutella.generate(120, 4); // starts at maxLO = 1.0
    let thetas = [0.8, 0.6, 0.5];
    let mut recorder = Recorder::default();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(1, 0.5).with_seed(2))
        .observer(&mut recorder);
    let runs = session.sweep(&thetas, RemovalInsertion::default());
    drop(session);
    assert_eq!(recorder.starts.len(), thetas.len());
    assert_eq!(recorder.finishes, thetas.len());
    for ((name, theta, _), &expected) in recorder.starts.iter().zip(&thetas) {
        assert_eq!(name, "removal-insertion");
        assert_eq!(*theta, expected);
    }
    // Cumulative step events equal the final segment's step counter.
    assert_eq!(recorder.events.len(), runs.last().unwrap().outcome.steps);
    // Step indices never reset across resumed segments.
    for (i, event) in recorder.events.iter().enumerate() {
        assert_eq!(event.step, i + 1);
    }
}

/// `CountingObserver` is reusable across whole sessions and sums per-run
/// work without double counting resumed segments.
#[test]
fn counting_observer_tracks_multiple_runs() {
    let g = gnm(14, 20, 8);
    let config = AnonymizeConfig::new(1, 0.4).with_seed(8);
    let mut counter = CountingObserver::default();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(config)
        .observer(&mut counter);
    let a = session.run(Removal);
    let b = session.run(Removal);
    drop(session);
    assert_eq!(counter.runs_started, 2);
    assert_eq!(counter.runs_finished, 2);
    assert_eq!(counter.events, a.steps + b.steps);
    assert_eq!(counter.total_trials, a.trials + b.trials);
    assert_eq!(counter.last_event.unwrap().max_lo, b.final_lo);
}
