//! The sharded candidate scan is **bit-for-bit equivalent** to the
//! sequential one: for random G(n, m) graphs, thresholds, path-length
//! bounds, and worker counts, `Parallelism::Fixed(w)` produces the exact
//! edit sequence, trial count, and final report of `Parallelism::Off`
//! under the same seed.
//!
//! This is the parallel-scan counterpart of the Theorem 1 equivalence
//! suite: an anonymizer whose output depends on the thread count silently
//! changes the privacy guarantee, so equivalence is a hard requirement,
//! not an optimization nicety. `Fixed(w)` bypasses the small-input
//! fallback, so even these deliberately small graphs exercise real
//! multi-worker sharding (including workers > candidates).

// Deliberately exercised through the deprecated wrappers: they are thin
// shims over the session API (`tests/tests/session_api.rs` proves the
// outputs bit-for-bit equal), so these suites keep the compatibility
// surface itself under the determinism/equivalence contract.
#![allow(deprecated)]

use lopacity::opacity::opacity_report_against_original;
use lopacity::{
    edge_removal, edge_removal_insertion, AnonymizeConfig, AnonymizationOutcome, Anonymizer,
    Parallelism, ProgressObserver, Removal, RemovalInsertion, StepEvent, StoreBackend, TypeSpec,
};
use lopacity_gen::er::gnm;
use lopacity_graph::Graph;
use proptest::prelude::*;

/// Worker counts the suite proves equivalent to sequential. 1 exercises
/// the "forced shard of one" path, 2/3 uneven shard boundaries, 8 more
/// workers than some candidate lists have items.
const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Every observable facet of two outcomes matches exactly.
fn assert_outcomes_identical(
    seq: &AnonymizationOutcome,
    par: &AnonymizationOutcome,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&seq.removed, &par.removed, "edit sequence (removals) differ: {}", context);
    prop_assert_eq!(&seq.inserted, &par.inserted, "edit sequence (insertions) differ: {}", context);
    prop_assert_eq!(&seq.graph, &par.graph, "published graphs differ: {}", context);
    prop_assert_eq!(seq.steps, par.steps, "step counts differ: {}", context);
    prop_assert_eq!(seq.trials, par.trials, "trial counts differ: {}", context);
    prop_assert_eq!(seq.achieved, par.achieved, "achievement differs: {}", context);
    prop_assert_eq!(seq.final_lo, par.final_lo, "final maxLO differs: {}", context);
    prop_assert_eq!(seq.final_n_at_max, par.final_n_at_max, "final N differs: {}", context);
    Ok(())
}

/// The certified L-opacity report of the published graph, rendered — the
/// external artifact a downstream consumer would diff.
fn rendered_report(original: &Graph, out: &AnonymizationOutcome, l: u8) -> String {
    let report = opacity_report_against_original(original, &out.graph, &TypeSpec::DegreePairs, l);
    let mut text = format!("{out}\nmaxLO {}\n", report.max_lo);
    for row in &report.per_type {
        text.push_str(&format!("{}\t{}\t{}\t{:.6}\n", row.label, row.within_l, row.total, row.lo));
    }
    text
}

proptest! {
    // 64 random (graph, L, θ, seed) cases; each is checked against all
    // four worker counts and both heuristics.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_scan_matches_sequential(
        n in 8usize..28,
        density in 1usize..4,
        l in 1u8..3,
        theta in 0.2f64..0.8,
        seed in 0u64..1 << 48,
    ) {
        let g = gnm(n, density * n / 2 + 3, seed);
        let base = AnonymizeConfig::new(l, theta).with_seed(seed);
        let sequential_rem = edge_removal(
            &g, &TypeSpec::DegreePairs, &base.with_parallelism(Parallelism::Off),
        );
        let sequential_ri = edge_removal_insertion(
            &g, &TypeSpec::DegreePairs, &base.with_parallelism(Parallelism::Off),
        );
        let seq_rem_report = rendered_report(&g, &sequential_rem, l);
        let seq_ri_report = rendered_report(&g, &sequential_ri, l);
        for workers in WORKER_COUNTS {
            let config = base.with_parallelism(Parallelism::Fixed(workers));
            let context = format!("n={n} l={l} theta={theta} seed={seed} workers={workers}");

            let par = edge_removal(&g, &TypeSpec::DegreePairs, &config);
            assert_outcomes_identical(&sequential_rem, &par, &format!("rem {context}"))?;
            prop_assert_eq!(&seq_rem_report, &rendered_report(&g, &par, l));

            let par = edge_removal_insertion(&g, &TypeSpec::DegreePairs, &config);
            assert_outcomes_identical(&sequential_ri, &par, &format!("rem-ins {context}"))?;
            prop_assert_eq!(&seq_ri_report, &rendered_report(&g, &par, l));
        }
        // The distance-store backend is equally outside the equivalence
        // contract: a sparse-backed run — sequential or sharded — produces
        // the identical outcome and certified report (the sequential
        // references above ran on the dense store: Auto resolves dense at
        // these sizes).
        for parallelism in [Parallelism::Off, Parallelism::Fixed(3)] {
            let config =
                base.with_parallelism(parallelism).with_store(StoreBackend::Sparse);
            let context =
                format!("n={n} l={l} theta={theta} seed={seed} sparse {parallelism}");

            let sparse = edge_removal(&g, &TypeSpec::DegreePairs, &config);
            assert_outcomes_identical(&sequential_rem, &sparse, &format!("rem {context}"))?;
            prop_assert_eq!(&seq_rem_report, &rendered_report(&g, &sparse, l));

            let sparse = edge_removal_insertion(&g, &TypeSpec::DegreePairs, &config);
            assert_outcomes_identical(&sequential_ri, &sparse, &format!("rem-ins {context}"))?;
            prop_assert_eq!(&seq_ri_report, &rendered_report(&g, &sparse, l));
        }
    }

    #[test]
    fn parallel_scan_matches_sequential_under_lookahead_and_budget(
        n in 6usize..14,
        theta in 0.2f64..0.6,
        seed in 0u64..1 << 48,
        max_trials in 20u64..200,
    ) {
        // Look-ahead mixes the sharded size-1 scan with sequential combo
        // scans under one tie-break nonce; the trial budget truncates the
        // scan mid-list. Both must stay worker-count invariant.
        let g = gnm(n, 2 * n, seed);
        let base = AnonymizeConfig::new(1, theta)
            .with_seed(seed)
            .with_lookahead(2)
            .with_max_trials(max_trials);
        let sequential = edge_removal(
            &g, &TypeSpec::DegreePairs, &base.with_parallelism(Parallelism::Off),
        );
        for workers in WORKER_COUNTS {
            let par = edge_removal(
                &g,
                &TypeSpec::DegreePairs,
                &base.with_parallelism(Parallelism::Fixed(workers)),
            );
            let context = format!("n={n} theta={theta} seed={seed} workers={workers}");
            assert_outcomes_identical(&sequential, &par, &context)?;
        }
    }
}

/// Captures the cumulative fork-clone counter at every committed step.
#[derive(Default)]
struct ForkCloneTrace {
    per_step: Vec<u64>,
}

impl ProgressObserver for ForkCloneTrace {
    fn on_step(&mut self, event: &StepEvent) {
        self.per_step.push(event.fork_clones);
    }
}

/// The zero-copy guarantee of the persistent-fork scan (issue 4): after
/// warmup — which completes within the first greedy step, the first time a
/// sharded scan runs — a step performs **zero** `O(|V|²)` evaluator
/// clones. Asserted through the fork-clone counter: the per-step cumulative
/// count is constant from step 1 on, and the total equals the warmup's
/// `workers - 1` forks.
#[test]
fn sharded_scans_clone_only_at_warmup() {
    let g = gnm(60, 180, 5);
    for workers in [2usize, 3, 8] {
        let config = AnonymizeConfig::new(1, 0.2)
            .with_seed(11)
            .with_parallelism(Parallelism::Fixed(workers));
        let mut trace = ForkCloneTrace::default();
        let out = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(config)
            .observer(&mut trace)
            .run_once(Removal);
        assert!(out.steps >= 3, "need a multi-step run to observe the warm path");
        assert_eq!(trace.per_step.len(), out.steps);
        assert_eq!(
            trace.per_step[0],
            workers as u64 - 1,
            "warmup must clone exactly workers - 1 forks (workers={workers})"
        );
        assert!(
            trace.per_step.iter().all(|&c| c == trace.per_step[0]),
            "fork clones after warmup (workers={workers}): {:?}",
            trace.per_step
        );
        assert_eq!(out.fork_clones, workers as u64 - 1);
    }
}

/// Same guarantee for Algorithm 5, whose two phases (removal over edges,
/// insertion over the much larger non-edge set) share one fork set: the
/// widest phase of step 1 fixes the fork count for the whole run.
#[test]
fn removal_insertion_shares_forks_across_phases() {
    let g = gnm(40, 90, 3);
    let workers = 4usize;
    let config = AnonymizeConfig::new(1, 0.2)
        .with_seed(7)
        .with_parallelism(Parallelism::Fixed(workers));
    let mut trace = ForkCloneTrace::default();
    let out = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(config)
        .observer(&mut trace)
        .run_once(RemovalInsertion::default());
    assert!(out.steps >= 2);
    assert!(
        trace.per_step.iter().all(|&c| c == trace.per_step[0]),
        "fork clones grew after step 1: {:?}",
        trace.per_step
    );
    assert_eq!(out.fork_clones, workers as u64 - 1);
}

/// Sequential runs never fork; the counter is a pure perf counter and sits
/// outside the equivalence contract (every other outcome facet identical).
#[test]
fn sequential_runs_never_clone() {
    let g = gnm(60, 180, 5);
    let base = AnonymizeConfig::new(1, 0.3).with_seed(11);
    let seq = edge_removal(&g, &TypeSpec::DegreePairs, &base.with_parallelism(Parallelism::Off));
    let par = edge_removal(
        &g,
        &TypeSpec::DegreePairs,
        &base.with_parallelism(Parallelism::Fixed(3)),
    );
    assert_eq!(seq.fork_clones, 0);
    assert_eq!(par.fork_clones, 2);
    assert_eq!(seq.removed, par.removed);
    assert_eq!(seq.graph, par.graph);
    assert_eq!(seq.trials, par.trials);
}

/// A resumed multi-θ sweep keeps one fork set across every segment: the
/// warmup of the first θ serves all later ones.
#[test]
fn resumed_sweeps_reuse_forks_across_segments() {
    let g = gnm(60, 180, 5);
    let workers = 3usize;
    let config = AnonymizeConfig::new(1, 0.2)
        .with_seed(11)
        .with_parallelism(Parallelism::Fixed(workers));
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config);
    let runs = session.sweep(&[0.8, 0.5, 0.2], Removal);
    assert!(runs.iter().all(|r| r.outcome.steps > 0));
    for run in &runs {
        assert!(
            run.outcome.fork_clones <= workers as u64 - 1,
            "θ={} re-cloned forks: {}",
            run.theta,
            run.outcome.fork_clones
        );
    }
    assert_eq!(runs.last().unwrap().outcome.fork_clones, workers as u64 - 1);
}

/// Persistent forks inherit the main evaluator's backend and stay in sync
/// under sparse-store mutation churn (tombstones, overflow, compaction):
/// a sharded sparse-backed run equals the sequential sparse-backed run on
/// a graph large enough for real multi-step fork replay.
#[test]
fn sparse_forks_survive_multi_step_replay() {
    let g = gnm(80, 240, 13);
    for l in [1u8, 2] {
        let base = AnonymizeConfig::new(l, 0.2)
            .with_seed(29)
            .with_store(StoreBackend::Sparse);
        let seq =
            edge_removal(&g, &TypeSpec::DegreePairs, &base.with_parallelism(Parallelism::Off));
        assert!(seq.steps >= 3, "need a multi-step run to stress replay (L={l})");
        for workers in [2usize, 4] {
            let par = edge_removal(
                &g,
                &TypeSpec::DegreePairs,
                &base.with_parallelism(Parallelism::Fixed(workers)),
            );
            assert_eq!(seq.removed, par.removed, "L={l} workers={workers}");
            assert_eq!(seq.graph, par.graph, "L={l} workers={workers}");
            assert_eq!(seq.trials, par.trials, "L={l} workers={workers}");
        }
    }
}

/// `Auto` must also be equivalent — whatever worker count the machine
/// resolves to, including the small-input sequential fallback.
#[test]
fn auto_parallelism_matches_sequential() {
    for seed in [1u64, 7, 42] {
        let g = gnm(40, 100, seed);
        for l in [1u8, 2] {
            let base = AnonymizeConfig::new(l, 0.4).with_seed(seed);
            let seq = edge_removal(&g, &TypeSpec::DegreePairs, &base.with_parallelism(Parallelism::Off));
            let auto = edge_removal(&g, &TypeSpec::DegreePairs, &base.with_parallelism(Parallelism::Auto));
            assert_eq!(seq.removed, auto.removed, "seed {seed} l {l}");
            assert_eq!(seq.graph, auto.graph, "seed {seed} l {l}");
            assert_eq!(seq.trials, auto.trials, "seed {seed} l {l}");
        }
    }
}
