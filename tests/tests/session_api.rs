//! The session API redesign's equivalence contract:
//!
//! 1. the deprecated free functions (`edge_removal`,
//!    `edge_removal_insertion`) and `Anonymizer::run` produce **identical**
//!    `AnonymizationOutcome`s — property-tested over G(n, m) × both greedy
//!    strategies × `Parallelism::{Off, Fixed(3)}`;
//! 2. `sweep(&[θ...], SweepMode::Independent)` equals a standalone run per
//!    θ, bit-for-bit;
//! 3. `sweep(&[θ...], SweepMode::Resume)` *also* equals a standalone run
//!    per θ (greedy trajectories are θ-independent; θ only stops the
//!    loop), while spending **strictly fewer** total candidate trials than
//!    the independent runs whenever intermediate θ values require work —
//!    the APSP-sharing acceptance criterion, measured through the
//!    observer's trial accounting.

#![allow(deprecated)] // the left-hand side of the equivalence IS deprecated

use lopacity::{
    edge_removal, edge_removal_insertion, AnonymizationOutcome, AnonymizeConfig, Anonymizer,
    CountingObserver, Parallelism, Removal, RemovalInsertion, Strategy, SweepMode, TypeSpec,
};
use lopacity_gen::er::gnm;
use lopacity_gen::Dataset;
use lopacity_graph::Graph;
use proptest::prelude::*;

/// Every observable facet of two outcomes matches exactly.
fn assert_outcomes_identical(
    wrapper: &AnonymizationOutcome,
    session: &AnonymizationOutcome,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&wrapper.removed, &session.removed, "removals differ: {}", context);
    prop_assert_eq!(&wrapper.inserted, &session.inserted, "insertions differ: {}", context);
    prop_assert_eq!(&wrapper.graph, &session.graph, "published graphs differ: {}", context);
    prop_assert_eq!(wrapper.steps, session.steps, "step counts differ: {}", context);
    prop_assert_eq!(wrapper.trials, session.trials, "trial counts differ: {}", context);
    prop_assert_eq!(wrapper.achieved, session.achieved, "achievement differs: {}", context);
    prop_assert_eq!(wrapper.final_lo, session.final_lo, "final maxLO differs: {}", context);
    prop_assert_eq!(
        wrapper.final_n_at_max,
        session.final_n_at_max,
        "final N differs: {}",
        context
    );
    Ok(())
}

fn run_wrapper(which: usize, g: &Graph, config: &AnonymizeConfig) -> AnonymizationOutcome {
    match which {
        0 => edge_removal(g, &TypeSpec::DegreePairs, config),
        _ => edge_removal_insertion(g, &TypeSpec::DegreePairs, config),
    }
}

fn run_session(which: usize, g: &Graph, config: &AnonymizeConfig) -> AnonymizationOutcome {
    let mut session = Anonymizer::new(g, &TypeSpec::DegreePairs).config(*config);
    match which {
        0 => session.run(Removal),
        _ => session.run(RemovalInsertion::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite: deprecated wrappers vs `Anonymizer::run`, bit-for-bit.
    #[test]
    fn wrappers_equal_session_runs(
        n in 8usize..24,
        density in 1usize..4,
        l in 1u8..3,
        theta in 0.2f64..0.8,
        seed in 0u64..1 << 48,
    ) {
        let g = gnm(n, density * n / 2 + 3, seed);
        for parallelism in [Parallelism::Off, Parallelism::Fixed(3)] {
            let config = AnonymizeConfig::new(l, theta)
                .with_seed(seed)
                .with_parallelism(parallelism);
            for which in [0usize, 1] {
                let context = format!(
                    "strategy={} n={n} l={l} theta={theta} seed={seed} par={parallelism:?}",
                    if which == 0 { "rem" } else { "rem-ins" },
                );
                let wrapper = run_wrapper(which, &g, &config);
                let session = run_session(which, &g, &config);
                assert_outcomes_identical(&wrapper, &session, &context)?;
            }
        }
    }

    /// Satellite: `sweep(&[θ], Independent)` equals a standalone run per θ.
    #[test]
    fn independent_sweep_equals_standalone_runs(
        n in 8usize..20,
        theta_steps in 2usize..5,
        seed in 0u64..1 << 48,
    ) {
        let g = gnm(n, n + 4, seed);
        let thetas: Vec<f64> =
            (0..theta_steps).map(|k| 0.8 - 0.15 * k as f64).collect();
        let config = AnonymizeConfig::new(1, 0.5).with_seed(seed);
        let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(config)
            .sweep_mode(SweepMode::Independent);
        let runs = session.sweep(&thetas, RemovalInsertion::default());
        prop_assert_eq!(runs.len(), thetas.len());
        for run in &runs {
            let mut theta_config = config;
            theta_config.theta = run.theta;
            let standalone = run_session(1, &g, &theta_config);
            let context = format!("independent sweep θ={} n={n} seed={seed}", run.theta);
            assert_outcomes_identical(&standalone, &run.outcome, &context)?;
            prop_assert_eq!(run.new_trials, run.outcome.trials);
        }
    }

    /// Resumed sweeps report, per θ, exactly the standalone outcome at
    /// that θ — the trajectory is θ-independent, θ only stops the loop.
    #[test]
    fn resumed_sweep_segments_equal_standalone_runs(
        n in 8usize..20,
        seed in 0u64..1 << 48,
        which in 0usize..2,
    ) {
        let g = gnm(n, n + 6, seed);
        let thetas = [0.8, 0.6, 0.45];
        let config = AnonymizeConfig::new(1, 0.45).with_seed(seed);
        let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config);
        let runs = match which {
            0 => session.sweep(&thetas, Removal),
            _ => session.sweep(&thetas, RemovalInsertion::default()),
        };
        for run in &runs {
            let mut theta_config = config;
            theta_config.theta = run.theta;
            let standalone = run_session(which, &g, &theta_config);
            let context = format!(
                "resumed sweep θ={} strategy={which} n={n} seed={seed}", run.theta,
            );
            assert_outcomes_identical(&standalone, &run.outcome, &context)?;
        }
    }
}

/// Acceptance criterion: a resumed 4-θ sweep on the Gnutella stand-in
/// performs strictly fewer total candidate trials than 4 independent runs
/// (measured via the observer's trial counts), while the independent mode
/// matches per-θ standalone outcomes bit-for-bit.
#[test]
fn resumed_sweep_shares_work_across_thetas() {
    // Seed 4 starts this stand-in at maxLO = 1.0, so every θ of the
    // ladder requires real scanning work.
    let g = Dataset::Gnutella.generate(120, 4);
    let thetas = [0.85, 0.75, 0.65, 0.55];
    let config = AnonymizeConfig::new(1, 0.55).with_seed(9);

    let mut resumed_counter = CountingObserver::default();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(config)
        .observer(&mut resumed_counter);
    let resumed = session.sweep(&thetas, Removal);
    drop(session);

    let mut independent_counter = CountingObserver::default();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(config)
        .sweep_mode(SweepMode::Independent)
        .observer(&mut independent_counter);
    let independent = session.sweep(&thetas, Removal);
    drop(session);

    // Both observers saw one run (segment) per θ.
    assert_eq!(resumed_counter.runs_finished, thetas.len());
    assert_eq!(independent_counter.runs_finished, thetas.len());

    // Sanity: every intermediate θ required real work, so sharing has
    // something to save. (Gnutella-120 at L=1 starts with maxLO = 1.)
    for run in &independent {
        assert!(run.outcome.achieved, "θ={} not achieved", run.theta);
        assert!(run.new_trials > 0, "θ={} was free", run.theta);
    }

    // The acceptance inequality, via the observers' trial accounting.
    assert!(
        resumed_counter.total_trials < independent_counter.total_trials,
        "resumed sweep must spend strictly fewer trials: {} vs {}",
        resumed_counter.total_trials,
        independent_counter.total_trials
    );
    // Cross-check the observer against the sweep's own per-θ accounting.
    let resumed_new: u64 = resumed.iter().map(|r| r.new_trials).sum();
    let independent_new: u64 = independent.iter().map(|r| r.new_trials).sum();
    assert_eq!(resumed_counter.total_trials, resumed_new);
    assert_eq!(independent_counter.total_trials, independent_new);

    // And the shared trajectory still lands on identical per-θ results.
    for (a, b) in resumed.iter().zip(&independent) {
        assert_eq!(a.theta, b.theta);
        assert_eq!(a.outcome.removed, b.outcome.removed, "θ={}", a.theta);
        assert_eq!(a.outcome.graph, b.outcome.graph, "θ={}", a.theta);
        assert_eq!(a.outcome.trials, b.outcome.trials, "θ={}", a.theta);
    }
}

/// Regression (issue 7 satellite): `max_trials` is **one** budget for the
/// whole resumed sweep, not a per-segment allowance that silently resets
/// at each θ. A budget exhausted mid-segment must stop the sweep at
/// exactly the trial count the equivalent standalone runs report, with
/// the observer's per-run trial accounting agreeing on both sides.
#[test]
fn trial_budget_spans_resumed_sweep_segments_like_standalone_runs() {
    let g = gnm(40, 90, 3);
    let spec = TypeSpec::DegreePairs;
    let thetas = [0.6, 0.4, 0.2];
    for cap in [5u64, 20, 60, 150, 400] {
        let config = AnonymizeConfig::new(2, 0.0).with_seed(11).with_max_trials(cap);
        let mut sweep_counter = CountingObserver::default();
        let mut session =
            Anonymizer::new(&g, &spec).config(config).observer(&mut sweep_counter);
        let runs = session.sweep(&thetas, Removal);
        drop(session);
        assert_eq!(sweep_counter.runs_finished, thetas.len(), "cap={cap}");

        for run in &runs {
            let mut standalone_cfg = config;
            standalone_cfg.theta = run.theta;
            let mut alone_counter = CountingObserver::default();
            let mut alone_session =
                Anonymizer::new(&g, &spec).config(standalone_cfg).observer(&mut alone_counter);
            let alone = alone_session.run(Removal);
            drop(alone_session);
            assert_eq!(
                run.outcome.trials, alone.trials,
                "cap={cap} θ={}: sweep trial clock diverges from the standalone run",
                run.theta
            );
            assert_eq!(
                alone_counter.total_trials, alone.trials,
                "cap={cap} θ={}: observer accounting disagrees with the outcome",
                run.theta
            );
            assert_eq!(
                run.outcome.removed, alone.removed,
                "cap={cap} θ={}: edits diverge",
                run.theta
            );
        }

        // The observer's summed per-segment work is the sweep's cumulative
        // clock, and the one shared budget is never overspent.
        let total = runs.last().unwrap().outcome.trials;
        assert_eq!(sweep_counter.total_trials, total, "cap={cap}");
        assert!(total <= cap, "cap={cap}: the sweep overspent its budget ({total})");
    }
}

/// The resumed sweep's final graph is byte-identical to a single-θ run at
/// the strictest value — the invariant the CLI's `--theta 0.9,0.66,0.5`
/// contract builds on.
#[test]
fn resumed_sweep_final_graph_matches_single_run() {
    let g = Dataset::Gnutella.generate(120, 4); // starts at maxLO = 1.0
    let config = AnonymizeConfig::new(1, 0.5).with_seed(21);
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config);
    let runs = session.sweep(&[0.9, 0.66, 0.5], Removal);
    let single = run_session(0, &g, &config);
    let last = &runs.last().unwrap().outcome;
    assert_eq!(last.graph, single.graph);
    assert_eq!(last.removed, single.removed);
    assert_eq!(last.trials, single.trials);

    let mut a = Vec::new();
    let mut b = Vec::new();
    lopacity_graph::io::write_edge_list(&last.graph, &mut a).unwrap();
    lopacity_graph::io::write_edge_list(&single.graph, &mut b).unwrap();
    assert_eq!(a, b, "serialized graphs must be byte-identical");
}

/// Sweeps accept θ values in any order and sort them descending.
#[test]
fn sweep_sorts_thetas_descending() {
    let g = gnm(12, 18, 3);
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(1, 0.4).with_seed(3));
    let runs = session.sweep(&[0.4, 0.8, 0.6], Removal);
    let seen: Vec<f64> = runs.iter().map(|r| r.theta).collect();
    assert_eq!(seen, vec![0.8, 0.6, 0.4]);
}

/// A custom strategy plugs into the same driver: a "remove highest-degree
/// endpoint edges first" variant implemented via `GreedyPolicy` — the
/// pluggability the redesign is for.
#[test]
fn custom_greedy_policy_plugs_in() {
    use lopacity::{drive_greedy, GreedyPolicy, MoveKind, OpacityEvaluator, RunContext};
    use lopacity_graph::Edge;

    #[derive(Clone, Default)]
    struct HubFirstRemoval;

    impl GreedyPolicy for HubFirstRemoval {
        fn num_phases(&self) -> usize {
            1
        }
        fn kind(&self, _phase: usize) -> MoveKind {
            MoveKind::Remove
        }
        fn candidates(&mut self, _phase: usize, ev: &OpacityEvaluator, out: &mut Vec<Edge>) {
            // Only edges touching a maximum-degree vertex are candidates.
            let g = ev.graph();
            let max_deg = g.max_degree();
            out.extend(
                g.edges().filter(|e| {
                    g.degree(e.u()) == max_deg || g.degree(e.v()) == max_deg
                }),
            );
        }
        fn committed(&mut self, _phase: usize, _combo: &[Edge]) {}
    }

    impl Strategy for HubFirstRemoval {
        fn name(&self) -> &'static str {
            "hub-first-removal"
        }
        fn execute(&mut self, ctx: &mut RunContext<'_>) {
            drive_greedy(ctx, self);
        }
    }

    let g = Dataset::Gnutella.generate(60, 7);
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(1, 0.6).with_seed(7));
    let out = session.run(HubFirstRemoval);
    assert!(out.achieved, "{out}");
    assert!(out.inserted.is_empty());
    // Every removed edge touched a then-maximal-degree vertex; cheap proxy:
    // the run actually edited something and the certificate holds.
    let cert = lopacity::opacity::opacity_report_against_original(
        &g,
        &out.graph,
        &TypeSpec::DegreePairs,
        1,
    );
    assert!(cert.max_lo.satisfies(0.6));
}
