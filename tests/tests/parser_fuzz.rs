//! Structured fuzzing of the five attacker-facing parsers:
//!
//! 1. `lopacity_graph::io::read_edge_list` (uploaded edge lists),
//! 2. `lopacity_daemon::JobSpec::parse` (job specs over `POST /jobs`),
//! 3. `lopacity::EdgeEvent::parse_stream` (churn event batches),
//! 4. `lopacity_daemon::journal::scan_frames` (a corrupt on-disk journal),
//! 5. `lopacity_util::http::Request::parse` (raw bytes off a socket).
//!
//! Each parser takes `FUZZ_CASES` inputs (default 256; the CI
//! `parser-fuzz` job elevates it) drawn from three mutators — raw byte
//! soup, a token-soup assembler biased toward each grammar's keywords
//! and pathological numbers, and byte-level mutations of valid
//! exemplars — plus every file in the checked-in regression corpus under
//! `tests/fuzz_corpus/`. The contract under test:
//!
//! * **no panics** — malformed input is an `Err`, never an abort;
//! * **no unbounded allocation** — a tracking global allocator fails the
//!   test if any single allocation exceeds 64 MB (a tiny body must not
//!   command a multi-gigabyte `Vec::with_capacity` from a declared
//!   length);
//! * parse errors carry a message (line-numbered where the grammar has
//!   lines).
//!
//! Generation is deterministic: case RNGs derive from
//! FNV-1a(parser name) ⊕ case index, the same scheme as the vendored
//! proptest, so any failure replays exactly.

use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// --------------------------------------------------------------------
// Allocation guard: every allocation in the process is measured; a fuzz
// case asserts nothing crossed the cap while it ran. Fuzz bodies hold a
// global lock so parallel test threads cannot blame each other.

const ALLOC_CAP: usize = 64 * 1024 * 1024;

struct TrackingAlloc;

static MAX_ALLOC: AtomicUsize = AtomicUsize::new(0);

unsafe impl std::alloc::GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        MAX_ALLOC.fetch_max(layout.size(), Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }

    unsafe fn realloc(
        &self,
        ptr: *mut u8,
        layout: std::alloc::Layout,
        new_size: usize,
    ) -> *mut u8 {
        MAX_ALLOC.fetch_max(new_size, Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

static FUZZ_LOCK: Mutex<()> = Mutex::new(());

fn cases() -> u64 {
    std::env::var("FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// FNV-1a, matching the vendored proptest's seed derivation.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn rng_for(name: &str, case: u64) -> StdRng {
    StdRng::seed_from_u64(fnv1a(name) ^ case)
}

// --------------------------------------------------------------------
// Mutators.

/// Raw byte soup (includes NUL, newlines, UTF-8 fragments).
fn byte_soup(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.random_range(0usize..2048);
    (0..len).map(|_| rng.random::<u8>()).collect()
}

/// Numbers that historically break length arithmetic.
const EVIL_NUMBERS: &[&str] = &[
    "0",
    "1",
    "-1",
    "007",
    "4294967295",
    "4294967296",
    "9223372036854775807",
    "18446744073709551615",
    "18446744073709551616",
    "99999999999999999999999999",
    "0.5",
    "1e308",
    "-0.0",
    "NaN",
    "inf",
];

/// Assembles lines of whitespace-joined tokens from a vocabulary mixed
/// with pathological numbers — close enough to each grammar to reach
/// deep paths, wrong enough to hit every rejection edge.
fn token_soup(rng: &mut StdRng, vocab: &[&str]) -> Vec<u8> {
    let lines = rng.random_range(0usize..24);
    let mut out = String::new();
    for _ in 0..lines {
        let tokens = rng.random_range(0usize..6);
        for i in 0..tokens {
            if i > 0 {
                out.push(if rng.random::<bool>() { ' ' } else { '\t' });
            }
            let pool = if rng.random_range(0u32..3) == 0 { EVIL_NUMBERS } else { vocab };
            out.push_str(pool[rng.random_range(0usize..pool.len())]);
        }
        out.push('\n');
    }
    out.into_bytes()
}

/// Byte-level mutation of a valid exemplar: flips, truncations,
/// duplications, splices of random bytes.
fn mutate(rng: &mut StdRng, exemplar: &[u8]) -> Vec<u8> {
    let mut bytes = exemplar.to_vec();
    for _ in 0..rng.random_range(1usize..8) {
        if bytes.is_empty() {
            bytes.push(rng.random::<u8>());
            continue;
        }
        match rng.random_range(0u32..4) {
            0 => {
                let at = rng.random_range(0usize..bytes.len());
                bytes[at] = rng.random::<u8>();
            }
            1 => {
                let at = rng.random_range(0usize..bytes.len());
                bytes.truncate(at);
            }
            2 => {
                let at = rng.random_range(0usize..bytes.len());
                bytes.insert(at, rng.random::<u8>());
            }
            _ => {
                let at = rng.random_range(0usize..bytes.len());
                let chunk: Vec<u8> = bytes[at..].iter().copied().take(16).collect();
                bytes.extend_from_slice(&chunk);
            }
        }
    }
    bytes
}

/// One input per case: round-robin over the three mutators.
fn draw(rng: &mut StdRng, case: u64, vocab: &[&str], exemplars: &[&[u8]]) -> Vec<u8> {
    match case % 3 {
        0 => byte_soup(rng),
        1 => token_soup(rng, vocab),
        _ => {
            let pick = rng.random_range(0usize..exemplars.len());
            mutate(rng, exemplars[pick])
        }
    }
}

/// Every checked-in regression case for `parser` (panics if the corpus
/// directory is missing — the corpus is part of the contract).
fn corpus(parser: &str) -> Vec<(String, Vec<u8>)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../tests/fuzz_corpus");
    // The package lives at tests/, so the corpus is a sibling: try both.
    let dir = if dir.exists() {
        dir.join(parser)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz_corpus").join(parser)
    };
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("corpus {dir:?}: {e}")) {
        let path = entry.expect("corpus entry").path();
        out.push((path.display().to_string(), std::fs::read(&path).expect("corpus file")));
    }
    assert!(!out.is_empty(), "empty corpus for {parser}");
    out
}

/// Runs `parse` on one input: must neither panic nor allocate past the
/// cap. Returns whatever the parser returned.
fn check<T>(label: &str, input: &[u8], parse: impl FnOnce(&[u8]) -> T) -> T {
    MAX_ALLOC.store(0, Ordering::Relaxed);
    let result = catch_unwind(AssertUnwindSafe(|| parse(input)));
    let peak = MAX_ALLOC.load(Ordering::Relaxed);
    let outcome = match result {
        Ok(value) => value,
        Err(_) => panic!("{label}: parser panicked on {} bytes: {:?}", input.len(), preview(input)),
    };
    assert!(
        peak <= ALLOC_CAP,
        "{label}: allocation of {peak} bytes (cap {ALLOC_CAP}) on input {:?}",
        preview(input)
    );
    outcome
}

fn preview(input: &[u8]) -> String {
    let head: Vec<u8> = input.iter().copied().take(120).collect();
    String::from_utf8_lossy(&head).into_owned()
}

/// The shared driver: corpus first, then `cases()` generated inputs.
fn fuzz_parser(
    name: &str,
    vocab: &[&str],
    exemplars: &[&[u8]],
    run: impl Fn(&str, &[u8]),
) {
    let _guard = FUZZ_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    for (path, bytes) in corpus(name) {
        run(&format!("{name} corpus {path}"), &bytes);
    }
    for case in 0..cases() {
        let mut rng = rng_for(name, case);
        let input = draw(&mut rng, case, vocab, exemplars);
        run(&format!("{name} case {case}"), &input);
    }
}

// --------------------------------------------------------------------
// 1. Edge lists.

#[test]
fn fuzz_edge_list_parser() {
    let vocab: &[&str] = &[
        "#", "%", "# vertices", "vertices", "0", "1", "2", "10", "a", "b", "0 1", "1 0", "",
    ];
    let exemplars: &[&[u8]] =
        &[b"0 1\n1 2\n0 2\n", b"# vertices 5\n0 1\n3 4\n", b"# comment\n% comment\n7 8\n"];
    fuzz_parser("edge_list", vocab, exemplars, |label, input| {
        let outcome = check(label, input, |bytes| {
            lopacity_graph::io::read_edge_list(Cursor::new(bytes.to_vec()), 0)
        });
        if let Err(e) = outcome {
            let message = e.to_string();
            assert!(!message.is_empty(), "{label}: empty parse error");
        }
    });
}

// --------------------------------------------------------------------
// 2. Job specs.

#[test]
fn fuzz_job_spec_parser() {
    let vocab: &[&str] = &[
        "mode", "anonymize", "churn", "l", "theta", "seed", "method", "rem", "rem-ins", "exact",
        "store", "auto", "dense", "sparse", "engine", "max_trials", "max_steps", "ikey",
        "graph", "gnm", "inline", "dataset", "google", "enron", "0 1", "", "a-b.c:d_e",
    ];
    let exemplars: &[&[u8]] = &[
        b"mode anonymize\nl 2\ntheta 0.5\ngraph gnm 100 300 7\n",
        b"l 1\ntheta 1.0\nikey k-1\ngraph inline\n\n0 1\n1 2\n",
        b"mode churn\nl 1\ntheta 0.6\nseed 5\ngraph gnm 30 60 9\n",
        b"l 1\ngraph dataset google 200\n",
    ];
    fuzz_parser("jobspec", vocab, exemplars, |label, input| {
        let Ok(text) = std::str::from_utf8(input) else { return };
        let outcome = check(label, input, |_| lopacity_daemon::JobSpec::parse(text));
        match outcome {
            Ok(spec) => {
                // Accepted specs must survive the admission arithmetic and
                // the canonical round trip without building anything.
                let _ = check(label, input, |_| spec.estimated_footprint());
                let canonical = spec.canonical_body();
                let reparsed = lopacity_daemon::JobSpec::parse(&canonical)
                    .unwrap_or_else(|e| panic!("{label}: canonical body rejected: {e}"));
                assert_eq!(reparsed.canonical_body(), canonical, "{label}: unstable canon");
            }
            Err(message) => assert!(!message.is_empty(), "{label}: empty parse error"),
        }
    });
}

// --------------------------------------------------------------------
// 3. Churn event streams.

#[test]
fn fuzz_event_stream_parser() {
    let vocab: &[&str] = &["+", "-", "*", "#", "%", "0", "1", "2", "+ 0 1", "- 1 2", ""];
    let exemplars: &[&[u8]] = &[b"+ 0 1\n- 1 2\n", b"# batch\n+ 3 4\n", b"- 0 1\n+ 0 1\n"];
    fuzz_parser("events", vocab, exemplars, |label, input| {
        let Ok(text) = std::str::from_utf8(input) else { return };
        let outcome = check(label, input, |_| lopacity::EdgeEvent::parse_stream(text));
        if let Err(message) = outcome {
            assert!(!message.is_empty(), "{label}: empty parse error");
        }
    });
}

// --------------------------------------------------------------------
// 4. Journal replay.

#[test]
fn fuzz_journal_scanner() {
    let vocab: &[&str] = &[
        "lopj1", "submit", "phase", "checkpoint", "events", "result", "done", "failed",
        "0000000000000000", "deadbeefdeadbeef", "ZZZZ", "payload",
    ];
    // Valid frames straight from a real journal, so mutations explore
    // the checksum/length/torn-tail edges rather than dying at `lopj1`.
    let dir = std::env::temp_dir().join(format!("lop-fuzz-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let faults = std::sync::Arc::new(lopacity_util::FaultPlan::none());
    let (journal, _) = lopacity_daemon::Journal::open(&dir, faults).expect("journal");
    journal
        .append(&lopacity_daemon::Record::Submit {
            id: 1,
            spec: "mode anonymize\nl 1\ntheta 1.0\ngraph gnm 12 20 3\n".to_string(),
        })
        .expect("append");
    journal
        .append(&lopacity_daemon::Record::Phase {
            id: 1,
            phase: "done".to_string(),
            summary: "mode anonymize\nachieved true\n".to_string(),
        })
        .expect("append");
    drop(journal);
    let valid = std::fs::read(dir.join("journal.log")).expect("journal bytes");
    let _ = std::fs::remove_dir_all(&dir);
    let exemplars: &[&[u8]] = &[&valid, b"lopj1 submit 1 4 0000000000000000\nabcd\n"];
    fuzz_parser("journal", vocab, exemplars, |label, input| {
        let (records, offset, _torn) =
            check(label, input, lopacity_daemon::journal::scan_frames);
        assert!(offset <= input.len(), "{label}: replay offset past the buffer");
        drop(records);
    });
}

// --------------------------------------------------------------------
// 5. HTTP requests.

#[test]
fn fuzz_http_request_parser() {
    let vocab: &[&str] = &[
        "GET",
        "POST",
        "PUT",
        "/jobs",
        "/jobs/1",
        "/metrics",
        "HTTP/1.1",
        "HTTP/1.0",
        "HTTP/2",
        "Content-Length:",
        "Connection:",
        "close",
        "keep-alive",
        "Idempotency-Key:",
        "Host:",
        "a:b",
        ":",
        "",
    ];
    let exemplars: &[&[u8]] = &[
        b"GET /metrics HTTP/1.1\r\n\r\n",
        b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nl 1\n\n",
        b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
    ];
    fuzz_parser("http", vocab, exemplars, |label, input| {
        let outcome = check(label, input, |bytes| {
            let mut cursor = Cursor::new(bytes.to_vec());
            lopacity_util::http::Request::parse(&mut cursor)
        });
        if let Err(e) = outcome {
            assert!(!e.to_string().is_empty(), "{label}: empty parse error");
        }
    });
}
