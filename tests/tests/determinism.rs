//! Determinism regression: repeated runs with the same seed produce
//! **byte-identical** reports, including under multi-threaded candidate
//! scans.
//!
//! The sharded scan's tie-breaking is a pure function of (seed, step,
//! candidate index); nothing about thread scheduling may leak into the
//! output. These tests would catch, e.g., a merge order that depends on
//! which worker finished first, or an RNG consumed a different number of
//! times on the parallel path.

// Deliberately exercised through the deprecated wrappers: they are thin
// shims over the session API (`tests/tests/session_api.rs` proves the
// outputs bit-for-bit equal), so these suites keep the compatibility
// surface itself under the determinism/equivalence contract.
#![allow(deprecated)]

use lopacity::opacity::opacity_report_against_original;
use lopacity::{
    edge_removal, edge_removal_insertion, AnonymizationOutcome, AnonymizeConfig, Parallelism,
    StoreBackend, TypeSpec,
};
use lopacity_gen::Dataset;
use lopacity_graph::Graph;

/// Renders everything observable about a run into one byte string: the
/// run report, the full edit lists, the published edge list, and the
/// certified per-type opacity table.
fn rendered(original: &Graph, out: &AnonymizationOutcome, l: u8) -> Vec<u8> {
    let mut text = format!("{out}\n");
    for e in &out.removed {
        text.push_str(&format!("- {e}\n"));
    }
    for e in &out.inserted {
        text.push_str(&format!("+ {e}\n"));
    }
    for e in out.graph.edge_vec() {
        text.push_str(&format!("{e}\n"));
    }
    let report = opacity_report_against_original(original, &out.graph, &TypeSpec::DegreePairs, l);
    text.push_str(&format!("maxLO {}\n", report.max_lo));
    for row in &report.per_type {
        text.push_str(&format!("{}\t{}\t{}\t{:.9}\n", row.label, row.within_l, row.total, row.lo));
    }
    text.into_bytes()
}

/// Runs rem and rem-ins twice each under `parallelism` and asserts the
/// rendered reports are byte-identical.
fn assert_repeat_runs_identical(parallelism: Parallelism, tag: &str) {
    let original = Dataset::Gnutella.generate(120, 9);
    for l in [1u8, 2] {
        let config = AnonymizeConfig::new(l, 0.5).with_seed(17).with_parallelism(parallelism);
        let first = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        let second = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        assert_eq!(
            rendered(&original, &first, l),
            rendered(&original, &second, l),
            "rem is nondeterministic ({tag}, L={l})"
        );
        let first = edge_removal_insertion(&original, &TypeSpec::DegreePairs, &config);
        let second = edge_removal_insertion(&original, &TypeSpec::DegreePairs, &config);
        assert_eq!(
            rendered(&original, &first, l),
            rendered(&original, &second, l),
            "rem-ins is nondeterministic ({tag}, L={l})"
        );
    }
}

#[test]
fn repeated_runs_are_byte_identical_sequentially() {
    assert_repeat_runs_identical(Parallelism::Off, "off");
}

#[test]
fn repeated_runs_are_byte_identical_with_four_workers() {
    // Fixed(4) bypasses the small-input fallback, so every step's scan
    // really crosses thread boundaries — the CI smoke job leans on this
    // test to exercise multi-threaded paths on every push.
    assert_repeat_runs_identical(Parallelism::Fixed(4), "fixed-4");
}

#[test]
fn repeated_runs_are_byte_identical_with_auto() {
    assert_repeat_runs_identical(Parallelism::Auto, "auto");
}

/// The fork-clone perf counter is itself deterministic per configuration:
/// repeated runs warm up identically (same candidate counts, same worker
/// resolution), so a changing counter would reveal scheduling leaking into
/// the warmup decision.
#[test]
fn fork_clone_counter_is_deterministic() {
    let original = Dataset::Gnutella.generate(120, 9);
    for parallelism in [Parallelism::Off, Parallelism::Fixed(4)] {
        // L = 2, θ = 0.3 really steps on this instance (L = 1 is already
        // below every θ the suite uses, which would warm no forks at all).
        let config = AnonymizeConfig::new(2, 0.3).with_seed(17).with_parallelism(parallelism);
        let first = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        let second = edge_removal(&original, &TypeSpec::DegreePairs, &config);
        assert!(first.steps > 0, "instance must actually step ({parallelism})");
        assert_eq!(first.fork_clones, second.fork_clones, "{parallelism}");
        match parallelism {
            Parallelism::Off => assert_eq!(first.fork_clones, 0),
            _ => assert_eq!(first.fork_clones, 3, "Fixed(4) warms exactly 3 forks"),
        }
    }
}

/// The distance-store backend is invisible in every rendered byte: the
/// same seed on dense and sparse stores — sequential and multi-threaded —
/// produces identical reports, edit lists, and published graphs.
#[test]
fn store_backends_match_byte_for_byte() {
    let original = Dataset::Gnutella.generate(120, 9);
    for l in [1u8, 2] {
        for parallelism in [Parallelism::Off, Parallelism::Fixed(4)] {
            let base = AnonymizeConfig::new(l, 0.5).with_seed(17).with_parallelism(parallelism);
            let dense = edge_removal(
                &original,
                &TypeSpec::DegreePairs,
                &base.with_store(StoreBackend::Dense),
            );
            let sparse = edge_removal(
                &original,
                &TypeSpec::DegreePairs,
                &base.with_store(StoreBackend::Sparse),
            );
            assert_eq!(
                rendered(&original, &dense, l),
                rendered(&original, &sparse, l),
                "store backends diverged (L={l}, {parallelism})"
            );
        }
    }
}

#[test]
fn four_workers_match_sequential_byte_for_byte() {
    let original = Dataset::Gnutella.generate(120, 9);
    let base = AnonymizeConfig::new(1, 0.5).with_seed(17);
    let seq = edge_removal(
        &original,
        &TypeSpec::DegreePairs,
        &base.with_parallelism(Parallelism::Off),
    );
    let par = edge_removal(
        &original,
        &TypeSpec::DegreePairs,
        &base.with_parallelism(Parallelism::Fixed(4)),
    );
    assert_eq!(rendered(&original, &seq, 1), rendered(&original, &par, 1));
}
