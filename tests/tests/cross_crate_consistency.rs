//! Consistency checks that span crates: APSP engines under the opacity
//! pipeline, generators under the metrics pipeline, baselines against the
//! core evaluator.

use lopacity::opacity::{count_within_l, opacity_report_with_engine};
use lopacity::{LoAssessment, TypeSpec, TypeSystem};
use lopacity_apsp::ApspEngine;
use lopacity_baselines::LinkDisclosure;
use lopacity_gen::Dataset;
use lopacity_integration::{gnutella, google};
use lopacity_metrics::{geodesic_distribution, GraphStats, Histogram};

#[test]
fn every_engine_yields_identical_opacity_on_real_workloads() {
    for g in [gnutella(60), google(60)] {
        for l in 1..=3u8 {
            let reference =
                opacity_report_with_engine(&g, &TypeSpec::DegreePairs, l, ApspEngine::FloydWarshall);
            for engine in ApspEngine::ALL {
                let got = opacity_report_with_engine(&g, &TypeSpec::DegreePairs, l, engine);
                assert_eq!(
                    got.max_lo.ratio(),
                    reference.max_lo.ratio(),
                    "engine {} at L={l}",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn link_disclosure_equals_l1_opacity_on_all_datasets() {
    for d in Dataset::ALL {
        let g = d.generate(50, 11);
        let ld = LinkDisclosure::new(&g);
        let report = lopacity::opacity_report(&g, &TypeSpec::DegreePairs, 1);
        assert_eq!(
            ld.max_disclosure().ratio(),
            report.max_lo.ratio(),
            "dataset {d}"
        );
    }
}

#[test]
fn geodesic_histogram_mass_matches_pair_count() {
    let g = google(80);
    let n = g.num_vertices() as u64;
    let (hist, unreachable) = geodesic_distribution(&g);
    assert_eq!(hist.total() + unreachable, n * (n - 1) / 2);
    // Distance-1 bucket is exactly the edge count.
    assert_eq!(hist.count(1), g.num_edges() as u64);
}

#[test]
fn graph_stats_degree_moments_match_histogram() {
    let g = gnutella(100);
    let stats = GraphStats::compute(&g);
    let hist = Histogram::from_values(g.degree_sequence());
    assert!((stats.avg_degree - hist.mean()).abs() < 1e-12);
    assert!((stats.degree_stdd - hist.std_dev()).abs() < 1e-12);
    assert!((stats.avg_degree - 2.0 * g.num_edges() as f64 / g.num_vertices() as f64).abs() < 1e-12);
}

#[test]
fn counting_pipeline_is_engine_independent() {
    let g = gnutella(70);
    let types = TypeSystem::build(&g, &TypeSpec::DegreePairs);
    for l in 1..=3u8 {
        let counts_bfs = count_within_l(&ApspEngine::TruncatedBfs.compute(&g, l), &types, l);
        let counts_ptr =
            count_within_l(&ApspEngine::PointerFloydWarshall.compute(&g, l), &types, l);
        assert_eq!(counts_bfs, counts_ptr, "L={l}");
        let a = LoAssessment::from_counts(&counts_bfs, types.denominators());
        let b = LoAssessment::from_counts(&counts_ptr, types.denominators());
        assert_eq!(a.ratio(), b.ratio());
    }
}

#[test]
fn dataset_generators_feed_the_full_pipeline() {
    // Every dataset generator's output must survive the whole stack:
    // stats, opacity, anonymization at a loose θ.
    use lopacity::{AnonymizeConfig, Anonymizer, Removal};
    for d in Dataset::ALL {
        let g = d.generate(40, 3);
        g.check_invariants().unwrap();
        let _ = GraphStats::compute(&g);
        let report = lopacity::opacity_report(&g, &TypeSpec::DegreePairs, 2);
        let out = Anonymizer::new(&g, &TypeSpec::DegreePairs)
            .config(AnonymizeConfig::new(2, 0.9))
            .run(Removal);
        assert!(out.achieved, "dataset {d} at θ=0.9: {out}");
        let _ = report;
    }
}
