//! End-to-end pipelines: generate → anonymize → certify → measure.

use lopacity::opacity::opacity_report_against_original;
use lopacity::{
    AnonymizeConfig, Anonymizer, LookaheadMode, Removal, RemovalInsertion, TypeSpec,
};

/// Shorthand: one-shot Edge Removal through the session API.
fn rem(g: &lopacity_graph::Graph, config: AnonymizeConfig) -> lopacity::AnonymizationOutcome {
    Anonymizer::new(g, &TypeSpec::DegreePairs).config(config).run(Removal)
}

/// Shorthand: one-shot Edge Removal/Insertion through the session API.
fn rem_ins(g: &lopacity_graph::Graph, config: AnonymizeConfig) -> lopacity::AnonymizationOutcome {
    Anonymizer::new(g, &TypeSpec::DegreePairs).config(config).run(RemovalInsertion::default())
}
use lopacity_baselines::{gaded_max, gaded_rand, gades};
use lopacity_integration::{figure_1_graph, gnutella, google};
use lopacity_metrics::{distortion, UtilityReport};

#[test]
fn generate_anonymize_certify_gnutella_l1() {
    let g = gnutella(80);
    for theta in [0.6, 0.4, 0.2] {
        let config = AnonymizeConfig::new(1, theta).with_seed(1);
        let out = rem(&g, config);
        assert!(out.achieved, "θ={theta}: {out}");
        let cert = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
        assert!(cert.max_lo.satisfies(theta), "θ={theta}: certified {}", cert.max_lo);
        // The outcome's own distortion agrees with the metrics crate's.
        let metric = distortion(&g, &out.graph);
        assert!((metric - out.distortion(&g)).abs() < 1e-12);
    }
}

#[test]
fn generate_anonymize_certify_google_l2() {
    let g = google(70);
    let config = AnonymizeConfig::new(2, 0.6).with_seed(3);
    let out = rem(&g, config);
    assert!(out.achieved, "{out}");
    let cert = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 2);
    assert!(cert.max_lo.satisfies(0.6));
    // L = 2 opacity bounds L = 1 opacity: direct links are within 2 hops.
    let cert_l1 = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
    assert!(cert_l1.max_lo.as_f64() <= cert.max_lo.as_f64() + 1e-12);
}

#[test]
fn stricter_theta_costs_at_least_as_much() {
    let g = google(60);
    let mut last_edits = 0usize;
    for theta in [0.8, 0.6, 0.4, 0.2] {
        let config = AnonymizeConfig::new(1, theta).with_seed(5);
        let out = rem(&g, config);
        assert!(out.achieved);
        assert!(
            out.edits() >= last_edits,
            "θ={theta} took {} edits, previous (looser) θ took {last_edits}",
            out.edits()
        );
        last_edits = out.edits();
    }
}

#[test]
fn removal_insertion_preserves_edge_count_when_it_succeeds() {
    let g = gnutella(80);
    let config = AnonymizeConfig::new(1, 0.6).with_seed(7);
    let out = rem_ins(&g, config);
    if out.achieved && out.removed.len() == out.inserted.len() {
        assert_eq!(out.graph.num_edges(), g.num_edges());
    }
}

#[test]
fn all_methods_agree_on_the_certificate_semantics() {
    let g = gnutella(60);
    let theta = 0.5;
    let outcomes = vec![
        rem(&g, AnonymizeConfig::new(1, theta)),
        rem_ins(&g, AnonymizeConfig::new(1, theta)),
        gaded_rand(&g, theta, 1),
        gaded_max(&g, theta),
        gades(&g, theta),
    ];
    for out in outcomes {
        if out.achieved {
            let cert = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
            assert!(
                cert.max_lo.satisfies(theta),
                "method claimed achievement but certificate says {}",
                cert.max_lo
            );
        }
    }
}

#[test]
fn lookahead_modes_both_reach_theta() {
    let g = figure_1_graph();
    for mode in [LookaheadMode::Escalating, LookaheadMode::Exhaustive] {
        let config = AnonymizeConfig::new(1, 0.4).with_lookahead(2).with_mode(mode).with_seed(2);
        let out = rem(&g, config);
        assert!(out.achieved, "mode {mode:?}");
        let cert = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
        assert!(cert.max_lo.satisfies(0.4));
    }
}

#[test]
fn utility_report_tracks_every_edit() {
    let g = google(60);
    let out = rem(&g, AnonymizeConfig::new(1, 0.5));
    let report = UtilityReport::compute(&g, &out.graph);
    assert_eq!(report.edges_removed, out.removed.len());
    assert_eq!(report.edges_inserted, out.inserted.len());
    assert!(report.distortion >= 0.0);
    if !out.removed.is_empty() {
        assert!(report.emd_degree > 0.0 || report.mean_cc_diff >= 0.0);
    }
}

#[test]
fn figure_1_graph_round_trips_through_io() {
    let g = figure_1_graph();
    let mut buf = Vec::new();
    lopacity_graph::io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = lopacity_graph::io::read_edge_list_with_header(buf.as_slice()).unwrap();
    assert_eq!(g, g2);
    // Opacity is invariant under serialization.
    let a = lopacity::opacity_report(&g, &TypeSpec::DegreePairs, 1);
    let b = lopacity::opacity_report(&g2, &TypeSpec::DegreePairs, 1);
    assert_eq!(a.max_lo.ratio(), b.max_lo.ratio());
}
