//! The checkpoint-resume half of the crash-recovery contract:
//!
//! 1. **Capture is free** — arming checkpoint capture on a [`RunControl`]
//!    never changes a run's trajectory (the snapshot is a read).
//! 2. **Resume determinism** — a run interrupted at *any* step boundary
//!    and resumed from the captured [`RunCheckpoint`] produces a final
//!    graph, edit lists, and trial clock **byte-identical** to the
//!    uninterrupted run's, across strategies and both store backends.
//!
//! This is the substrate the `lopacityd` journal's recovery protocol
//! stands on (`crates/daemon/src/journal.rs`): a job killed at any point
//! is re-queued from its last journaled checkpoint, and property (2) is
//! what makes the recovery *provable* rather than best-effort.

use lopacity::{
    AnonymizationOutcome, AnonymizeConfig, Anonymizer, Removal, RemovalInsertion, RunCheckpoint,
    RunControl, StoreBackend, Strategy, TypeSpec,
};
use lopacity_gen::er::gnm;
use lopacity_graph::Graph;

fn config(theta: f64, store: StoreBackend) -> AnonymizeConfig {
    AnonymizeConfig::new(2, theta).with_seed(11).with_store(store)
}

/// Runs to completion while capturing a checkpoint every step; returns the
/// outcome and every distinct checkpoint the control published.
fn run_with_checkpoints<S: Strategy + Clone>(
    g: &Graph,
    cfg: AnonymizeConfig,
    strategy: S,
) -> (AnonymizationOutcome, Vec<RunCheckpoint>) {
    struct Collector<'c> {
        control: &'c RunControl,
        seen: Vec<RunCheckpoint>,
    }
    impl lopacity::ProgressObserver for Collector<'_> {
        fn on_step(&mut self, _event: &lopacity::StepEvent) {
            if let Some(ck) = self.control.take_checkpoint() {
                self.seen.push(ck);
            }
        }
    }
    let control = RunControl::new();
    control.set_checkpoint_every(Some(1));
    let mut collector = Collector { control: &control, seen: Vec::new() };
    let mut session = Anonymizer::new(g, &TypeSpec::DegreePairs)
        .config(cfg)
        .control(control.clone())
        .observer(&mut collector);
    let out = session.run(strategy);
    drop(session);
    (out, collector.seen)
}

fn assert_identical(full: &AnonymizationOutcome, resumed: &AnonymizationOutcome, tag: &str) {
    assert_eq!(full.graph, resumed.graph, "{tag}: final graphs differ");
    assert_eq!(full.removed, resumed.removed, "{tag}: removal lists differ");
    assert_eq!(full.inserted, resumed.inserted, "{tag}: insertion lists differ");
    assert_eq!(full.steps, resumed.steps, "{tag}: step counts differ");
    assert_eq!(full.trials, resumed.trials, "{tag}: trial clocks differ");
    assert_eq!(full.achieved, resumed.achieved, "{tag}: verdicts differ");
    assert_eq!(full.final_lo, resumed.final_lo, "{tag}: final maxLO differs");
}

/// Arming checkpoint capture must not perturb the run.
#[test]
fn capture_is_observationally_free() {
    let g = gnm(40, 100, 7);
    for store in [StoreBackend::Dense, StoreBackend::Sparse] {
        let cfg = config(0.4, store);
        let plain =
            Anonymizer::new(&g, &TypeSpec::DegreePairs).config(cfg).run(RemovalInsertion::default());
        let (captured, checkpoints) = run_with_checkpoints(&g, cfg, RemovalInsertion::default());
        assert_identical(&plain, &captured, "capture-on vs capture-off");
        assert_eq!(checkpoints.len(), captured.steps, "one checkpoint per step");
    }
}

/// Resuming from every checkpoint of a removal run reproduces the
/// uninterrupted outcome byte-for-byte, on both store backends.
#[test]
fn removal_resumes_identically_from_every_step() {
    let g = gnm(40, 100, 7);
    for store in [StoreBackend::Dense, StoreBackend::Sparse] {
        let cfg = config(0.35, store);
        let (full, checkpoints) = run_with_checkpoints(&g, cfg, Removal);
        assert!(full.steps >= 3, "need a multi-step run, got {}", full.steps);
        for ck in &checkpoints {
            let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(cfg);
            let resumed = session.resume_run(Removal, ck);
            assert_identical(&full, &resumed, &format!("{store:?} resume@step{}", ck.steps));
        }
    }
}

/// Same for removal-insertion, whose strategy state (the `E_D`/`E_A`
/// anti-oscillation sets) must be rebuilt from the checkpoint's edit
/// lists.
#[test]
fn removal_insertion_resumes_identically_from_every_step() {
    let g = gnm(36, 80, 3);
    for store in [StoreBackend::Dense, StoreBackend::Sparse] {
        let cfg = config(0.3, store);
        let (full, checkpoints) = run_with_checkpoints(&g, cfg, RemovalInsertion::default());
        assert!(full.steps >= 3, "need a multi-step run, got {}", full.steps);
        for ck in &checkpoints {
            let strategy = RemovalInsertion::with_forbidden(
                ck.removed.iter().copied(),
                ck.inserted.iter().copied(),
            );
            let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(cfg);
            let resumed = session.resume_run(strategy, ck);
            assert_identical(&full, &resumed, &format!("{store:?} resume@step{}", ck.steps));
        }
    }
}

/// The crash shape the daemon journal actually sees: the run is *cut off*
/// by a cancel mid-flight, the last published checkpoint is all that
/// survives, and the resume from it must still land on the uninterrupted
/// final graph.
#[test]
fn cancel_then_resume_matches_the_uninterrupted_run() {
    let g = gnm(40, 100, 7);
    let cfg = config(0.3, StoreBackend::Auto);
    let (full, _) = run_with_checkpoints(&g, cfg, Removal);
    assert!(full.steps >= 4);

    // Interrupt after step 2 via the dynamic step budget (deterministic),
    // keeping the last checkpoint the control captured.
    let control = RunControl::new();
    control.set_checkpoint_every(Some(1));
    control.set_max_steps(Some(2));
    let mut session =
        Anonymizer::new(&g, &TypeSpec::DegreePairs).config(cfg).control(control.clone());
    let partial = session.run(Removal);
    assert!(!partial.achieved && partial.steps == 2, "interrupted at step 2: {partial}");
    let ck = control.latest_checkpoint().expect("a checkpoint was captured");
    assert_eq!(ck.steps, 2);
    assert_eq!(ck.removed, partial.removed, "checkpoint edits match the partial outcome");

    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs).config(cfg);
    let resumed = session.resume_run(Removal, &ck);
    assert_identical(&full, &resumed, "cancel@2 then resume");
}
