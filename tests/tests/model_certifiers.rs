//! Every privacy model's repair satisfies its **own** certifier, for
//! random G(n, m) graphs, across both distance-store backends and worker
//! counts {1, 4} — and repairs are byte-identical on replay.
//!
//! This is the rival-model counterpart of the determinism and Theorem 1
//! suites: `crates/models` plugs k-degree anonymity and (k, ℓ)-adjacency
//! anonymity into the same session machinery as L-opacity, so they
//! inherit the same contract — a repair that only certifies on one
//! backend, or that changes between identically-seeded runs, silently
//! changes the privacy guarantee.

use lopacity::{
    AnonymizationOutcome, AnonymizeConfig, Anonymizer, LOpacity, Parallelism, PrivacyModel,
    StoreBackend, TypeSpec,
};
use lopacity_gen::er::gnm;
use lopacity_models::{KDegreeAnonymity, KLAdjacencyAnonymity};
use proptest::prelude::*;

/// The combinations every (graph, model) pair is exercised under.
const COMBOS: [(StoreBackend, usize); 4] = [
    (StoreBackend::Dense, 1),
    (StoreBackend::Dense, 4),
    (StoreBackend::Sparse, 1),
    (StoreBackend::Sparse, 4),
];

/// Renders everything observable about an outcome into one byte string,
/// so "byte-identical on replay" means edit lists and the published
/// graph, not just summary counters.
fn rendered(out: &AnonymizationOutcome) -> Vec<u8> {
    let mut text = format!("{out}\n");
    for e in &out.removed {
        text.push_str(&format!("- {e}\n"));
    }
    for e in &out.inserted {
        text.push_str(&format!("+ {e}\n"));
    }
    for e in out.graph.edge_vec() {
        text.push_str(&format!("{e}\n"));
    }
    text.into_bytes()
}

/// Runs `model`'s repair on `g` under every store × worker combination:
/// the session's `achieved` flag must agree with the model's own
/// certifier, and a second identically-configured run must be
/// byte-identical. `must_achieve` additionally demands success — set for
/// the models whose repairs guarantee termination-with-success (removal
/// can always empty the graph; the degree-based repairs concede toward
/// the complete graph). Removal-insertion can legitimately stall at its
/// step cap, so it only gets the agreement check.
fn assert_repairs_certify_and_replay(
    g: &lopacity_graph::Graph,
    model: &dyn PrivacyModel,
    must_achieve: bool,
    base: &AnonymizeConfig,
    types: &TypeSpec,
    context: &str,
) -> Result<(), TestCaseError> {
    for (store, workers) in COMBOS {
        let config =
            base.clone().with_store(store).with_parallelism(Parallelism::Fixed(workers));
        let run = |g: &lopacity_graph::Graph| {
            Anonymizer::new(g, types).config(config.clone()).run_once(model.repair_strategy())
        };
        let out = run(g);
        if must_achieve {
            prop_assert!(
                out.achieved,
                "{} did not finish achieved ({context}, {store:?}, workers={workers})",
                model.label()
            );
        }
        prop_assert_eq!(
            out.achieved,
            model.certify(&out.graph),
            "{}'s achieved flag disagrees with its certifier ({}, {:?}, workers={})",
            model.label(),
            context,
            store,
            workers
        );
        prop_assert_eq!(
            out.achieved,
            model.violations(&out.graph) == 0,
            "{}'s achieved flag disagrees with its violation count ({}, {:?}, workers={})",
            model.label(),
            context,
            store,
            workers
        );
        let replay = run(g);
        prop_assert_eq!(
            rendered(&out),
            rendered(&replay),
            "{} repair is not replayable ({}, {:?}, workers={})",
            model.label(),
            context,
            store,
            workers
        );
    }
    Ok(())
}

proptest! {
    // Each case exercises 4 models × 4 combos × 2 runs = 32 session runs,
    // so the case count and graph sizes stay modest: the ℓ = 2 greedy
    // repair re-certifies (O(|V|^ℓ · |V|) with a graph clone) for every
    // absent edge on every step, which is the budget ceiling here.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_model_repair_certifies_under_its_own_notion(
        n in 8usize..15,
        density in 1usize..4,
        l in 1u8..3,
        theta in 0.2f64..0.8,
        k in 2usize..5,
        ell in 1usize..3,
        seed in 0u64..1 << 48,
    ) {
        let g = gnm(n, density * n / 2 + 3, seed);
        let types = TypeSpec::DegreePairs;
        let base = AnonymizeConfig::new(l, theta).with_seed(seed);
        let context = format!("n={n} m={} L={l} θ={theta:.2} k={k} ℓ={ell} seed={seed}", g.num_edges());

        let lop_rem = LOpacity::removal(types.clone(), l, theta).against_original(&g);
        let lop_ri = LOpacity::removal_insertion(types.clone(), l, theta).against_original(&g);
        let kdeg = KDegreeAnonymity::new(k);
        let kladj = KLAdjacencyAnonymity::new(k, ell);
        let models: [(&dyn PrivacyModel, bool); 4] =
            [(&lop_rem, true), (&lop_ri, false), (&kdeg, true), (&kladj, true)];
        for (model, must_achieve) in models {
            assert_repairs_certify_and_replay(&g, model, must_achieve, &base, &types, &context)?;
        }
    }
}

/// The certifiers themselves agree with a from-scratch session run on the
/// paper-scale stand-in — a non-random anchor so a proptest seed change
/// can never silently shrink coverage to trivial graphs.
#[test]
fn certified_repairs_on_the_gnutella_stand_in() {
    let g = lopacity_integration::gnutella(100);
    let types = TypeSpec::DegreePairs;
    let base = AnonymizeConfig::new(2, 0.4).with_seed(7);

    let models: [Box<dyn PrivacyModel>; 3] = [
        Box::new(LOpacity::removal(types.clone(), 2, 0.4).against_original(&g)),
        Box::new(KDegreeAnonymity::new(3)),
        Box::new(KLAdjacencyAnonymity::new(3, 1)),
    ];
    for model in &models {
        let out = Anonymizer::new(&g, &types)
            .config(base.clone())
            .run_once(model.repair_strategy());
        assert!(out.achieved, "{} did not achieve on the stand-in", model.label());
        assert!(
            model.certify(&out.graph),
            "{} fails its own certifier on the stand-in",
            model.label()
        );
        let leak = model.leakage(&out.graph);
        assert!((0.0..=1.0).contains(&leak), "{} leakage {leak} out of range", model.label());
    }
}
