//! Theorem 1, verified: on small instances, a 3-SAT formula is satisfiable
//! **iff** its reduction graph admits an (L=3, θ=2/3) opacification with
//! exactly N variable-edge removals — checked by exhaustive enumeration.

use lopacity_sat::{brute_force_sat, decode_assignment, Cnf3, Reduction};

/// Enumerates all 2^N assignments and checks both directions of the
/// reduction on each.
fn verify_equivalence(cnf: &Cnf3) {
    let reduction = Reduction::build(cnf);
    for bits in 0u64..(1 << cnf.num_vars) {
        let assignment: Vec<bool> = (0..cnf.num_vars).map(|i| bits >> i & 1 == 1).collect();
        let removals = reduction.removals_for_assignment(&assignment);
        let opaque = reduction.is_opaque_after(&removals);
        let satisfied = cnf.eval(&assignment);
        assert_eq!(
            opaque, satisfied,
            "assignment {assignment:?}: opaque={opaque} but satisfied={satisfied}"
        );
        // The decode round-trips.
        assert_eq!(decode_assignment(&reduction, &removals).unwrap(), assignment);
    }
}

#[test]
fn equivalence_on_the_paper_example() {
    verify_equivalence(&Cnf3::paper_example());
}

#[test]
fn equivalence_on_random_satisfiable_and_unsatisfiable_instances() {
    for seed in 1..6u64 {
        // Denser clause/variable ratios mix SAT and UNSAT instances.
        let cnf = Cnf3::random(4, 14, seed);
        verify_equivalence(&cnf);
    }
}

#[test]
fn sat_solver_and_reduction_agree_on_satisfiability() {
    for seed in 1..8u64 {
        let cnf = Cnf3::random(4, 12, seed * 31);
        let reduction = Reduction::build(&cnf);
        let solvable_by_reduction = (0u64..(1 << cnf.num_vars)).any(|bits| {
            let assignment: Vec<bool> = (0..cnf.num_vars).map(|i| bits >> i & 1 == 1).collect();
            reduction.is_opaque_after(&reduction.removals_for_assignment(&assignment))
        });
        assert_eq!(
            solvable_by_reduction,
            brute_force_sat(&cnf).is_some(),
            "seed {seed}: reduction and SAT solver disagree"
        );
    }
}

#[test]
fn greedy_opacification_solves_satisfiable_instances() {
    // Not guaranteed by theory (the greedy is a heuristic), but on these
    // friendly instances it reliably finds N-removal solutions — the
    // executable counterpart of the reduction.
    use lopacity::{AnonymizeConfig, Anonymizer, Removal};
    use lopacity_sat::{REDUCTION_L, REDUCTION_THETA};
    let cnf = Cnf3::paper_example();
    let reduction = Reduction::build(&cnf);
    let config = AnonymizeConfig::new(REDUCTION_L, REDUCTION_THETA).with_seed(5);
    let out = Anonymizer::new(&reduction.graph, &reduction.spec).config(config).run(Removal);
    assert!(out.achieved);
    let assignment = decode_assignment(&reduction, &out.removed)
        .expect("greedy should only remove variable edges here");
    assert!(cnf.eval(&assignment), "decoded assignment must satisfy the formula");
}
