//! The cooperative interruption contract of [`RunControl`]:
//!
//! 1. **Prefix property** — an interrupted run's committed trajectory is
//!    bit-for-bit a *prefix* of the uninterrupted run's: cancellation or a
//!    dynamic budget can only cut the run short, never steer it onto moves
//!    the full run would not have made.
//! 2. **Determinism** — for a fixed dynamic budget value the stopping
//!    point is itself deterministic (the budget is compared against the
//!    deterministic trial/step clock at fixed checkpoints), so partial
//!    outcomes are reproducible.
//! 3. **Inertness** — an attached-but-untouched control changes nothing;
//!    the whole interruption layer rides on checks that are `false` in
//!    every pre-existing code path.
//!
//! This is the substrate the `lopacityd` daemon's cancel endpoint and
//! per-job budgets stand on (`crates/daemon`).

use lopacity::{
    AnonymizationOutcome, AnonymizeConfig, Anonymizer, ExactMinRemovals, ProgressObserver,
    Removal, RunControl, StepEvent, TypeSpec,
};
use lopacity_gen::er::gnm;
use lopacity_graph::Graph;

fn full_run(g: &Graph, config: AnonymizeConfig) -> AnonymizationOutcome {
    Anonymizer::new(g, &TypeSpec::DegreePairs).config(config).run_once(Removal)
}

/// A control cancelled before the run starts stops it before any step.
#[test]
fn cancelled_control_stops_before_the_first_step() {
    let g = gnm(30, 70, 5);
    let control = RunControl::new();
    control.cancel();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(2, 0.0).with_seed(1))
        .control(control);
    let out = session.run(Removal);
    assert!(!out.achieved);
    assert_eq!(out.steps, 0);
    assert!(out.removed.is_empty() && out.inserted.is_empty());
}

/// An attached but untouched control is inert: the outcome is bit-for-bit
/// the no-control run's.
#[test]
fn untouched_control_changes_nothing() {
    let g = gnm(30, 70, 5);
    let config = AnonymizeConfig::new(2, 0.55).with_seed(1);
    let plain = full_run(&g, config);
    let mut session =
        Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config).control(RunControl::new());
    let controlled = session.run(Removal);
    assert_eq!(plain.removed, controlled.removed);
    assert_eq!(plain.trials, controlled.trials);
    assert_eq!(plain.steps, controlled.steps);
    assert_eq!(plain.achieved, controlled.achieved);
    assert_eq!(plain.graph, controlled.graph);
}

/// A dynamic step budget truncates the trajectory to exactly its first k
/// steps — same moves, same order.
#[test]
fn step_budgeted_trajectory_is_a_prefix_of_the_full_run() {
    let g = gnm(30, 70, 5);
    let config = AnonymizeConfig::new(2, 0.0).with_seed(1);
    let full = full_run(&g, config);
    assert!(full.steps >= 4, "need a long enough run to truncate ({} steps)", full.steps);
    for k in [1u64, 2, 3] {
        let control = RunControl::new();
        control.set_max_steps(Some(k));
        let mut session =
            Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config).control(control);
        let part = session.run(Removal);
        assert_eq!(part.steps as u64, k);
        assert!(!part.achieved);
        assert_eq!(
            part.removed.as_slice(),
            &full.removed[..part.removed.len()],
            "k={k}: interrupted removals are not a prefix of the full run's"
        );
    }
}

/// A dynamic trial budget stops the run at its first checkpoint at or past
/// the cap — deterministically, with a prefix trajectory, without the
/// silent-truncation semantics of the static config budget (the scan that
/// crosses the cap completes; the run never starts another).
#[test]
fn trial_budgeted_run_stops_deterministically_past_the_cap() {
    let g = gnm(30, 70, 5);
    let config = AnonymizeConfig::new(2, 0.0).with_seed(1);
    let full = full_run(&g, config);
    let cap = full.trials / 3;
    assert!(cap > 0);

    let run_with_cap = || {
        let control = RunControl::new();
        control.set_max_trials(Some(cap));
        let mut session =
            Anonymizer::new(&g, &TypeSpec::DegreePairs).config(config).control(control);
        session.run(Removal)
    };
    let a = run_with_cap();
    let b = run_with_cap();
    assert!(!a.achieved);
    assert!(a.trials >= cap, "stops only once the clock reaches the cap");
    assert!(a.trials < full.trials);
    assert_eq!(a.removed.as_slice(), &full.removed[..a.removed.len()], "prefix property");
    // Reproducible partial outcome — the daemon's budget-interruption
    // determinism criterion.
    assert_eq!(a.removed, b.removed);
    assert_eq!(a.trials, b.trials);
    assert_eq!(a.steps, b.steps);
}

/// Observer that cancels its control after a fixed number of committed
/// steps — a deterministic stand-in for a remote cancel request arriving
/// mid-run.
struct CancelAfter {
    control: RunControl,
    after: usize,
    seen: Vec<StepEvent>,
}

impl ProgressObserver for CancelAfter {
    fn on_step(&mut self, event: &StepEvent) {
        self.seen.push(*event);
        if event.step >= self.after {
            self.control.cancel();
        }
    }
}

/// A cancel arriving mid-run (here: raised inside the step observer, the
/// same checkpoint cadence a daemon's HTTP cancel hits) stops the run at
/// the next checkpoint, leaving a partial trajectory that is a prefix of
/// the uncancelled run's — the daemon acceptance criterion.
#[test]
fn mid_run_cancel_leaves_a_prefix_trajectory() {
    let g = gnm(30, 70, 5);
    let config = AnonymizeConfig::new(2, 0.0).with_seed(1);
    let full = full_run(&g, config);
    assert!(full.steps >= 4);

    let control = RunControl::new();
    let mut observer = CancelAfter { control: control.clone(), after: 2, seen: Vec::new() };
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(config)
        .observer(&mut observer)
        .control(control);
    let out = session.run(Removal);
    drop(session);

    assert!(!out.achieved);
    assert_eq!(out.steps, 2, "cancel after step 2 must land before step 3 commits");
    assert_eq!(observer.seen.len(), 2);
    assert_eq!(out.removed.as_slice(), &full.removed[..out.removed.len()], "prefix property");
}

/// The exact strategy honors the dynamic controls at its own checkpoints:
/// cancellation between deepening levels prevents any commit.
#[test]
fn exact_strategy_polls_the_control() {
    let g = gnm(8, 14, 2);
    let control = RunControl::new();
    control.cancel();
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(1, 0.5).with_seed(1))
        .control(control);
    let out = session.run(ExactMinRemovals::default());
    assert!(!out.achieved);
    assert!(out.removed.is_empty());
}
