//! Anchors for the admission-control footprint estimator: the spec-only
//! prediction `estimate_footprint(n, m, l, store)` against the bytes a
//! real [`DistStore`] build actually occupies, at the two scales the
//! paper's memory experiments report (`n = 10³` and `n = 10⁴`).
//!
//! The daemon rejects jobs *before* building anything based on this
//! estimate, so the property that matters for safety is that the build
//! never dwarfs the prediction; the property that matters for utilization
//! is that the prediction is not orders of magnitude above reality.

use lopacity_apsp::{estimate_footprint, ApspEngine, DistStore, StoreBackend};
use lopacity_gen::er::gnm;
use lopacity_util::Parallelism;

const L: u8 = 3;

/// Builds the store for a seeded G(n, m) and returns
/// `(measured_bytes, estimated_bytes)`.
fn anchor(n: usize, m: usize, backend: StoreBackend) -> (u64, u64) {
    let graph = gnm(n, m, 42);
    let store = DistStore::build(&graph, L, ApspEngine::TruncatedBfs, Parallelism::Fixed(1), backend);
    (store.storage_bytes() as u64, estimate_footprint(n, m, L, backend))
}

/// Dense is the easy half: the packed triangle's size is a closed form of
/// `n` and `l` alone, so the estimate must be *exact*.
#[test]
fn dense_estimate_is_exact() {
    for n in [1_000usize, 10_000] {
        let (measured, estimated) = anchor(n, 2 * n, StoreBackend::Dense);
        assert_eq!(estimated, measured, "dense n={n}");
    }
}

/// Sparse goes through the branching-process ball approximation; on the
/// locally tree-like G(n, m) family it must land within a small constant
/// factor of the arena a real build allocates — close enough that a
/// budget sized from the estimate neither admits a job 4x its prediction
/// nor wastes 4x the memory it reserves.
#[test]
fn sparse_estimate_tracks_measured_bytes_within_4x() {
    for n in [1_000usize, 10_000] {
        let (measured, estimated) = anchor(n, 2 * n, StoreBackend::Sparse);
        assert!(
            estimated <= measured * 4,
            "n={n}: estimate {estimated} is more than 4x the measured {measured} bytes"
        );
        assert!(
            measured <= estimated * 4,
            "n={n}: measured {measured} bytes exceed 4x the {estimated}-byte estimate"
        );
    }
}

/// `Auto` is what job specs default to, so it is what admission control
/// actually prices. Whatever representation the build resolves to, the
/// real bytes must stay within the same 4x envelope of the prediction —
/// the estimator and the builder must not disagree about which backend
/// wins by more than that.
#[test]
fn auto_estimate_bounds_the_resolved_build() {
    for n in [1_000usize, 10_000] {
        let (measured, estimated) = anchor(n, 2 * n, StoreBackend::Auto);
        assert!(
            measured <= estimated * 4,
            "n={n}: auto build used {measured} bytes against a {estimated}-byte estimate"
        );
        assert!(
            estimated <= measured * 4,
            "n={n}: auto estimate {estimated} is more than 4x the measured {measured} bytes"
        );
    }
}

/// Monotonicity sanity for the admission boundary: a bigger declared job
/// never estimates smaller (in `n` at fixed density, and in `l`), so a
/// budget that rejects a spec also rejects every strictly larger one.
#[test]
fn estimates_are_monotone_in_declared_size() {
    let mut last = 0u64;
    for n in [100usize, 1_000, 10_000, 100_000] {
        let e = estimate_footprint(n, 2 * n, L, StoreBackend::Auto);
        assert!(e >= last, "estimate shrank at n={n}: {e} < {last}");
        last = e;
    }
    let mut last = 0u64;
    for l in 1..=8u8 {
        let e = estimate_footprint(10_000, 20_000, l, StoreBackend::Sparse);
        assert!(e >= last, "sparse estimate shrank at l={l}: {e} < {last}");
        last = e;
    }
}
