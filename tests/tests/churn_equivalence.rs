//! Oracle equivalence for incremental re-certification under churn.
//!
//! The churn contract: after replaying *any* external edge-event stream
//! through a [`ChurnSession`], the incrementally maintained state — graph,
//! truncated distances, per-type within-L counts, live-pair counter — must
//! be **bit-for-bit equal** to a fresh evaluator build over the mutated
//! graph under the session's frozen types, and the whole trajectory
//! (batch reports and certified repair patches) must be invariant under
//! store backend, APSP engine, and scan worker count, and byte-identical
//! on a second replay of the same stream.
//!
//! Streams are 200 random insert/delete events over a vertex pool small
//! enough (≤ 16 vertices ⇒ ≤ 120 pairs) that duplicates, deletes of
//! absent edges, and re-inserts of tombstoned edges all occur in every
//! case — the no-op and revival paths are load-bearing here, not corner
//! cases.

use lopacity::{
    AnonymizeConfig, Anonymizer, BatchReport, ChurnSession, EdgeEvent, OpacityEvaluator,
    Parallelism, Removal, RepairPatch, StoreBackend, TypeSpec,
};
use lopacity_apsp::ApspEngine;
use lopacity_gen::er::gnm;
use lopacity_graph::{Edge, Graph};
use lopacity_util::testkit;
use proptest::prelude::*;

const BACKENDS: [StoreBackend; 2] = [StoreBackend::Dense, StoreBackend::Sparse];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const BATCH: usize = 20;

/// One generated scenario: a random G(n, m) graph and a 200-event stream.
#[derive(Debug, Clone)]
struct Case {
    graph: Graph,
    events: Vec<EdgeEvent>,
    l: u8,
    theta: f64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (8u32..=16, 1u8..=2, 0.4f64..0.9, any::<u64>())
        .prop_flat_map(|(n, l, theta, seed)| {
            let raw = proptest::collection::vec((0..n, 0..n, any::<bool>()), 200);
            (Just((n, l, theta, seed)), raw)
        })
        .prop_map(|((n, l, theta, seed), raw)| {
            let graph = gnm(n as usize, 2 * n as usize, seed);
            let events = raw
                .into_iter()
                .map(|(u, v, insert)| {
                    // Redirect would-be self-loops instead of discarding
                    // them, keeping every stream at exactly 200 events.
                    let v = if u == v { (v + 1) % n } else { v };
                    let e = Edge::new(u, v);
                    if insert { EdgeEvent::Insert(e) } else { EdgeEvent::Delete(e) }
                })
                .collect();
            Case { graph, events, l, theta }
        })
}

/// Everything observable about one replay of a stream.
struct Trajectory {
    reports: Vec<BatchReport>,
    patches: Vec<RepairPatch>,
    session: ChurnSession,
}

/// Replays `case` on a fresh session: certify the seed graph first (the
/// stream then churns a *certified* graph, as in a deployment), apply the
/// events in fixed-size batches, repair on every violation, and verify
/// the incremental state against a full recomputation at the end.
fn replay(
    case: &Case,
    backend: StoreBackend,
    engine: ApspEngine,
    workers: usize,
) -> Result<Trajectory, TestCaseError> {
    let spec = TypeSpec::DegreePairs;
    let config = AnonymizeConfig::new(case.l, case.theta)
        .with_store(backend)
        .with_engine(engine)
        .with_parallelism(Parallelism::Fixed(workers));
    let mut session = ChurnSession::new(Anonymizer::new(&case.graph, &spec).config(config));
    let mut reports = Vec::new();
    let mut patches = Vec::new();
    if !session.is_certified() {
        patches.push(session.repair(Removal));
    }
    for window in case.events.chunks(BATCH) {
        let report = session.apply_batch(window);
        if report.violated {
            patches.push(session.repair(Removal));
        }
        reports.push(report);
    }
    prop_assert!(
        session.certify().is_ok(),
        "incremental state failed self-certification ({backend}, {engine:?}, {workers}w)"
    );
    Ok(Trajectory { reports, patches, session })
}

/// The fresh-build oracle: a new evaluator over the mutated graph with the
/// session's *frozen* type system, equal to the incremental state cell for
/// cell.
fn assert_matches_oracle(
    t: &Trajectory,
    l: u8,
    oracle_engine: ApspEngine,
    oracle_backend: StoreBackend,
    context: &str,
) -> Result<(), TestCaseError> {
    let inc = t.session.evaluator();
    let oracle = OpacityEvaluator::with_type_system(
        inc.graph().clone(),
        inc.types().clone(),
        l,
        oracle_engine,
        Parallelism::Off,
        oracle_backend,
    );
    prop_assert_eq!(inc.counts(), oracle.counts(), "within-L counts: {}", context);
    prop_assert_eq!(inc.live_pairs(), oracle.live_pairs(), "live pairs: {}", context);
    prop_assert_eq!(
        inc.assessment().ratio(),
        oracle.assessment().ratio(),
        "assessment: {}",
        context
    );
    let n = inc.graph().num_vertices();
    if let Err(mismatch) = testkit::cells_match(
        n,
        |i, j| inc.dist_store().get(i, j),
        |i, j| oracle.dist_store().get(i, j),
        context,
    ) {
        return Err(TestCaseError::fail(mismatch));
    }
    Ok(())
}

fn assert_trajectories_identical(
    a: &Trajectory,
    b: &Trajectory,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.reports, &b.reports, "batch reports: {}", context);
    prop_assert_eq!(&a.patches, &b.patches, "repair patches: {}", context);
    prop_assert_eq!(
        a.session.evaluator().graph(),
        b.session.evaluator().graph(),
        "final graphs: {}",
        context
    );
    Ok(())
}

/// Regression (issue 7 satellite): `OpacityEvaluator::apply_external`
/// must keep the live-pair counter — the quantity behind
/// `estimated_trial_cost()` and therefore the scan's work-based `Auto`
/// sharding decision — exactly in sync through a long noisy stream. After
/// 200 events the counter must equal a fresh build's, on both backends,
/// so churn can never mis-shard later scans. (Deterministic companion to
/// the property suite below: a fixed stream, pinned forever.)
#[test]
fn live_pair_counter_matches_fresh_build_after_200_event_stream() {
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }
    for backend in BACKENDS {
        let g = gnm(60, 140, 99);
        let spec = TypeSpec::DegreePairs;
        let anonymizer =
            Anonymizer::new(&g, &spec).config(AnonymizeConfig::new(3, 1.0).with_store(backend));
        let mut s = ChurnSession::new(anonymizer);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut events = Vec::new();
        for _ in 0..200 {
            let u = (xorshift(&mut state) % 60) as u32;
            let mut v = (xorshift(&mut state) % 60) as u32;
            if u == v {
                v = (v + 1) % 60;
            }
            let e = Edge::new(u, v);
            events.push(if xorshift(&mut state) & 1 == 0 {
                EdgeEvent::Insert(e)
            } else {
                EdgeEvent::Delete(e)
            });
        }
        let _ = s.apply_batch(&events);
        let oracle = OpacityEvaluator::with_type_system(
            s.evaluator().graph().clone(),
            s.evaluator().types().clone(),
            3,
            ApspEngine::default(),
            Parallelism::Off,
            backend,
        );
        assert_eq!(
            s.evaluator().live_pairs(),
            oracle.live_pairs(),
            "{backend}: live-pair counter drifted from fresh build"
        );
        assert_eq!(
            s.evaluator().estimated_trial_cost(),
            oracle.estimated_trial_cost(),
            "{backend}: the scan-sharding cost estimate drifted"
        );
        s.certify().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full equivalence matrix on one generated stream:
    ///
    /// * the canonical replay (dense, default engine, 1 worker) equals the
    ///   fresh-build oracle under every engine × backend;
    /// * every backend × worker-count replay is trajectory-identical to
    ///   the canonical one (sparse included, so tombstone revival and
    ///   compaction are on the replayed path);
    /// * every initial-build engine produces the identical trajectory;
    /// * replaying the canonical configuration a second time is
    ///   byte-identical — patches compare as whole values.
    #[test]
    fn incremental_replay_equals_fresh_build_for_every_configuration(case in arb_case()) {
        let canonical = replay(&case, StoreBackend::Dense, ApspEngine::default(), 1)?;
        prop_assert_eq!(
            canonical.session.events_applied() + canonical.session.events_skipped(),
            200,
            "every event is consumed"
        );

        for engine in ApspEngine::ALL {
            for backend in BACKENDS {
                assert_matches_oracle(
                    &canonical, case.l, engine, backend,
                    &format!("oracle {engine:?}/{backend}"),
                )?;
            }
        }

        for backend in BACKENDS {
            for workers in WORKER_COUNTS {
                let other = replay(&case, backend, ApspEngine::default(), workers)?;
                assert_trajectories_identical(
                    &canonical, &other,
                    &format!("{backend} workers={workers}"),
                )?;
            }
        }

        for engine in ApspEngine::ALL {
            let other = replay(&case, StoreBackend::Sparse, engine, 1)?;
            assert_trajectories_identical(&canonical, &other, &format!("build engine {engine:?}"))?;
        }

        let again = replay(&case, StoreBackend::Dense, ApspEngine::default(), 1)?;
        assert_trajectories_identical(&canonical, &again, "second replay")?;
    }

    /// Churn streams that *undo* a certified repair (re-insert exactly the
    /// removed edges) must be detected as violations and re-repaired to a
    /// certified state — on both backends, with identical patches.
    #[test]
    fn re_inserting_repaired_edges_is_detected_and_re_repaired(
        n in 8u32..=16, seed in any::<u64>(), theta in 0.3f64..0.7,
    ) {
        let graph = gnm(n as usize, 2 * n as usize, seed);
        let spec = TypeSpec::DegreePairs;
        let mut per_backend = Vec::new();
        for backend in BACKENDS {
            let config = AnonymizeConfig::new(1, theta).with_store(backend);
            let mut session = ChurnSession::new(Anonymizer::new(&graph, &spec).config(config));
            let initial = session.repair(Removal);
            prop_assert!(initial.achieved, "{}: greedy removal always certifies at L = 1", backend);
            let undo: Vec<EdgeEvent> =
                initial.removed.iter().map(|&e| EdgeEvent::Insert(e)).collect();
            let report = session.apply_batch(&undo);
            prop_assert_eq!(report.applied, undo.len(), "{}", backend);
            if report.violated {
                let patch = session.repair(Removal);
                prop_assert!(patch.achieved, "{}", backend);
            }
            prop_assert!(session.is_certified(), "{}", backend);
            prop_assert!(session.certify().is_ok(), "{}", backend);
            per_backend.push((report, session.into_graph()));
        }
        let (dense, sparse) = (&per_backend[0], &per_backend[1]);
        prop_assert_eq!(&dense.0, &sparse.0, "reports diverged");
        prop_assert_eq!(&dense.1, &sparse.1, "graphs diverged");
    }
}
