//! Shared fixtures for the cross-crate integration tests.

use lopacity_graph::Graph;

/// The paper's Figure 1 running example (0-indexed).
pub fn figure_1_graph() -> Graph {
    Graph::from_edges(
        7,
        [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
    )
    .expect("simple by construction")
}

/// A deterministic mid-sized test workload: the Gnutella stand-in at `n`.
pub fn gnutella(n: usize) -> Graph {
    lopacity_gen::Dataset::Gnutella.generate(n, 0xBEEF)
}

/// A deterministic clustered workload: the Google stand-in at `n`.
pub fn google(n: usize) -> Graph {
    lopacity_gen::Dataset::Google.generate(n, 0xBEEF)
}
