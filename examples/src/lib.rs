//! Shared helpers for the runnable examples.

use lopacity_graph::Graph;

/// The paper's running example (Figure 1), 0-indexed: degrees
/// `[2, 4, 4, 2, 4, 3, 1]`, ten edges.
pub fn figure_1_graph() -> Graph {
    Graph::from_edges(
        7,
        [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
    )
    .expect("the paper graph is simple")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_graph_matches_the_paper() {
        let g = figure_1_graph();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.degree_sequence(), vec![2, 4, 4, 2, 4, 3, 1]);
    }
}
