//! Dataset catalogue: regenerate the paper's Tables 1–3 at example scale.
//!
//! Shows the synthetic stand-ins next to the published statistics they are
//! calibrated against, for every dataset of the evaluation.
//!
//! ```text
//! cargo run --release -p lopacity-examples --bin dataset_catalog
//! ```

use lopacity_gen::Dataset;
use lopacity_metrics::GraphStats;

fn main() {
    println!("{:<22} {:>9} {:>9}  nodes are / links are", "dataset (Table 1)", "nodes", "links");
    for d in Dataset::ALL {
        let s = d.spec();
        println!(
            "{:<22} {:>9} {:>9}  {} / {}",
            s.name, s.full_nodes, s.full_links, s.node_desc, s.link_desc
        );
    }

    println!("\nsampled stand-ins (Table 3 calibration), n = 100:");
    println!(
        "{:<22} {:>6} {:>6} {:>7} {:>7} {:>7}   target avg/acc",
        "dataset", "edges", "diam", "avgdeg", "stdd", "acc"
    );
    for d in Dataset::ALL {
        let g = d.generate(100, 7);
        let stats = GraphStats::compute(&g);
        let spec = d.spec();
        println!(
            "{:<22} {:>6} {:>6} {:>7.2} {:>7.2} {:>7.3}   {:.2} / {:.2}",
            spec.name,
            stats.links,
            stats.diameter,
            stats.avg_degree,
            stats.degree_stdd,
            stats.acc,
            spec.interpolate_avg_degree(100),
            spec.interpolate_acc(100),
        );
    }

    println!("\nscaled full-graph stand-ins (Table 2 calibration), n = 1000:");
    println!(
        "{:<22} {:>7} {:>6} {:>7} {:>7} {:>7}   paper avg/stdd/acc",
        "dataset", "edges", "diam", "avgdeg", "stdd", "acc"
    );
    for d in Dataset::ALL {
        let g = d.scaled_full(1000, 7);
        let stats = GraphStats::compute(&g);
        let spec = d.spec();
        println!(
            "{:<22} {:>7} {:>6} {:>7.2} {:>7.2} {:>7.3}   {:.1} / {:.2} / {:.3}",
            spec.name,
            stats.links,
            stats.diameter,
            stats.avg_degree,
            stats.degree_stdd,
            stats.acc,
            spec.full_avg_degree,
            spec.full_degree_stdd,
            spec.full_acc,
        );
    }
}
