//! Adversary simulation: what linkage confidence does a published graph
//! actually leak?
//!
//! Plays the paper's Figure 2 scenario: an adversary knows the degrees of a
//! criminal (C) and a target (S) and asks how confident they can be that S
//! is within L hops of C. The per-type opacity *is* that confidence bound —
//! this example computes it empirically by enumerating candidate pairs,
//! before and after anonymization.
//!
//! ```text
//! cargo run --release -p lopacity-examples --bin privacy_audit
//! ```

use lopacity::{AnonymizeConfig, Anonymizer, Removal, TypeSpec, TypeSystem};
use lopacity_apsp::{ApspEngine, INF};
use lopacity_gen::Dataset;
use lopacity_graph::{Graph, VertexId};

/// Empirical adversary: among all vertex pairs with original degrees
/// `(d1, d2)`, the fraction within L of each other in the published graph.
fn adversary_confidence(original: &Graph, published: &Graph, d1: usize, d2: usize, l: u8) -> f64 {
    let dist = ApspEngine::default().compute(published, l);
    let candidates = |d: usize| -> Vec<VertexId> {
        (0..original.num_vertices() as VertexId)
            .filter(|&v| original.degree(v) == d)
            .collect()
    };
    let (cs, ss) = (candidates(d1), candidates(d2));
    let mut linked = 0u64;
    let mut total = 0u64;
    for &c in &cs {
        for &s in &ss {
            if c == s || (d1 == d2 && c > s) {
                continue;
            }
            total += 1;
            if dist.get(c, s) != INF {
                linked += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        linked as f64 / total as f64
    }
}

fn main() {
    let l = 2u8;
    let graph = Dataset::Wikipedia.generate(120, 99);
    println!(
        "published network: {} vertices, {} edges; adversary knows original degrees\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Pick the degree pair an adversary would attack: the most confident one.
    let types = TypeSystem::build(&graph, &TypeSpec::DegreePairs);
    let report = lopacity::opacity_report(&graph, &TypeSpec::DegreePairs, l);
    let worst = report
        .argmax()
        .first()
        .map(|r| r.label.clone())
        .unwrap_or_default();
    println!("most exposed degree-pair type before anonymization: {worst}");
    println!("maxLO before: {}", report.max_lo);

    // Parse the degrees back out of the label P{d1,d2} for the empirical check.
    let degrees: Vec<usize> = worst
        .trim_start_matches("P{")
        .trim_end_matches('}')
        .split(',')
        .filter_map(|s| s.parse().ok())
        .collect();
    let (d1, d2) = (degrees[0], degrees[1]);
    println!(
        "empirical adversary confidence for degrees ({d1}, {d2}) within {l} hops: {:.0}%\n",
        100.0 * adversary_confidence(&graph, &graph, d1, d2, l)
    );

    // Anonymize and audit again.
    let theta = 0.5;
    let outcome = Anonymizer::new(&graph, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(l, theta))
        .run(Removal);
    println!("after Edge Removal to θ = {theta}: {outcome}");
    println!(
        "empirical adversary confidence for degrees ({d1}, {d2}) within {l} hops: {:.0}%",
        100.0 * adversary_confidence(&graph, &outcome.graph, d1, d2, l)
    );
    println!(
        "every degree pair is now bounded by θ: the adversary's best attack\nyields at most {:.0}% confidence (was {:.0}%).",
        100.0 * outcome.final_lo,
        100.0 * report.max_lo.as_f64()
    );
    let _ = types;
}
