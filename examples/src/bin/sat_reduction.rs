//! Theorem 1 live: solving 3-SAT with the L-opacification greedy.
//!
//! Builds the paper's Figure 3 construction for its 6-clause example
//! formula, runs Edge Removal under the reduction parameters (L = 3,
//! θ = 2/3), decodes the removed edges into a truth assignment and checks
//! it — then cross-validates against a brute-force SAT solve.
//!
//! ```text
//! cargo run --release -p lopacity-examples --bin sat_reduction
//! ```

use lopacity::{AnonymizeConfig, Anonymizer, Removal};
use lopacity_sat::{
    brute_force_sat, decode_assignment, Cnf3, Reduction, REDUCTION_L, REDUCTION_THETA,
};

fn main() {
    let cnf = Cnf3::paper_example();
    println!("formula: {cnf}");

    let reduction = Reduction::build(&cnf);
    println!(
        "reduction graph (Figure 3): {} vertices, {} edges, {} pair types",
        reduction.graph.num_vertices(),
        reduction.graph.num_edges(),
        reduction.num_vars + reduction.num_clauses,
    );

    let config = AnonymizeConfig::new(REDUCTION_L, REDUCTION_THETA).with_seed(1);
    let outcome =
        Anonymizer::new(&reduction.graph, &reduction.spec).config(config).run(Removal);
    println!(
        "\ngreedy L-opacification: {} removals, achieved = {}",
        outcome.removed.len(),
        outcome.achieved
    );

    match decode_assignment(&reduction, &outcome.removed) {
        Ok(assignment) => {
            let names = ["a", "b", "c", "d"];
            print!("decoded assignment:");
            for (i, v) in assignment.iter().enumerate() {
                print!(" {}={}", names.get(i).unwrap_or(&"x"), v);
            }
            println!();
            println!(
                "assignment satisfies the formula: {}",
                if cnf.eval(&assignment) { "YES" } else { "NO" }
            );
        }
        Err(e) => println!("removals do not decode to an assignment: {e}"),
    }

    let reference = brute_force_sat(&cnf);
    println!(
        "\nbrute-force SAT: {}",
        match &reference {
            Some(a) => format!("satisfiable, e.g. {a:?}"),
            None => "unsatisfiable".to_string(),
        }
    );
    println!(
        "Theorem 1: the formula is satisfiable iff the construction admits an\n(L=3, θ=2/3)-opacification with exactly N = {} removals.",
        reduction.num_vars
    );
}
