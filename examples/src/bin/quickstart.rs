//! Quickstart: anonymize the paper's running example.
//!
//! Reproduces the walk-through of Sections 1 and 5.1: compute the opacity
//! matrix of the Figure 1 graph (Figure 5c), observe that an adversary can
//! infer linkages with certainty, then anonymize with both heuristics and
//! certify the result.
//!
//! ```text
//! cargo run --release -p lopacity-examples --bin quickstart
//! ```

use lopacity::opacity::{opacity_report, opacity_report_against_original};
use lopacity::{AnonymizeConfig, Anonymizer, Removal, RemovalInsertion, TypeSpec};
use lopacity_examples::figure_1_graph;

fn main() {
    let graph = figure_1_graph();
    println!("Figure 1 graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // Step 1 — measure the privacy risk (Algorithm 1, Figure 5c).
    let before = opacity_report(&graph, &TypeSpec::DegreePairs, 1);
    println!("\nOpacity matrix at L = 1 (degree-pair types):");
    for row in &before.per_type {
        println!("  {:8} {}/{} = {:.3}", row.label, row.within_l, row.total, row.lo);
    }
    println!("maxLO = {}", before.max_lo);
    println!(
        "=> an adversary knowing two degrees can be {:.0}% sure of a direct link\n   for the saturated types (the Charles-Agatha inference of the introduction).",
        100.0 * before.max_lo.as_f64()
    );

    // Step 2 — anonymize to θ = 1/2 with each heuristic. One session:
    // the APSP/evaluator build is shared by both strategies.
    let spec = TypeSpec::DegreePairs;
    let mut session = Anonymizer::new(&graph, &spec).config(AnonymizeConfig::new(1, 0.5));
    for (name, outcome) in [
        ("Edge Removal (Alg. 4)", session.run(Removal)),
        ("Edge Removal/Insertion (Alg. 5)", session.run(RemovalInsertion::default())),
    ] {
        println!("\n{name}: {outcome}");
        if !outcome.removed.is_empty() {
            println!("  removed:  {:?}", outcome.removed);
        }
        if !outcome.inserted.is_empty() {
            println!("  inserted: {:?}", outcome.inserted);
        }
        // Step 3 — certify under the publication model (original degrees).
        let after =
            opacity_report_against_original(&graph, &outcome.graph, &TypeSpec::DegreePairs, 1);
        println!(
            "  certified maxLO = {} -> {}",
            after.max_lo,
            if after.max_lo.satisfies(0.5) { "1-opaque wrt θ=0.5" } else { "NOT opaque" }
        );
        println!("  distortion: {:.0}%", 100.0 * outcome.distortion(&graph));
    }
    println!(
        "\nNote: on this tiny graph Rem-Ins cannot reach θ=0.5 while keeping all 10\nedges (the degree-type capacities only admit 8) — exactly the failure mode\nthe paper reports for Rem-Ins on hard instances; Rem always succeeds."
    );
}
