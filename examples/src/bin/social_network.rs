//! Social-network anonymization end to end.
//!
//! The scenario the paper's introduction motivates: a vendor wants to
//! publish an e-mail communication network (Enron-like) without letting an
//! adversary who knows individual degrees infer short-path relationships
//! (the Albert–Bruce story). This example generates the synthetic Enron
//! stand-in, anonymizes it at L = 2 with both heuristics, and compares the
//! utility bill.
//!
//! ```text
//! cargo run --release -p lopacity-examples --bin social_network
//! ```

use lopacity::opacity::opacity_report_against_original;
use lopacity::{AnonymizeConfig, Anonymizer, Removal, RemovalInsertion, TypeSpec};
use lopacity_gen::Dataset;
use lopacity_metrics::{GraphStats, UtilityReport};

fn main() {
    let n = 150;
    let (l, theta) = (2u8, 0.6);
    let graph = Dataset::Enron.generate(n, 2024);
    let stats = GraphStats::compute(&graph);
    println!("Enron-like network: {stats}");
    println!("privacy goal: no ≥{:.0}% confidence in any ≤{l}-hop linkage\n", theta * 100.0);

    let config = AnonymizeConfig::new(l, theta).with_seed(7);
    let spec = TypeSpec::DegreePairs;
    let mut session = Anonymizer::new(&graph, &spec).config(config);
    let removal = session.run(Removal);
    let rem_ins = session.run(RemovalInsertion::default());

    for (name, outcome) in [("Edge Removal", &removal), ("Edge Removal/Insertion", &rem_ins)] {
        println!("== {name} ==");
        println!("  {outcome}");
        let certified =
            opacity_report_against_original(&graph, &outcome.graph, &TypeSpec::DegreePairs, l);
        println!("  certified maxLO: {}", certified.max_lo);
        let utility = UtilityReport::compute(&graph, &outcome.graph);
        println!("  {utility}");
        let after = GraphStats::compute(&outcome.graph);
        println!("  published graph: {after}\n");
    }

    // The paper's Section 6 verdict, visible on one instance: Rem-Ins
    // preserves degree structure better (lower degree-EMD) when it succeeds;
    // Rem always terminates with a valid graph and lower distortion.
    let rem_utility = UtilityReport::compute(&graph, &removal.graph);
    if rem_ins.achieved {
        let ri_utility = UtilityReport::compute(&graph, &rem_ins.graph);
        println!(
            "degree-distribution EMD — Rem: {:.4}, Rem-Ins: {:.4} (lower is better)",
            rem_utility.emd_degree, ri_utility.emd_degree
        );
    } else {
        println!(
            "Rem-Ins could not reach θ while keeping |E| constant; Rem did, at {:.1}% distortion.",
            100.0 * removal.distortion(&graph)
        );
    }
}
