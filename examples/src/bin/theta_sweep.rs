//! Multi-θ sweep with live progress: the paper's Figure-9 protocol on one
//! shared evaluator build.
//!
//! Sweeps Edge Removal across a descending θ ladder on the Gnutella
//! stand-in twice — once resuming each θ from the previous θ's state
//! (default), once independently — and shows that the resumed sweep
//! produces the *same* per-θ results for a fraction of the candidate
//! trials. A [`ProgressObserver`] streams per-step events along the way,
//! the hook a long-running anonymization service would use for metrics and
//! cancellation.
//!
//! ```text
//! cargo run --release -p lopacity-examples --bin theta_sweep
//! ```

use lopacity::{
    AnonymizeConfig, Anonymizer, CountingObserver, ProgressObserver, Removal, RunInfo, StepEvent,
    SweepMode, TypeSpec,
};
use lopacity_gen::Dataset;

/// Prints a line per θ segment and a sampled line per committed step.
#[derive(Default)]
struct Narrator {
    steps_in_segment: usize,
}

impl ProgressObserver for Narrator {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.steps_in_segment = 0;
        println!(
            "  θ = {:.2} [{}]: starting from maxLO {:.4} (×{})",
            info.theta, info.strategy, info.initial_lo, info.initial_n_at_max
        );
    }

    fn on_step(&mut self, event: &StepEvent) {
        self.steps_in_segment += 1;
        if self.steps_in_segment % 25 == 0 {
            println!(
                "    step {:>4}: maxLO {:.4} (×{}), {} edits, {} trials",
                event.step, event.max_lo, event.n_at_max, event.edits, event.trials
            );
        }
    }
}

fn main() {
    let graph = Dataset::Gnutella.generate(300, 42);
    let spec = TypeSpec::DegreePairs;
    let mut narrator = Narrator::default();
    let mut session = Anonymizer::new(&graph, &spec)
        .config(AnonymizeConfig::new(1, 0.5).with_seed(42))
        .observer(&mut narrator);
    // Anchor the θ ladder to the measured starting risk so every rung
    // demands real work (a fixed ladder above the initial maxLO no-ops);
    // the probe's evaluator build is the one the sweep then reuses.
    let initial = session.initial_assessment().as_f64();
    let thetas: Vec<f64> = [0.8, 0.65, 0.5, 0.4, 0.3].iter().map(|f| f * initial).collect();
    let strictest = *thetas.last().unwrap();
    let config = AnonymizeConfig::new(1, strictest).with_seed(42);
    session.set_config(config);
    println!(
        "Gnutella stand-in: {} vertices, {} edges; initial maxLO {initial:.4}; \
         sweeping θ = {thetas:.4?}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    println!("== SweepMode::Resume (each θ continues the previous θ's run) ==");
    let resumed = session.sweep(&thetas, Removal);
    drop(session);
    for run in &resumed {
        println!(
            "  θ = {:.2}: {} — {} trials spent on this θ alone",
            run.theta, run.outcome, run.new_trials
        );
    }

    println!("\n== SweepMode::Independent (every θ restarts; shared build only) ==");
    let mut counter = CountingObserver::default();
    let mut session = Anonymizer::new(&graph, &spec)
        .config(config)
        .sweep_mode(SweepMode::Independent)
        .observer(&mut counter);
    let independent = session.sweep(&thetas, Removal);
    drop(session);
    let resumed_trials: u64 = resumed.iter().map(|r| r.new_trials).sum();
    // The observer measured the same thing from the outside.
    let independent_trials = counter.total_trials;
    assert_eq!(
        independent_trials,
        independent.iter().map(|r| r.new_trials).sum::<u64>(),
        "CountingObserver and SweepRun accounting must agree"
    );
    println!(
        "observer saw {} θ segments, {} steps, {} trials",
        counter.runs_finished, counter.events, counter.total_trials
    );

    // The per-θ outcomes agree bit-for-bit; only the work differs.
    for (a, b) in resumed.iter().zip(&independent) {
        assert_eq!(a.outcome.removed, b.outcome.removed, "modes diverged at θ = {}", a.theta);
        assert_eq!(a.outcome.graph, b.outcome.graph);
    }
    println!(
        "identical per-θ graphs and edit lists; trials: resumed {} vs independent {} ({:.1}× saved)",
        resumed_trials,
        independent_trials,
        independent_trials as f64 / resumed_trials.max(1) as f64
    );
}
