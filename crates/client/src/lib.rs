//! `lopacity-client`: a blocking HTTP client for `lopacityd`.
//!
//! Built directly over [`lopacity_util::http`] (no external HTTP stack):
//!
//! * **Keep-alive reuse** — one TCP connection serves many requests; a
//!   connection the server closed between requests (the stale keep-alive
//!   race) is transparently re-dialed once before the attempt counts as
//!   a failure.
//! * **Timeouts everywhere** — connect, read, and write deadlines, so a
//!   wedged daemon costs a bounded wait, never a hang.
//! * **Capped exponential backoff with deterministic jitter** — retryable
//!   responses (`429`, `503`) and transport errors are retried up to
//!   [`ClientConfig::max_retries`] times, sleeping
//!   `base_backoff * 2^attempt` capped at `max_backoff`, scaled by a
//!   jitter factor in `[0.5, 1.0)` drawn from a seeded
//!   [`rand::rngs::StdRng`] — a fleet of clients with distinct seeds desynchronizes,
//!   and a test with a fixed seed replays the exact same schedule. A
//!   server-sent `Retry-After` (whole seconds) is honored, still capped
//!   at `max_backoff`.
//! * **Idempotent resubmission** — [`Client::submit_idempotent`] sends an
//!   `Idempotency-Key` header; the daemon folds it into the journaled
//!   spec, so a retry that crosses a daemon crash and restart lands on
//!   the *same* job instead of creating a duplicate.
//!
//! ```no_run
//! use lopacity_client::{Client, ClientConfig};
//!
//! let mut client = Client::new(ClientConfig {
//!     addr: "127.0.0.1:7311".to_string(),
//!     ..ClientConfig::default()
//! });
//! let id = client
//!     .submit_idempotent("mode anonymize\nl 2\ntheta 0.5\ngraph gnm 100 300 7\n", "run-42")
//!     .expect("submit");
//! let summary = client.wait(id, std::time::Duration::from_millis(200)).expect("result");
//! println!("job {id}: {summary}");
//! ```

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use lopacity_util::http::ClientResponse;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Construction-time knobs for [`Client::new`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address, `host:port`.
    pub addr: String,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Socket read/write deadline per request; `None` disables.
    pub io_timeout: Option<Duration>,
    /// Retries after the first attempt (so `max_retries = 5` means at
    /// most 6 tries) for transport errors and retryable statuses.
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling — also caps an honored `Retry-After`.
    pub max_backoff: Duration,
    /// Jitter seed. Give each fleet member its own seed to spread their
    /// retry schedules; fix it in tests for reproducible timing.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            addr: "127.0.0.1:7311".to_string(),
            connect_timeout: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(30)),
            max_retries: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            seed: 0,
        }
    }
}

/// Terminal failures of a client call (retryable conditions only surface
/// here once the retry budget is spent).
#[derive(Debug)]
pub enum ClientError {
    /// Connect or socket I/O kept failing through every retry.
    Transport(String),
    /// A definitive HTTP rejection (4xx other than 429) — retrying the
    /// same request cannot change the answer.
    Rejected { status: u16, body: String },
    /// Retryable responses (`429`/`503`) outlasted the retry budget; the
    /// last one is carried here.
    Exhausted { attempts: u32, status: u16, body: String },
    /// A 2xx response whose body did not have the expected shape.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Rejected { status, body } => {
                write!(f, "rejected ({status}): {}", body.trim_end())
            }
            ClientError::Exhausted { attempts, status, body } => write!(
                f,
                "gave up after {attempts} attempts, last {status}: {}",
                body.trim_end()
            ),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One open keep-alive connection: buffered read half + write half of
/// the same socket.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A blocking `lopacityd` client; see the crate docs. Not `Sync` — give
/// each thread of a fleet its own `Client` (and its own jitter seed).
pub struct Client {
    config: ClientConfig,
    conn: Option<Conn>,
    rng: StdRng,
}

impl Client {
    pub fn new(config: ClientConfig) -> Client {
        let rng = StdRng::seed_from_u64(config.seed);
        Client { config, conn: None, rng }
    }

    /// The configured daemon address.
    pub fn addr(&self) -> &str {
        &self.config.addr
    }

    fn connect(&self) -> Result<Conn, String> {
        let mut last = "address resolved to nothing".to_string();
        let addrs: Vec<SocketAddr> = self
            .config
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {}: {e}", self.config.addr))?
            .collect();
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(self.config.io_timeout).map_err(|e| e.to_string())?;
                    stream.set_write_timeout(self.config.io_timeout).map_err(|e| e.to_string())?;
                    let read_half = stream.try_clone().map_err(|e| e.to_string())?;
                    return Ok(Conn { reader: BufReader::new(read_half), writer: stream });
                }
                Err(e) => last = format!("connect {addr}: {e}"),
            }
        }
        Err(last)
    }

    /// Writes one request and reads its response on `conn`.
    fn exchange(
        conn: &mut Conn,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, String> {
        let mut request = format!("{method} {path} HTTP/1.1\r\n");
        for (name, value) in headers {
            request.push_str(&format!("{name}: {value}\r\n"));
        }
        request.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        conn.writer.write_all(request.as_bytes()).map_err(|e| format!("write: {e}"))?;
        conn.writer.write_all(body).map_err(|e| format!("write: {e}"))?;
        conn.writer.flush().map_err(|e| format!("write: {e}"))?;
        ClientResponse::parse(&mut conn.reader).map_err(|e| format!("read: {e}"))
    }

    /// One try: reuse the kept-alive connection if any, re-dialing once
    /// when reuse fails (the server may have closed it between requests —
    /// every daemon request is safe to re-send, submissions via their
    /// idempotency key).
    fn try_once(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, String> {
        let reused = self.conn.is_some();
        if self.conn.is_none() {
            self.conn = Some(self.connect()?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let response = match Self::exchange(conn, method, path, headers, body) {
            Ok(response) => response,
            Err(first) => {
                self.conn = None;
                if !reused {
                    return Err(first);
                }
                let mut fresh = self.connect()?;
                let response = Self::exchange(&mut fresh, method, path, headers, body)?;
                if response.keep_alive {
                    self.conn = Some(fresh);
                }
                return Ok(response);
            }
        };
        if !response.keep_alive {
            self.conn = None;
        }
        Ok(response)
    }

    /// The backoff sleep before retry number `attempt` (1-based), honoring
    /// a server-sent `Retry-After`; both are capped at `max_backoff`, and
    /// the exponential path is scaled by seeded jitter in `[0.5, 1.0)`.
    fn backoff(&mut self, attempt: u32, retry_after: Option<&str>) -> Duration {
        if let Some(secs) = retry_after.and_then(|v| v.trim().parse::<u64>().ok()) {
            return Duration::from_secs(secs).min(self.config.max_backoff);
        }
        let exp = self.config.base_backoff.saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let capped = exp.min(self.config.max_backoff);
        capped.mul_f64(self.rng.random_range(0.5..1.0))
    }

    /// Sends `method path` with `body`, retrying transport errors and
    /// `429`/`503` responses per the backoff policy. Success means any
    /// response below 400; other 4xx come back as
    /// [`ClientError::Rejected`] immediately.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = self.try_once(method, path, headers, body);
            let retry_after: Option<String> = match &outcome {
                Ok(r) => r.header("retry-after").map(str::to_string),
                Err(_) => None,
            };
            match outcome {
                Ok(response) if matches!(response.status, 429 | 503) => {
                    attempt += 1;
                    if attempt > self.config.max_retries {
                        return Err(ClientError::Exhausted {
                            attempts: attempt,
                            status: response.status,
                            body: response.body_str().unwrap_or("").to_string(),
                        });
                    }
                    std::thread::sleep(self.backoff(attempt, retry_after.as_deref()));
                }
                Ok(response) if response.status >= 400 => {
                    return Err(ClientError::Rejected {
                        status: response.status,
                        body: response.body_str().unwrap_or("").to_string(),
                    });
                }
                Ok(response) => return Ok(response),
                Err(e) => {
                    attempt += 1;
                    if attempt > self.config.max_retries {
                        return Err(ClientError::Transport(e));
                    }
                    std::thread::sleep(self.backoff(attempt, None));
                }
            }
        }
    }

    /// `GET path` with retries.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, ClientError> {
        self.request("GET", path, &[], b"")
    }

    /// Submits a job spec; returns the job id from the `202 id N` body.
    pub fn submit(&mut self, spec: &str) -> Result<u64, ClientError> {
        self.submit_inner(spec, None)
    }

    /// [`Client::submit`] with an `Idempotency-Key` header: resubmitting
    /// the same key — across retries, reconnects, even a daemon restart
    /// over its state dir — returns the original job's id instead of
    /// enqueueing a duplicate.
    pub fn submit_idempotent(&mut self, spec: &str, key: &str) -> Result<u64, ClientError> {
        self.submit_inner(spec, Some(key))
    }

    fn submit_inner(&mut self, spec: &str, key: Option<&str>) -> Result<u64, ClientError> {
        let headers: Vec<(&str, &str)> = match key {
            Some(k) => vec![("Idempotency-Key", k)],
            None => Vec::new(),
        };
        let response = self.request("POST", "/jobs", &headers, spec.as_bytes())?;
        let body = response.body_str().unwrap_or("");
        body.strip_prefix("id ")
            .and_then(|rest| rest.trim().parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("submit reply without an id: {body:?}")))
    }

    /// `GET /jobs/<id>`: the `phase` field and the full status body.
    pub fn status(&mut self, id: u64) -> Result<(String, String), ClientError> {
        let response = self.get(&format!("/jobs/{id}"))?;
        let body = response.body_str().unwrap_or("").to_string();
        let phase = body
            .lines()
            .find_map(|l| l.strip_prefix("phase "))
            .ok_or_else(|| ClientError::Protocol(format!("status without a phase: {body:?}")))?
            .to_string();
        Ok((phase, body))
    }

    /// Polls until the job reaches a terminal phase, then returns the
    /// result body (`GET /jobs/<id>/result`).
    pub fn wait(&mut self, id: u64, poll: Duration) -> Result<String, ClientError> {
        loop {
            let (phase, _) = self.status(id)?;
            if matches!(phase.as_str(), "done" | "cancelled" | "failed") {
                let response = self.get(&format!("/jobs/{id}/result"))?;
                return Ok(response.body_str().unwrap_or("").to_string());
            }
            std::thread::sleep(poll);
        }
    }

    /// Like [`Client::wait`] with a deadline; `None` when it passes
    /// before the job finishes.
    pub fn wait_for(
        &mut self,
        id: u64,
        poll: Duration,
        deadline: Duration,
    ) -> Result<Option<String>, ClientError> {
        let start = Instant::now();
        loop {
            let (phase, _) = self.status(id)?;
            if matches!(phase.as_str(), "done" | "cancelled" | "failed") {
                let response = self.get(&format!("/jobs/{id}/result"))?;
                return Ok(Some(response.body_str().unwrap_or("").to_string()));
            }
            if start.elapsed() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(poll);
        }
    }

    /// `GET /metrics`, parsed into `(name, value)` pairs.
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        let response = self.get("/metrics")?;
        let body = response.body_str().unwrap_or("");
        Ok(body
            .lines()
            .filter_map(|line| {
                let (name, value) = line.rsplit_once(' ')?;
                Some((name.to_string(), value.parse().ok()?))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let config = ClientConfig {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
            seed: 7,
            ..ClientConfig::default()
        };
        let mut a = Client::new(config.clone());
        let mut b = Client::new(config);
        let delays_a: Vec<Duration> = (1..=5).map(|k| a.backoff(k, None)).collect();
        let delays_b: Vec<Duration> = (1..=5).map(|k| b.backoff(k, None)).collect();
        assert_eq!(delays_a, delays_b, "same seed, same schedule");
        for (k, d) in delays_a.iter().enumerate() {
            let cap = Duration::from_millis(450);
            let nominal = Duration::from_millis(100 * (1 << k)).min(cap);
            assert!(*d >= nominal.mul_f64(0.5) && *d < nominal, "attempt {k}: {d:?}");
        }
        // Distinct seeds desynchronize the fleet.
        let mut c = Client::new(ClientConfig {
            seed: 8,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
            ..ClientConfig::default()
        });
        let delays_c: Vec<Duration> = (1..=5).map(|k| c.backoff(k, None)).collect();
        assert_ne!(delays_a, delays_c);
    }

    #[test]
    fn retry_after_is_honored_but_capped() {
        let mut client = Client::new(ClientConfig {
            max_backoff: Duration::from_millis(250),
            ..ClientConfig::default()
        });
        assert_eq!(client.backoff(1, Some("0")), Duration::ZERO);
        // `Retry-After: 5` would be five seconds; the cap wins.
        assert_eq!(client.backoff(1, Some("5")), Duration::from_millis(250));
        // Garbage falls back to the exponential path.
        let d = client.backoff(1, Some("soon"));
        assert!(d <= Duration::from_millis(250));
    }
}
