//! End-to-end chaos for `lopacity-client` against an in-process
//! `lopacityd`:
//!
//! * a fleet of retrying clients drives the daemon past both memory
//!   budgets (and its queue cap) and still completes every job — zero
//!   acknowledged submissions lost, zero duplicated;
//! * the same guarantee holds through an all-sites fault sweep
//!   (socket reads/writes dropped, fsync failures, a worker panic, a
//!   cache fault) *and* a daemon restart over the same state dir, with
//!   idempotent resubmission landing on the original job.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use lopacity_client::{Client, ClientConfig, ClientError};
use lopacity_daemon::{Daemon, DaemonConfig};

/// A quick job (milliseconds on one worker).
const QUICK_SPEC: &str = "mode anonymize\nl 1\ntheta 1.0\ngraph gnm 12 20 3\n";

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lop-client-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A test client: tight timeouts, fast capped backoff, a deep retry
/// budget (overload tests keep the daemon saturated for many rounds).
fn client_for(addr: SocketAddr, seed: u64) -> Client {
    Client::new(ClientConfig {
        addr: addr.to_string(),
        connect_timeout: Duration::from_secs(5),
        io_timeout: Some(Duration::from_secs(10)),
        max_retries: 200,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(40),
        seed,
    })
}

fn metric(metrics: &[(String, u64)], name: &str) -> u64 {
    metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
}

/// The overload scenario from the issue: budgets sized so that only two
/// quick jobs fit in flight and only one in the queue, then six clients
/// at once. Every submission must eventually be admitted (retrying
/// through `429` + `Retry-After`) and every admitted job must finish.
#[test]
fn fleet_retries_through_memory_and_queue_pressure_losing_nothing() {
    let footprint = {
        // The daemon computes footprints from the spec; mirror it here to
        // size the budgets tightly around this exact spec.
        use lopacity_daemon::JobSpec;
        JobSpec::parse(QUICK_SPEC).expect("spec").estimated_footprint()
    };
    let daemon = Daemon::bind(&DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        mem_budget: Some(footprint * 2),
        job_mem_budget: Some(footprint),
        ..DaemonConfig::default()
    })
    .expect("bind");
    let addr = daemon.addr();

    const FLEET: usize = 6;
    let handles: Vec<_> = (0..FLEET)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = client_for(addr, i as u64 + 1);
                let id = client
                    .submit_idempotent(QUICK_SPEC, &format!("fleet-{i}"))
                    .expect("submission must eventually be admitted");
                let summary = client.wait(id, Duration::from_millis(10)).expect("result");
                (id, summary)
            })
        })
        .collect();
    let mut ids = Vec::new();
    for handle in handles {
        let (id, summary) = handle.join().expect("fleet thread");
        assert!(summary.contains("phase done"), "job {id} must finish: {summary}");
        ids.push(id);
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), FLEET, "every client got its own job, none lost or duplicated");

    let mut probe = client_for(addr, 99);
    let metrics = probe.metrics().expect("metrics");
    assert_eq!(metric(&metrics, "lopacityd_jobs_submitted"), FLEET as u64);
    assert_eq!(metric(&metrics, "lopacityd_jobs_completed"), FLEET as u64);
    // The budgets really did push back: the fleet rode through at least
    // one memory rejection or queue-full response.
    let rejected = metric(&metrics, "lopacityd_jobs_rejected_mem")
        + metric(&metrics, "lopacityd_jobs_rejected");
    assert!(rejected > 0, "six clients over a two-job budget must collide:\n{metrics:?}");

    // A spec over the per-job budget is a definitive 413 — the client
    // does not burn retries on it.
    let too_big = "mode anonymize\nl 1\ntheta 1.0\ngraph gnm 4000 8000 3\n";
    match probe.submit(too_big) {
        Err(ClientError::Rejected { status: 413, body }) => {
            assert!(body.contains("footprint"), "estimate in the body: {body}");
        }
        other => panic!("expected a 413 rejection, got {other:?}"),
    }
    daemon.shutdown();
}

/// Keep-alive reuse: one client, many requests, one server connection.
/// The daemon counts one `lopacityd_jobs_submitted` per submission while
/// the client never re-dials (verified by submitting + polling dozens of
/// times through a single `Client` with reuse, which would deadlock or
/// error if the server closed after each response).
#[test]
fn one_connection_serves_many_requests() {
    let daemon = Daemon::bind(&DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..DaemonConfig::default()
    })
    .expect("bind");
    let mut client = client_for(daemon.addr(), 3);
    for round in 0..5 {
        let id = client.submit(QUICK_SPEC).expect("submit");
        let summary = client.wait(id, Duration::from_millis(5)).expect("wait");
        assert!(summary.contains("phase done"), "round {round}: {summary}");
    }
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metric(&metrics, "lopacityd_jobs_submitted"), 5);
    daemon.shutdown();
}

/// The crash-consistency half: an all-sites fault sweep while a keyed
/// submission goes through, then a full daemon restart over the same
/// state dir. The client's resubmission of the same `Idempotency-Key`
/// must land on the original job — acknowledged work is neither lost
/// nor duplicated by the retry.
#[test]
fn idempotent_resubmission_survives_faults_and_a_restart() {
    let dir = state_dir("ikey-restart");
    // Every injection site fires at least once: connections dropped mid
    // read and mid write (the client reconnects and retries), a journal
    // fsync failure (degraded, not fatal), a worker panic (the job is
    // re-queued and resumed), and a cache fault (private build).
    let faults =
        "socket.read:2,socket.write:4,journal.fsync:1,worker.panic:1,cache.insert:1";
    let first = Daemon::bind(&DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        state_dir: Some(dir.clone()),
        fault_spec: Some(faults.to_string()),
        ..DaemonConfig::default()
    })
    .expect("bind");
    let mut client = client_for(first.addr(), 17);
    let id = client.submit_idempotent(QUICK_SPEC, "exactly-once").expect("submit");
    let summary = client.wait(id, Duration::from_millis(10)).expect("result");
    assert!(summary.contains("phase done"), "{summary}");
    let metrics = client.metrics().expect("metrics");
    assert!(metric(&metrics, "lopacityd_faults_injected") >= 4, "the sweep fired:\n{metrics:?}");
    // Resubmitting against the live daemon dedupes in memory.
    assert_eq!(client.submit_idempotent(QUICK_SPEC, "exactly-once").expect("resubmit"), id);
    first.shutdown();

    // Restart over the same journal: the dedupe map is rebuilt from the
    // journaled canonical spec, so the retry still finds the same job —
    // and its result graph survived too.
    let second = Daemon::bind(&DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        state_dir: Some(dir.clone()),
        ..DaemonConfig::default()
    })
    .expect("rebind");
    let mut client = client_for(second.addr(), 18);
    let retried = client.submit_idempotent(QUICK_SPEC, "exactly-once").expect("resubmit");
    assert_eq!(retried, id, "the key must dedupe across the restart");
    let (phase, _) = client.status(id).expect("status");
    assert_eq!(phase, "done", "the acknowledged job survived the restart");
    let graph = client.get(&format!("/jobs/{id}/graph")).expect("graph");
    assert_eq!(graph.status, 200, "result graph recovered from the journal");
    // A fresh key is still a fresh job (no over-dedupe).
    let other = client.submit_idempotent(QUICK_SPEC, "another-key").expect("new key");
    assert_ne!(other, id);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
