//! `lopacityd` — a long-running anonymization service over the session
//! API.
//!
//! The daemon turns the workspace's one-shot pipeline (build APSP → greedy
//! anonymize → exit) into a resident service: jobs arrive over a vendored
//! minimal HTTP/1.1 layer ([`lopacity_util::http`]), run on a bounded
//! worker pool, stream progress through [`lopacity::ProgressObserver`],
//! and can be cancelled or budget-limited mid-run through the cooperative
//! [`lopacity::RunControl`] checkpoints inside the greedy driver — an
//! interrupted job's committed trajectory is always a *prefix* of the
//! uninterrupted run's (see `tests/run_control.rs` at the workspace root).
//!
//! The expensive part of every job is the APSP build. The daemon caches
//! prepared evaluators by `(graph hash, L, engine, store)` so repeat
//! queries — the paper's parameter-sweep workload re-asking the same graph
//! under different θ — skip straight to the greedy phase. Churn-mode jobs
//! hold a certified [`lopacity::ChurnSession`] and accept event batches,
//! each applied with one coalesced fork-sync.
//!
//! See `ARCHITECTURE.md` ("Service layer") for the full design.

pub mod job;
pub mod journal;
pub mod server;
pub mod state;

pub use job::{GraphSource, JobMode, JobSpec};
pub use journal::{Journal, Record};
pub use server::{Daemon, DaemonConfig};
pub use state::{ChurnError, Job, JobStatus, Phase, ServerState, SubmitError};
