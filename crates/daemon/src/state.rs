//! Shared daemon state: the job table, the bounded work queue, the worker
//! pool loop, the prepared-evaluator session cache, and the metrics
//! counters surfaced on `/metrics`.
//!
//! Concurrency design, in one paragraph: HTTP handler threads only ever
//! touch short-lived locks (submit, status snapshots, cancel) or the
//! per-job [`RunControl`] (lock-free atomics), so a long anonymization run
//! never blocks the front end. Workers pull from a [`Condvar`]-guarded
//! queue; a submission that would overflow the queue is rejected at the
//! door (`429`) rather than buffered without bound. The session cache maps
//! a [`JobSpec::cache_key`] to an `Arc<OnceLock<OpacityEvaluator>>`:
//! `OnceLock::get_or_init` blocks every concurrent worker wanting the same
//! key behind the single builder, so N simultaneous submissions over the
//! same graph pay exactly one APSP build — the losers record cache hits.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use lopacity::{
    AnonymizationOutcome, Anonymizer, ChurnSession, EdgeEvent, ExactMinRemovals,
    OpacityEvaluator, ProgressObserver, Removal, RemovalInsertion, RepairPatch, RunCheckpoint,
    RunControl, RunInfo, StepEvent, TypeSpec,
};
use lopacity_util::FaultPlan;

use crate::job::{graph_hash, resolve_graph, JobMode, JobSpec};
use crate::journal::{Journal, Record};

/// Monotonic counters for `/metrics` (plus two gauges computed at render
/// time). Relaxed ordering everywhere: these are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    pub jobs_submitted: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_cancelled: AtomicU64,
    pub jobs_failed: AtomicU64,
    /// Submissions bounced off a full queue (`429`).
    pub jobs_rejected: AtomicU64,
    /// Prepared-evaluator cache: jobs that reused an existing build.
    pub cache_hits: AtomicU64,
    /// Prepared-evaluator cache: jobs that paid for the build.
    pub cache_builds: AtomicU64,
    /// Candidate evaluations across all finished runs and repairs.
    pub trials_total: AtomicU64,
    /// Full evaluator clones for scan-worker warmup, across all jobs.
    pub fork_clones_total: AtomicU64,
    /// Churn events that changed a held session's graph.
    pub churn_events_applied: AtomicU64,
    /// Repairs triggered by churn batches that broke certification.
    pub churn_repairs: AtomicU64,
    /// Finished jobs garbage-collected after outliving the job TTL.
    pub jobs_expired: AtomicU64,
    /// Workers currently inside a job (gauge).
    pub workers_busy: AtomicU64,
    /// Jobs re-queued or rebuilt from the journal at boot.
    pub jobs_recovered: AtomicU64,
    /// Jobs failed after exhausting their panic-retry budget.
    pub jobs_quarantined: AtomicU64,
    /// Queued jobs dropped by load-shedding admission control.
    pub shed_total: AtomicU64,
    /// Submissions refused by memory admission control: predicted
    /// footprint over the per-job budget (`413`) or over the global
    /// budget across queued+running jobs (`429`).
    pub jobs_rejected_mem: AtomicU64,
    /// Jobs stopped at a cooperative checkpoint by their wall-clock
    /// deadline (finished `cancelled` with `interrupted deadline`).
    pub deadline_cancels: AtomicU64,
}

fn bump(counter: &AtomicU64, by: u64) {
    counter.fetch_add(by, Ordering::Relaxed);
}

/// Job lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Queued,
    Running,
    /// Finished normally (including budget-interrupted partial outcomes —
    /// those are deterministic results, not failures).
    Done,
    /// Stopped by an explicit cancel; the summary still carries the
    /// partial outcome committed before the stop.
    Cancelled,
    Failed,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
            Phase::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal phase (has a result).
    pub fn finished(self) -> bool {
        matches!(self, Phase::Done | Phase::Cancelled | Phase::Failed)
    }
}

/// Snapshot of where a job is and what it produced.
#[derive(Debug, Clone)]
pub struct JobStatus {
    pub phase: Phase,
    /// `key value` lines; the job's result once finished, an error
    /// message for failed jobs, empty while queued.
    pub summary: String,
}

/// One submitted job. Shared between the worker that runs it and the
/// handler threads that poll or cancel it.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub spec: JobSpec,
    /// Cancellation + dynamic budgets, honored cooperatively inside the
    /// greedy driver (`RunContext` checkpoints).
    pub control: RunControl,
    status: Mutex<JobStatus>,
    /// Progress lines appended live by the run's observer; clients poll
    /// `GET /jobs/<id>/progress?since=K`.
    progress: Mutex<Vec<String>>,
    /// When the job reached a terminal phase — the GC clock for the job
    /// TTL ([`ServerState::gc_expired`]). `None` while queued/running.
    finished_at: Mutex<Option<Instant>>,
    /// The newest durable [`RunCheckpoint`] (journaled, or replayed at
    /// boot). A worker picking the job up resumes from it.
    checkpoint: Mutex<Option<RunCheckpoint>>,
    /// Times a worker has panicked inside this job; at
    /// `max_attempts` the job is quarantined instead of re-queued.
    attempts: AtomicU64,
    /// Canonical spec size — the unit of backlog accounting for
    /// load-shedding admission.
    spec_bytes: usize,
    /// Predicted peak distance-store bytes ([`JobSpec::estimated_footprint`])
    /// — the unit of memory-budget accounting. Computed once at admission
    /// from the spec alone, never from a built graph.
    pub footprint: u64,
    /// Rendered final graph (canonical edge-list text), served on
    /// `GET /jobs/<id>/graph` once the job is done.
    result_graph: Mutex<Option<String>>,
}

impl Job {
    fn new(id: u64, spec: JobSpec, spec_bytes: usize) -> Job {
        let footprint = spec.estimated_footprint();
        Job {
            id,
            spec,
            footprint,
            control: RunControl::new(),
            status: Mutex::new(JobStatus { phase: Phase::Queued, summary: String::new() }),
            progress: Mutex::new(Vec::new()),
            finished_at: Mutex::new(None),
            checkpoint: Mutex::new(None),
            attempts: AtomicU64::new(0),
            spec_bytes,
            result_graph: Mutex::new(None),
        }
    }

    pub fn snapshot(&self) -> JobStatus {
        self.status.lock().expect("job status lock").clone()
    }

    /// The rendered final graph, if the job produced one.
    pub fn result_graph(&self) -> Option<String> {
        self.result_graph.lock().expect("job result lock").clone()
    }

    /// The newest durable checkpoint (the resume point).
    pub fn latest_checkpoint(&self) -> Option<RunCheckpoint> {
        self.checkpoint.lock().expect("job checkpoint lock").clone()
    }

    fn store_checkpoint(&self, ck: RunCheckpoint) {
        *self.checkpoint.lock().expect("job checkpoint lock") = Some(ck);
    }

    /// Progress lines from `since` on, plus the new cursor.
    pub fn progress_since(&self, since: usize) -> (usize, Vec<String>) {
        let lines = self.progress.lock().expect("job progress lock");
        let since = since.min(lines.len());
        (lines.len(), lines[since..].to_vec())
    }

    fn set_phase(&self, phase: Phase, summary: String) {
        let mut status = self.status.lock().expect("job status lock");
        status.phase = phase;
        status.summary = summary;
        drop(status);
        if phase.finished() {
            *self.finished_at.lock().expect("job finished_at lock") = Some(Instant::now());
        }
    }

    /// Whether the job finished more than `ttl` ago.
    fn expired(&self, ttl: Duration) -> bool {
        self.finished_at
            .lock()
            .expect("job finished_at lock")
            .is_some_and(|at| at.elapsed() >= ttl)
    }

    fn push_progress(&self, line: String) {
        self.progress.lock().expect("job progress lock").push(line);
    }
}

/// Rejection reasons for [`ServerState::submit`].
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The daemon is shutting down (or draining).
    ShuttingDown,
    /// The checkpointed backlog byte budget cannot admit this spec even
    /// after shedding — retry later (`503` + `Retry-After`).
    Overloaded,
    /// The spec's predicted footprint alone exceeds the per-job memory
    /// budget — no retry will help (`413`, estimate in the body).
    TooLarge { estimate: u64, budget: u64 },
    /// Admitting this spec would push the summed footprint of queued and
    /// running jobs over the global memory budget — retry once running
    /// work drains (`429` + `Retry-After`).
    MemFull { estimate: u64, in_flight: u64, budget: u64 },
    /// The durable journal could not record the submission; the job was
    /// not admitted (crash safety over availability).
    Journal(String),
}

/// Failure modes of `POST /jobs/<id>/events`.
#[derive(Debug)]
pub enum ChurnError {
    /// No job with that id.
    UnknownJob,
    /// The job exists but holds no live churn session (wrong mode, not
    /// finished preparing, or setup failed).
    NoSession,
    /// The event stream did not parse; the message names the line.
    Parse(String),
}

/// Observer that streams step events into the job's progress log as they
/// commit. Only parallelism-invariant fields go into the lines, so a
/// cancelled job's log is comparable (prefix-wise) to an uncancelled run
/// of the same spec regardless of pool sizing.
///
/// It is also the journaling hook: the greedy driver publishes a
/// [`RunCheckpoint`] into the control just before emitting each step
/// event, so draining the slot here makes every logged step's snapshot
/// durable *synchronously* on the worker thread — a crash after step `k`
/// always recovers to a checkpoint at step `k` or later... never earlier
/// than the last fsync'd one.
struct ProgressLog<'a> {
    job: &'a Job,
    state: &'a ServerState,
}

impl ProgressObserver for ProgressLog<'_> {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.job.push_progress(format!(
            "start strategy={} l={} theta={} initial_lo={:.6}",
            info.strategy, info.l, info.theta, info.initial_lo
        ));
    }

    fn on_step(&mut self, event: &StepEvent) {
        match self.state.faults.check("worker.panic") {
            Some(lopacity_util::FaultAction::Error) => {
                panic!("injected fault at worker.panic (step {})", event.step)
            }
            Some(lopacity_util::FaultAction::Crash) => self.state.faults.abort_now("worker.panic"),
            None => {}
        }
        self.job.push_progress(format!(
            "step {} trials={} removed={} inserted={} max_lo={:.6} n_at_max={}",
            event.step, event.trials, event.removed, event.inserted, event.max_lo, event.n_at_max
        ));
        if let Some(ck) = self.job.control.take_checkpoint() {
            if let Err(e) = self
                .state
                .journal_append(&Record::Checkpoint { id: self.job.id, checkpoint: ck.clone() })
            {
                // Degraded, not fatal: the run continues; recovery just
                // resumes from an older durable checkpoint.
                self.job.push_progress(format!("journal write failed for checkpoint: {e}"));
            }
            self.job.store_checkpoint(ck);
        }
    }

    fn on_run_end(&mut self, outcome: &AnonymizationOutcome) {
        self.job.push_progress(format!(
            "end achieved={} steps={} trials={} final_lo={:.6}",
            outcome.achieved, outcome.steps, outcome.trials, outcome.final_lo
        ));
    }
}

/// Construction-time knobs for [`ServerState::with_options`]; the
/// daemon-facing superset of the old `(queue_capacity, job_ttl)` pair.
#[derive(Debug, Clone)]
pub struct StateOptions {
    /// Queued-job cap; submissions beyond it get `429`.
    pub queue_capacity: usize,
    /// Finished-job retention; `None` keeps jobs forever.
    pub job_ttl: Option<Duration>,
    /// Deterministic fault plan shared across every injection site.
    pub faults: Arc<FaultPlan>,
    /// Checkpoint cadence in greedy steps; 0 disables capture.
    pub checkpoint_every: u64,
    /// Worker panics tolerated per job before quarantine.
    pub max_attempts: u64,
    /// Queued-spec byte budget for load-shedding admission; `None`
    /// disables shedding.
    pub backlog_bytes: Option<usize>,
    /// Per-job predicted-footprint cap; predictions above it are refused
    /// with `413` before any graph or APSP build. `None` disables.
    pub job_mem_budget: Option<u64>,
    /// Global predicted-footprint budget across queued + running jobs;
    /// submissions that would exceed it get `429` + `Retry-After`.
    /// `None` disables.
    pub mem_budget: Option<u64>,
    /// Per-job wall-clock deadline, armed when a worker picks the job
    /// up; expiry stops the run at its next cooperative checkpoint, so
    /// the interrupted output is still a certified prefix. `None`
    /// disables.
    pub job_deadline: Option<Duration>,
}

impl Default for StateOptions {
    fn default() -> StateOptions {
        StateOptions {
            queue_capacity: 32,
            job_ttl: None,
            faults: Arc::new(FaultPlan::none()),
            checkpoint_every: 1,
            max_attempts: 3,
            backlog_bytes: None,
            job_mem_budget: None,
            mem_budget: None,
            job_deadline: None,
        }
    }
}

/// Everything the daemon's threads share.
pub struct ServerState {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    /// Drain mode: stop admitting, suppress terminal journaling so
    /// running and queued jobs recover on the next boot.
    draining: AtomicBool,
    /// Set during boot-time journal replay to suppress re-journaling of
    /// the records being replayed.
    recovering: AtomicBool,
    /// The durable journal, once attached ([`ServerState::attach_journal`]).
    journal: OnceLock<Arc<Journal>>,
    /// Deterministic fault plan (inert by default).
    pub(crate) faults: Arc<FaultPlan>,
    checkpoint_every: u64,
    max_attempts: u64,
    backlog_bytes: Option<usize>,
    job_mem_budget: Option<u64>,
    mem_budget: Option<u64>,
    job_deadline: Option<Duration>,
    /// `Idempotency-Key -> job id` for dedupe of client resubmissions.
    /// Rebuilt from the journal at boot (keys live inside canonical
    /// specs), so a retry across a daemon crash still finds its job.
    /// Leaf lock: never held while taking another lock.
    ikeys: Mutex<HashMap<String, u64>>,
    /// `cache_key -> once-built prepared evaluator`. Grows with distinct
    /// keys for the daemon's lifetime — acceptable for a session daemon;
    /// restart to flush.
    cache: Mutex<HashMap<String, Arc<OnceLock<OpacityEvaluator>>>>,
    /// Live churn sessions by job id. One lock for all sessions: event
    /// batches are cheap relative to APSP builds, and churn jobs are
    /// expected to be few and long-lived.
    churn: Mutex<HashMap<u64, ChurnSession>>,
    /// Keep finished jobs (results, progress logs, held churn sessions)
    /// this long after they finish; `None` keeps them for the daemon's
    /// lifetime. Swept opportunistically on submit and after every run.
    job_ttl: Option<Duration>,
    pub metrics: Metrics,
}

impl ServerState {
    pub fn new(queue_capacity: usize) -> Arc<ServerState> {
        ServerState::with_job_ttl(queue_capacity, None)
    }

    /// Like [`ServerState::new`], with a finished-job retention TTL.
    pub fn with_job_ttl(queue_capacity: usize, job_ttl: Option<Duration>) -> Arc<ServerState> {
        ServerState::with_options(StateOptions { queue_capacity, job_ttl, ..Default::default() })
    }

    /// Full-option constructor; see [`StateOptions`].
    pub fn with_options(options: StateOptions) -> Arc<ServerState> {
        Arc::new(ServerState {
            next_id: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: options.queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            recovering: AtomicBool::new(false),
            journal: OnceLock::new(),
            faults: options.faults,
            checkpoint_every: options.checkpoint_every,
            max_attempts: options.max_attempts.max(1),
            backlog_bytes: options.backlog_bytes,
            job_mem_budget: options.job_mem_budget,
            mem_budget: options.mem_budget,
            job_deadline: options.job_deadline,
            ikeys: Mutex::new(HashMap::new()),
            cache: Mutex::new(HashMap::new()),
            churn: Mutex::new(HashMap::new()),
            job_ttl: options.job_ttl,
            metrics: Metrics::default(),
        })
    }

    /// Appends to the journal if one is attached and the state is not
    /// replaying it. Failures on this path are reported to the caller
    /// only where admission depends on them (submit); elsewhere the
    /// record is dropped with a progress note — the in-memory result
    /// stays valid, recovery just re-runs more.
    fn journal_append(&self, record: &Record) -> std::io::Result<()> {
        if self.recovering.load(Ordering::SeqCst) {
            return Ok(());
        }
        match self.journal.get() {
            Some(journal) => journal.append(record),
            None => Ok(()),
        }
    }

    /// Attaches the durable journal and replays its records: finished
    /// jobs are restored in place (status, summary, result graph, with a
    /// fresh TTL clock), `done` churn jobs get their held session rebuilt
    /// deterministically (re-run setup, re-apply every journaled event
    /// batch), and interrupted jobs are re-queued carrying their newest
    /// checkpoint so the worker resumes instead of restarting. Must run
    /// before the worker pool starts. Returns the number of jobs
    /// recovered (re-queued or rebuilt), also counted in
    /// `lopacityd_jobs_recovered`.
    pub fn attach_journal(
        self: &Arc<ServerState>,
        journal: Arc<Journal>,
        records: Vec<Record>,
    ) -> usize {
        self.journal.set(journal).expect("journal attached once");

        #[derive(Default)]
        struct Replay {
            spec: Option<String>,
            checkpoint: Option<RunCheckpoint>,
            events: Vec<String>,
            terminal: Option<(String, String)>,
            result: Option<String>,
        }
        let mut replay: BTreeMap<u64, Replay> = BTreeMap::new();
        for record in records {
            let entry = replay.entry(record.id()).or_default();
            match record {
                Record::Submit { spec, .. } => entry.spec = Some(spec),
                Record::Checkpoint { checkpoint, .. } => entry.checkpoint = Some(checkpoint),
                Record::Events { batch, .. } => entry.events.push(batch),
                Record::Phase { phase, summary, .. } => entry.terminal = Some((phase, summary)),
                Record::Result { graph, .. } => entry.result = Some(graph),
            }
        }

        self.recovering.store(true, Ordering::SeqCst);
        let mut recovered = 0;
        for (&id, entry) in &replay {
            self.next_id.fetch_max(id, Ordering::Relaxed);
            let Some(spec_text) = &entry.spec else { continue };
            let spec = match JobSpec::parse(spec_text) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("lopacityd: journal replay: job {id} spec rejected: {e}");
                    continue;
                }
            };
            let job = Arc::new(Job::new(id, spec, spec_text.len()));
            self.jobs.lock().expect("jobs lock").insert(id, Arc::clone(&job));
            // Idempotency keys ride inside the journaled canonical spec,
            // so the dedupe map rebuilds for free — a client retrying
            // across a daemon crash still lands on its original job.
            if let Some(key) = &job.spec.idempotency_key {
                self.ikeys.lock().expect("ikeys lock").insert(key.clone(), id);
            }
            match &entry.terminal {
                Some((phase, summary)) => {
                    // A `done` churn job still owes its clients a live
                    // session: rebuild it by re-running the (deterministic)
                    // setup and re-applying the journaled batches.
                    if job.spec.mode == JobMode::Churn && phase == "done" {
                        self.run_job(&job);
                        for batch in &entry.events {
                            if let Err(e) = self.apply_churn_events(id, batch) {
                                eprintln!(
                                    "lopacityd: journal replay: job {id} event batch failed: {e:?}"
                                );
                            }
                        }
                        recovered += 1;
                    }
                    *job.result_graph.lock().expect("job result lock") = entry.result.clone();
                    let restored = match phase.as_str() {
                        "done" => Phase::Done,
                        "cancelled" => Phase::Cancelled,
                        _ => Phase::Failed,
                    };
                    job.set_phase(restored, summary.clone());
                    job.push_progress("restored from journal".to_string());
                }
                None => {
                    // Interrupted mid-flight (crash or drain): requeue,
                    // resuming from the newest durable checkpoint.
                    if let Some(ck) = &entry.checkpoint {
                        job.push_progress(format!("recovered checkpoint at step {}", ck.steps));
                        job.store_checkpoint(ck.clone());
                    }
                    self.queue.lock().expect("queue lock").push_back(Arc::clone(&job));
                    self.queue_cv.notify_one();
                    recovered += 1;
                }
            }
        }
        self.recovering.store(false, Ordering::SeqCst);
        bump(&self.metrics.jobs_recovered, recovered);
        recovered as usize
    }

    /// Enters drain mode: stop admitting (`503`), cancel running jobs so
    /// they stop at their next cooperative checkpoint, and suppress
    /// terminal journaling — drained jobs keep their Submit + Checkpoint
    /// records only, so the next boot re-queues and resumes them. The
    /// worker pool exits once current jobs reach their stop.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.cancel_all();
        self.request_shutdown();
    }

    /// Whether drain mode is active.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Drops every finished job that outlived the TTL — its status,
    /// progress log, and any held churn session — and counts it in
    /// `jobs_expired`. A no-op without a TTL; running and queued jobs are
    /// never collected. Returns how many jobs were dropped.
    pub fn gc_expired(&self) -> usize {
        let Some(ttl) = self.job_ttl else { return 0 };
        let mut jobs = self.jobs.lock().expect("jobs lock");
        let expired: Vec<u64> = jobs
            .iter()
            .filter(|(_, job)| job.snapshot().phase.finished() && job.expired(ttl))
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            jobs.remove(id);
        }
        drop(jobs);
        if !expired.is_empty() {
            let mut sessions = self.churn.lock().expect("churn lock");
            for id in &expired {
                sessions.remove(id);
            }
            drop(sessions);
            self.ikeys.lock().expect("ikeys lock").retain(|_, id| !expired.contains(id));
            bump(&self.metrics.jobs_expired, expired.len() as u64);
        }
        expired.len()
    }

    /// Registers and enqueues a job, or rejects it: shutting down or
    /// draining (`503`), queue at capacity (`429`), backlog byte budget
    /// exceeded even after shedding (`503` + `Retry-After`), or journal
    /// write failure (`503` — an unjournaled job must not be admitted).
    ///
    /// Load shedding: when a backlog budget is set and admitting this
    /// spec would push the queued-spec bytes over it, the *oldest* queued
    /// jobs are shed (failed with a `shed under load` summary, counted in
    /// `lopacityd_shed_total`) until the newcomer fits — freshest work
    /// wins, matching the recovery bias toward recent submissions. A spec
    /// that cannot fit in an empty queue is refused outright.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, SubmitError> {
        if self.is_shutdown() || self.is_draining() {
            return Err(SubmitError::ShuttingDown);
        }
        self.gc_expired();
        // Idempotent resubmission: a spec carrying a known key is the
        // same logical job — hand back the original instead of admitting
        // a duplicate. Stale mappings (job GC'd) are dropped and the
        // submission proceeds as new.
        if let Some(key) = &spec.idempotency_key {
            let existing = self.ikeys.lock().expect("ikeys lock").get(key).copied();
            if let Some(id) = existing {
                match self.job(id) {
                    Some(job) => return Ok(job),
                    None => {
                        self.ikeys.lock().expect("ikeys lock").remove(key);
                    }
                }
            }
        }
        // Memory admission, from the spec alone (no graph is built): a
        // spec whose predicted footprint exceeds the per-job budget can
        // never run here, so refuse it outright.
        let footprint = spec.estimated_footprint();
        if let Some(budget) = self.job_mem_budget {
            if footprint > budget {
                bump(&self.metrics.jobs_rejected_mem, 1);
                return Err(SubmitError::TooLarge { estimate: footprint, budget });
            }
        }
        let canonical = spec.canonical_body();
        let spec_bytes = canonical.len();
        let mut queue = self.queue.lock().expect("queue lock");
        if queue.len() >= self.queue_capacity {
            bump(&self.metrics.jobs_rejected, 1);
            return Err(SubmitError::QueueFull);
        }
        let mut shed: Vec<Arc<Job>> = Vec::new();
        if let Some(budget) = self.backlog_bytes {
            if spec_bytes > budget {
                bump(&self.metrics.jobs_rejected, 1);
                return Err(SubmitError::Overloaded);
            }
            let mut queued_bytes: usize = queue.iter().map(|j| j.spec_bytes).sum();
            while queued_bytes + spec_bytes > budget {
                let oldest = queue.pop_front().expect("over budget implies non-empty queue");
                queued_bytes -= oldest.spec_bytes;
                shed.push(oldest);
            }
        }
        // Global memory budget: the predicted footprints of everything
        // queued or running, plus the newcomer, must fit. Checked under
        // the queue lock so concurrent submits serialize their accounting.
        if let Some(budget) = self.mem_budget {
            let shed_ids: Vec<u64> = shed.iter().map(|j| j.id).collect();
            let in_flight: u64 = self
                .jobs
                .lock()
                .expect("jobs lock")
                .values()
                .filter(|j| !j.snapshot().phase.finished() && !shed_ids.contains(&j.id))
                .map(|j| j.footprint)
                .sum();
            if in_flight.saturating_add(footprint) > budget {
                bump(&self.metrics.jobs_rejected_mem, 1);
                drop(queue);
                self.fail_shed(shed);
                return Err(SubmitError::MemFull { estimate: footprint, in_flight, budget });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Arc::new(Job::new(id, spec, spec_bytes));
        if let Err(e) = self.journal_append(&Record::Submit { id, spec: canonical }) {
            // Shed jobs stay shed (they were already past the budget with
            // the newcomer; without it the door stays closed anyway).
            drop(queue);
            self.fail_shed(shed);
            return Err(SubmitError::Journal(e.to_string()));
        }
        self.jobs.lock().expect("jobs lock").insert(id, Arc::clone(&job));
        queue.push_back(Arc::clone(&job));
        drop(queue);
        if let Some(key) = &job.spec.idempotency_key {
            self.ikeys.lock().expect("ikeys lock").insert(key.clone(), id);
        }
        self.fail_shed(shed);
        self.queue_cv.notify_one();
        bump(&self.metrics.jobs_submitted, 1);
        Ok(job)
    }

    /// Marks load-shed jobs failed (durably, when journaled).
    fn fail_shed(&self, shed: Vec<Arc<Job>>) {
        for job in shed {
            bump(&self.metrics.shed_total, 1);
            let summary = "error shed under load (backlog byte budget exceeded)\n".to_string();
            let _ = self.journal_append(&Record::Phase {
                id: job.id,
                phase: Phase::Failed.name().to_string(),
                summary: summary.clone(),
            });
            job.set_phase(Phase::Failed, summary);
        }
    }

    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs lock").get(&id).cloned()
    }

    /// Requests cancellation. Running jobs stop at their next cooperative
    /// checkpoint; queued jobs are skipped when a worker dequeues them.
    /// Returns false for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        match self.job(id) {
            Some(job) => {
                job.control.cancel();
                true
            }
            None => false,
        }
    }

    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    pub fn churn_sessions(&self) -> usize {
        self.churn.lock().expect("churn lock").len()
    }

    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Cancels every registered job — used at shutdown so workers reach
    /// their next checkpoint promptly.
    pub fn cancel_all(&self) {
        for job in self.jobs.lock().expect("jobs lock").values() {
            job.control.cancel();
        }
    }

    /// Plain-text metrics exposition (one `name value` per line).
    pub fn render_metrics(&self) -> String {
        let m = &self.metrics;
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        for (name, value) in [
            ("lopacityd_jobs_submitted", get(&m.jobs_submitted)),
            ("lopacityd_jobs_completed", get(&m.jobs_completed)),
            ("lopacityd_jobs_cancelled", get(&m.jobs_cancelled)),
            ("lopacityd_jobs_failed", get(&m.jobs_failed)),
            ("lopacityd_jobs_rejected", get(&m.jobs_rejected)),
            ("lopacityd_cache_hits", get(&m.cache_hits)),
            ("lopacityd_cache_builds", get(&m.cache_builds)),
            ("lopacityd_trials_total", get(&m.trials_total)),
            ("lopacityd_fork_clones_total", get(&m.fork_clones_total)),
            ("lopacityd_churn_events_applied", get(&m.churn_events_applied)),
            ("lopacityd_churn_repairs", get(&m.churn_repairs)),
            ("lopacityd_jobs_expired", get(&m.jobs_expired)),
            ("lopacityd_workers_busy", get(&m.workers_busy)),
            ("lopacityd_jobs_recovered", get(&m.jobs_recovered)),
            ("lopacityd_jobs_quarantined", get(&m.jobs_quarantined)),
            ("lopacityd_shed_total", get(&m.shed_total)),
            ("lopacityd_jobs_rejected_mem", get(&m.jobs_rejected_mem)),
            ("lopacityd_deadline_cancels", get(&m.deadline_cancels)),
            ("lopacityd_faults_injected", self.faults.fired()),
            ("lopacityd_queue_depth", self.queue_depth() as u64),
            ("lopacityd_churn_sessions", self.churn_sessions() as u64),
        ] {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// The worker-pool loop: block on the queue, skip pre-cancelled jobs,
    /// run the rest. Returns when shutdown is requested.
    pub fn worker_loop(self: &Arc<ServerState>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if self.is_shutdown() {
                        return;
                    }
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = self.queue_cv.wait(queue).expect("queue lock");
                }
            };
            if job.control.is_cancelled() {
                self.finish_job(&job, Phase::Cancelled, "cancelled before start\n".to_string());
                continue;
            }
            bump(&self.metrics.workers_busy, 1);
            // A panicking job must not take its worker down with it. A
            // panicked job is re-queued (it resumes from its last durable
            // checkpoint) until its attempts budget runs out, then
            // quarantined: failed with the captured panic, so one
            // poisoned spec cannot wedge the pool in a retry loop.
            let run = catch_unwind(AssertUnwindSafe(|| self.run_job(&job)));
            if let Err(panic) = run {
                let what = panic_message(panic.as_ref());
                let attempts = job.attempts.fetch_add(1, Ordering::Relaxed) + 1;
                if attempts < self.max_attempts && !self.is_shutdown() {
                    job.push_progress(format!(
                        "panic caught (attempt {attempts}/{}): {what}; re-queued",
                        self.max_attempts
                    ));
                    let mut status = job.status.lock().expect("job status lock");
                    status.phase = Phase::Queued;
                    status.summary = String::new();
                    drop(status);
                    self.queue.lock().expect("queue lock").push_back(Arc::clone(&job));
                    self.queue_cv.notify_one();
                } else {
                    bump(&self.metrics.jobs_quarantined, 1);
                    bump(&self.metrics.jobs_failed, 1);
                    self.finish_job(
                        &job,
                        Phase::Failed,
                        format!("error quarantined after {attempts} panics: {what}\n"),
                    );
                }
            }
            self.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
            self.gc_expired();
        }
    }

    /// Moves a job to a terminal phase, journaling the transition unless
    /// the daemon is draining — a drain-interrupted job must recover, so
    /// it gets no terminal record.
    fn finish_job(&self, job: &Job, phase: Phase, summary: String) {
        if phase == Phase::Cancelled {
            bump(&self.metrics.jobs_cancelled, 1);
        }
        if self.is_draining() {
            job.set_phase(phase, summary);
            return;
        }
        if let Err(e) = self.journal_append(&Record::Phase {
            id: job.id,
            phase: phase.name().to_string(),
            summary: summary.clone(),
        }) {
            job.push_progress(format!("journal write failed for terminal phase: {e}"));
        }
        job.set_phase(phase, summary);
    }

    /// Fetches (building at most once per key, daemon-wide) the prepared
    /// evaluator for a spec over its resolved graph.
    fn cached_evaluator(&self, spec: &JobSpec, graph: &lopacity_graph::Graph) -> OpacityEvaluator {
        let key = spec.cache_key(graph_hash(graph));
        // Degradation, not failure: if the cache cannot store the build
        // (injected `cache.insert` fault), the job pays for a private
        // build and completes anyway — results never depend on the cache.
        if self.faults.check_io("cache.insert").is_err() {
            bump(&self.metrics.cache_builds, 1);
            return OpacityEvaluator::with_options(
                graph.clone(),
                &TypeSpec::DegreePairs,
                spec.l,
                spec.engine,
                lopacity::Parallelism::Auto,
                spec.store,
            );
        }
        let slot = {
            let mut cache = self.cache.lock().expect("cache lock");
            Arc::clone(cache.entry(key).or_default())
        };
        let mut built = false;
        let ev = slot.get_or_init(|| {
            built = true;
            OpacityEvaluator::with_options(
                graph.clone(),
                &TypeSpec::DegreePairs,
                spec.l,
                spec.engine,
                lopacity::Parallelism::Auto,
                spec.store,
            )
        });
        if built {
            bump(&self.metrics.cache_builds, 1);
        } else {
            bump(&self.metrics.cache_hits, 1);
        }
        ev.clone()
    }

    fn run_job(&self, job: &Job) {
        job.set_phase(Phase::Running, String::new());
        let graph = match resolve_graph(&job.spec.source) {
            Ok(g) => g,
            Err(e) => {
                bump(&self.metrics.jobs_failed, 1);
                self.finish_job(job, Phase::Failed, format!("graph error: {e}\n"));
                return;
            }
        };
        let exact_cap = ExactMinRemovals::default().max_edges;
        if job.spec.method == "exact" && graph.num_edges() > exact_cap {
            bump(&self.metrics.jobs_failed, 1);
            self.finish_job(
                job,
                Phase::Failed,
                format!(
                    "graph error: exact method caps at {exact_cap} edges, graph has {}\n",
                    graph.num_edges()
                ),
            );
            return;
        }
        let ev = self.cached_evaluator(&job.spec, &graph);
        job.control.set_max_trials(job.spec.max_trials);
        job.control.set_max_steps(job.spec.max_steps);
        // Arm the wall-clock deadline per attempt (re-arming clears a
        // stale expiry latch from a panicked earlier attempt). Expiry is
        // observed at the same cooperative checkpoints as cancellation,
        // so a deadline-stopped job still commits a certified prefix.
        if let Some(deadline) = self.job_deadline {
            job.control.set_deadline(Some(Instant::now() + deadline));
        }
        match job.spec.mode {
            JobMode::Anonymize => self.run_anonymize(job, &graph, ev),
            JobMode::Churn => self.run_churn_setup(job, &graph, ev),
        }
    }

    fn run_anonymize(&self, job: &Job, graph: &lopacity_graph::Graph, ev: OpacityEvaluator) {
        // Arm checkpoint capture (the observer journals each snapshot) —
        // but only for the greedy strategies: a checkpoint of the exact
        // search would be a lie (its tree is not in the snapshot), so an
        // interrupted exact job simply reruns from scratch, which is
        // equally deterministic (exact graphs are capped at `max_edges`).
        let resumable = matches!(job.spec.method.as_str(), "rem" | "rem-ins");
        if resumable && self.checkpoint_every > 0 {
            job.control.set_checkpoint_every(Some(self.checkpoint_every));
        }
        let resume_from = if resumable { job.latest_checkpoint() } else { None };
        let mut observer = ProgressLog { job, state: self };
        let mut session = Anonymizer::new(graph, &TypeSpec::DegreePairs)
            .config(job.spec.config())
            .observer(&mut observer)
            .control(job.control.clone());
        session.adopt_prepared(ev);
        let out = match (job.spec.method.as_str(), &resume_from) {
            ("rem", None) => session.run(Removal),
            ("rem", Some(ck)) => session.resume_run(Removal, ck),
            ("rem-ins", None) => session.run(RemovalInsertion::default()),
            ("rem-ins", Some(ck)) => {
                let strategy = RemovalInsertion::with_forbidden(
                    ck.removed.iter().copied(),
                    ck.inserted.iter().copied(),
                );
                session.resume_run(strategy, ck)
            }
            _ => session.run(ExactMinRemovals::default()),
        };
        drop(session);
        if let Some(ck) = resume_from {
            job.push_progress(format!("resumed from checkpoint at step {}", ck.steps));
        }
        bump(&self.metrics.trials_total, out.trials);
        bump(&self.metrics.fork_clones_total, out.fork_clones);
        let cancelled = job.control.is_cancelled();
        let deadline_hit = job.control.deadline_expired();
        let stopped = if cancelled {
            Some("cancel")
        } else if deadline_hit {
            Some("deadline")
        } else {
            None
        };
        let summary = summarize_outcome(&job.spec, &out, stopped);
        if cancelled || deadline_hit {
            if !cancelled {
                bump(&self.metrics.deadline_cancels, 1);
            }
            self.finish_job(job, Phase::Cancelled, summary);
        } else {
            let mut rendered = Vec::new();
            lopacity_graph::io::write_edge_list(&out.graph, &mut rendered)
                .expect("writing to a Vec cannot fail");
            let rendered = String::from_utf8(rendered).expect("edge list is ASCII");
            if let Err(e) =
                self.journal_append(&Record::Result { id: job.id, graph: rendered.clone() })
            {
                job.push_progress(format!("journal write failed for result: {e}"));
            }
            *job.result_graph.lock().expect("job result lock") = Some(rendered);
            bump(&self.metrics.jobs_completed, 1);
            self.finish_job(job, Phase::Done, summary);
        }
    }

    fn run_churn_setup(&self, job: &Job, graph: &lopacity_graph::Graph, ev: OpacityEvaluator) {
        let mut anonymizer =
            Anonymizer::new(graph, &TypeSpec::DegreePairs).config(job.spec.config());
        anonymizer.adopt_prepared(ev);
        let mut session = ChurnSession::new(anonymizer);
        session.set_control(Some(job.control.clone()));
        let clones_before = session.fork_clones();
        let patch = if session.is_certified() {
            None
        } else {
            job.push_progress("initial repair".to_string());
            Some(repair_with(&mut session, &job.spec.method))
        };
        bump(&self.metrics.fork_clones_total, session.fork_clones() - clones_before);
        if let Some(p) = &patch {
            bump(&self.metrics.trials_total, p.trials);
        }
        let assessment = session.assessment();
        let certified = session.is_certified();
        let mut summary = format!(
            "mode churn\ncertified {certified}\nmax_lo {:.6}\nn_at_max {}\n",
            assessment.as_f64(),
            assessment.n_at_max()
        );
        if let Some(p) = &patch {
            summary.push_str(&format!(
                "repair_steps {}\nrepair_trials {}\nrepair_removed {}\nrepair_inserted {}\n",
                p.steps,
                p.trials,
                p.removed.len(),
                p.inserted.len()
            ));
        }
        job.push_progress(format!("churn session certified={certified}"));
        let cancelled = job.control.is_cancelled();
        let deadline_hit = !cancelled && job.control.deadline_expired();
        if cancelled || deadline_hit {
            if deadline_hit {
                bump(&self.metrics.deadline_cancels, 1);
                summary.push_str("interrupted deadline\n");
            }
            self.finish_job(job, Phase::Cancelled, summary);
        } else if certified {
            self.churn.lock().expect("churn lock").insert(job.id, session);
            bump(&self.metrics.jobs_completed, 1);
            self.finish_job(job, Phase::Done, summary);
        } else {
            // Budget exhausted before certification: no session to hold.
            bump(&self.metrics.jobs_failed, 1);
            summary.push_str("error initial repair did not reach theta\n");
            self.finish_job(job, Phase::Failed, summary);
        }
    }

    /// Applies an event batch to a held churn session (one coalesced
    /// fork-sync per batch), auto-repairing if the batch breaks
    /// certification. Returns the report as `key value` lines.
    pub fn apply_churn_events(&self, id: u64, text: &str) -> Result<String, ChurnError> {
        let job = self.job(id).ok_or(ChurnError::UnknownJob)?;
        let events = EdgeEvent::parse_stream(text).map_err(ChurnError::Parse)?;
        let mut sessions = self.churn.lock().expect("churn lock");
        let session = sessions.get_mut(&id).ok_or(ChurnError::NoSession)?;
        // Journal the batch before applying: a crash between the append
        // and the apply replays the batch into the rebuilt session, a
        // crash before the append means the client was never answered.
        if let Err(e) = self.journal_append(&Record::Events { id, batch: text.to_string() }) {
            job.push_progress(format!("journal write failed for event batch: {e}"));
        }
        let clones_before = session.fork_clones();
        let report = session.apply_batch(&events);
        bump(&self.metrics.churn_events_applied, report.applied as u64);
        let mut out = format!(
            "applied {}\nskipped {}\nchanged_cells {}\nmax_lo {:.6}\nviolated {}\n",
            report.applied, report.skipped, report.changed_cells, report.max_lo, report.violated
        );
        job.push_progress(format!(
            "batch applied={} skipped={} max_lo={:.6} violated={}",
            report.applied, report.skipped, report.max_lo, report.violated
        ));
        if report.violated {
            let patch = repair_with(session, &job.spec.method);
            bump(&self.metrics.churn_repairs, 1);
            bump(&self.metrics.trials_total, patch.trials);
            out.push_str(&format!(
                "repair_achieved {}\nrepair_steps {}\nrepair_trials {}\nrepair_removed {}\nrepair_inserted {}\nrepair_max_lo {:.6}\n",
                patch.achieved,
                patch.steps,
                patch.trials,
                patch.removed.len(),
                patch.inserted.len(),
                patch.max_lo
            ));
            job.push_progress(format!(
                "repair achieved={} steps={} trials={}",
                patch.achieved, patch.steps, patch.trials
            ));
        }
        bump(&self.metrics.fork_clones_total, session.fork_clones() - clones_before);
        Ok(out)
    }
}

/// Best-effort text of a caught panic payload (for quarantine summaries).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn repair_with(session: &mut ChurnSession, method: &str) -> RepairPatch {
    match method {
        "rem-ins" => session.repair(RemovalInsertion::default()),
        _ => session.repair(Removal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> JobSpec {
        JobSpec::parse("mode anonymize\nl 1\ntheta 1.0\ngraph gnm 12 20 3\n").unwrap()
    }

    /// Submits a job and runs it inline (no worker thread), returning it
    /// in its terminal phase.
    fn submit_and_run(state: &Arc<ServerState>) -> Arc<Job> {
        let job = state.submit(quick_spec()).expect("submit");
        state.run_job(&job);
        assert!(job.snapshot().phase.finished(), "job must finish");
        job
    }

    #[test]
    fn finished_jobs_expire_after_the_ttl() {
        let state = ServerState::with_job_ttl(4, Some(Duration::ZERO));
        let done = submit_and_run(&state);
        assert_eq!(state.gc_expired(), 1);
        assert!(state.job(done.id).is_none(), "finished job is dropped");
        assert_eq!(state.metrics.jobs_expired.load(Ordering::Relaxed), 1);
        assert!(state.render_metrics().contains("lopacityd_jobs_expired 1"));
        // A queued job must survive the sweep no matter how old — and
        // submit() itself sweeps, so an explicit pass finds nothing new.
        let queued = state.submit(quick_spec()).expect("submit");
        assert_eq!(state.gc_expired(), 0);
        assert!(state.job(queued.id).is_some(), "queued job is kept");
    }

    #[test]
    fn without_a_ttl_jobs_are_kept_forever() {
        let state = ServerState::new(4);
        let done = submit_and_run(&state);
        assert_eq!(state.gc_expired(), 0);
        assert!(state.job(done.id).is_some());
        assert_eq!(state.metrics.jobs_expired.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unexpired_jobs_survive_the_sweep() {
        let state = ServerState::with_job_ttl(4, Some(Duration::from_secs(3600)));
        let done = submit_and_run(&state);
        assert_eq!(state.gc_expired(), 0);
        assert!(state.job(done.id).is_some(), "TTL not yet reached");
    }

    #[test]
    fn per_job_memory_budget_rejects_oversized_specs_with_the_estimate() {
        let state = ServerState::with_options(StateOptions {
            job_mem_budget: Some(1),
            ..Default::default()
        });
        let spec = quick_spec();
        let estimate = spec.estimated_footprint();
        assert!(estimate > 1);
        match state.submit(spec) {
            Err(SubmitError::TooLarge { estimate: e, budget }) => {
                assert_eq!(e, estimate);
                assert_eq!(budget, 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(state.metrics.jobs_rejected_mem.load(Ordering::Relaxed), 1);
        // Rejection happens before any build: no graph, no APSP, no job.
        assert_eq!(state.metrics.cache_builds.load(Ordering::Relaxed), 0);
        assert_eq!(state.metrics.jobs_submitted.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn global_memory_budget_admits_again_once_work_finishes() {
        let footprint = quick_spec().estimated_footprint();
        let state = ServerState::with_options(StateOptions {
            // Room for one quick_spec job in flight, not two.
            mem_budget: Some(footprint + footprint / 2),
            ..Default::default()
        });
        let first = state.submit(quick_spec()).expect("first fits");
        match state.submit(quick_spec()) {
            Err(SubmitError::MemFull { estimate, in_flight, budget }) => {
                assert_eq!(estimate, footprint);
                assert_eq!(in_flight, footprint);
                assert_eq!(budget, footprint + footprint / 2);
            }
            other => panic!("expected MemFull, got {other:?}"),
        }
        assert_eq!(state.metrics.jobs_rejected_mem.load(Ordering::Relaxed), 1);
        // Finished jobs release their reservation; the retry is admitted.
        state.run_job(&first);
        assert!(first.snapshot().phase.finished());
        state.submit(quick_spec()).expect("budget freed by the finished job");
    }

    #[test]
    fn idempotency_keys_return_the_original_job() {
        let state = ServerState::new(4);
        let keyed = || {
            JobSpec::parse("mode anonymize\nl 1\ntheta 1.0\nikey k-1\ngraph gnm 12 20 3\n")
                .unwrap()
        };
        let first = state.submit(keyed()).expect("submit");
        let retry = state.submit(keyed()).expect("resubmit");
        assert_eq!(first.id, retry.id, "same key, same job");
        assert_eq!(state.metrics.jobs_submitted.load(Ordering::Relaxed), 1);
        // A different key is a different job.
        let other = state
            .submit(
                JobSpec::parse("mode anonymize\nl 1\ntheta 1.0\nikey k-2\ngraph gnm 12 20 3\n")
                    .unwrap(),
            )
            .expect("submit");
        assert_ne!(first.id, other.id);
    }

    #[test]
    fn deadline_expiry_cancels_with_a_deadline_summary() {
        let state = ServerState::with_options(StateOptions {
            job_deadline: Some(Duration::ZERO),
            ..Default::default()
        });
        // theta 0.0 is unreachable, so the run would grind through its
        // whole step budget — the already-expired deadline must stop it
        // at the first cooperative checkpoint instead.
        let spec =
            JobSpec::parse("mode anonymize\nl 2\ntheta 0.0\nseed 11\ngraph gnm 150 450 7\n")
                .unwrap();
        let job = state.submit(spec).expect("submit");
        state.run_job(&job);
        let status = job.snapshot();
        assert_eq!(status.phase, Phase::Cancelled);
        assert!(
            status.summary.contains("interrupted deadline"),
            "summary must attribute the stop to the deadline: {}",
            status.summary
        );
        assert_eq!(state.metrics.deadline_cancels.load(Ordering::Relaxed), 1);
        assert!(state.render_metrics().contains("lopacityd_deadline_cancels 1"));
    }

    #[test]
    fn expiry_drops_held_churn_sessions() {
        let state = ServerState::with_job_ttl(4, Some(Duration::ZERO));
        let spec =
            JobSpec::parse("mode churn\nl 1\ntheta 1.0\ngraph gnm 12 20 3\n").unwrap();
        let job = state.submit(spec).expect("submit");
        state.run_job(&job);
        assert_eq!(job.snapshot().phase, Phase::Done);
        assert_eq!(state.churn_sessions(), 1, "churn job holds a session");
        assert_eq!(state.gc_expired(), 1);
        assert_eq!(state.churn_sessions(), 0, "expiry releases the session");
    }
}

fn summarize_outcome(
    spec: &JobSpec,
    out: &AnonymizationOutcome,
    stopped: Option<&'static str>,
) -> String {
    let interrupted = match stopped {
        Some(reason) => reason,
        None if !out.achieved
            && (spec.max_trials.is_some_and(|cap| out.trials >= cap)
                || spec.max_steps.is_some_and(|cap| out.steps as u64 >= cap)) =>
        {
            "budget"
        }
        None => "no",
    };
    format!(
        "mode anonymize\nachieved {}\nsteps {}\ntrials {}\nremoved {}\ninserted {}\nfinal_lo {:.6}\nn_at_max {}\ninterrupted {interrupted}\n",
        out.achieved,
        out.steps,
        out.trials,
        out.removed.len(),
        out.inserted.len(),
        out.final_lo,
        out.final_n_at_max
    )
}
