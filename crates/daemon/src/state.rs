//! Shared daemon state: the job table, the bounded work queue, the worker
//! pool loop, the prepared-evaluator session cache, and the metrics
//! counters surfaced on `/metrics`.
//!
//! Concurrency design, in one paragraph: HTTP handler threads only ever
//! touch short-lived locks (submit, status snapshots, cancel) or the
//! per-job [`RunControl`] (lock-free atomics), so a long anonymization run
//! never blocks the front end. Workers pull from a [`Condvar`]-guarded
//! queue; a submission that would overflow the queue is rejected at the
//! door (`429`) rather than buffered without bound. The session cache maps
//! a [`JobSpec::cache_key`] to an `Arc<OnceLock<OpacityEvaluator>>`:
//! `OnceLock::get_or_init` blocks every concurrent worker wanting the same
//! key behind the single builder, so N simultaneous submissions over the
//! same graph pay exactly one APSP build — the losers record cache hits.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use lopacity::{
    AnonymizationOutcome, Anonymizer, ChurnSession, EdgeEvent, ExactMinRemovals,
    OpacityEvaluator, ProgressObserver, Removal, RemovalInsertion, RepairPatch, RunControl,
    RunInfo, StepEvent, TypeSpec,
};

use crate::job::{graph_hash, resolve_graph, JobMode, JobSpec};

/// Monotonic counters for `/metrics` (plus two gauges computed at render
/// time). Relaxed ordering everywhere: these are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    pub jobs_submitted: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_cancelled: AtomicU64,
    pub jobs_failed: AtomicU64,
    /// Submissions bounced off a full queue (`429`).
    pub jobs_rejected: AtomicU64,
    /// Prepared-evaluator cache: jobs that reused an existing build.
    pub cache_hits: AtomicU64,
    /// Prepared-evaluator cache: jobs that paid for the build.
    pub cache_builds: AtomicU64,
    /// Candidate evaluations across all finished runs and repairs.
    pub trials_total: AtomicU64,
    /// Full evaluator clones for scan-worker warmup, across all jobs.
    pub fork_clones_total: AtomicU64,
    /// Churn events that changed a held session's graph.
    pub churn_events_applied: AtomicU64,
    /// Repairs triggered by churn batches that broke certification.
    pub churn_repairs: AtomicU64,
    /// Finished jobs garbage-collected after outliving the job TTL.
    pub jobs_expired: AtomicU64,
    /// Workers currently inside a job (gauge).
    pub workers_busy: AtomicU64,
}

fn bump(counter: &AtomicU64, by: u64) {
    counter.fetch_add(by, Ordering::Relaxed);
}

/// Job lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Queued,
    Running,
    /// Finished normally (including budget-interrupted partial outcomes —
    /// those are deterministic results, not failures).
    Done,
    /// Stopped by an explicit cancel; the summary still carries the
    /// partial outcome committed before the stop.
    Cancelled,
    Failed,
}

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
            Phase::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal phase (has a result).
    pub fn finished(self) -> bool {
        matches!(self, Phase::Done | Phase::Cancelled | Phase::Failed)
    }
}

/// Snapshot of where a job is and what it produced.
#[derive(Debug, Clone)]
pub struct JobStatus {
    pub phase: Phase,
    /// `key value` lines; the job's result once finished, an error
    /// message for failed jobs, empty while queued.
    pub summary: String,
}

/// One submitted job. Shared between the worker that runs it and the
/// handler threads that poll or cancel it.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    pub spec: JobSpec,
    /// Cancellation + dynamic budgets, honored cooperatively inside the
    /// greedy driver (`RunContext` checkpoints).
    pub control: RunControl,
    status: Mutex<JobStatus>,
    /// Progress lines appended live by the run's observer; clients poll
    /// `GET /jobs/<id>/progress?since=K`.
    progress: Mutex<Vec<String>>,
    /// When the job reached a terminal phase — the GC clock for the job
    /// TTL ([`ServerState::gc_expired`]). `None` while queued/running.
    finished_at: Mutex<Option<Instant>>,
}

impl Job {
    pub fn snapshot(&self) -> JobStatus {
        self.status.lock().expect("job status lock").clone()
    }

    /// Progress lines from `since` on, plus the new cursor.
    pub fn progress_since(&self, since: usize) -> (usize, Vec<String>) {
        let lines = self.progress.lock().expect("job progress lock");
        let since = since.min(lines.len());
        (lines.len(), lines[since..].to_vec())
    }

    fn set_phase(&self, phase: Phase, summary: String) {
        let mut status = self.status.lock().expect("job status lock");
        status.phase = phase;
        status.summary = summary;
        drop(status);
        if phase.finished() {
            *self.finished_at.lock().expect("job finished_at lock") = Some(Instant::now());
        }
    }

    /// Whether the job finished more than `ttl` ago.
    fn expired(&self, ttl: Duration) -> bool {
        self.finished_at
            .lock()
            .expect("job finished_at lock")
            .is_some_and(|at| at.elapsed() >= ttl)
    }

    fn push_progress(&self, line: String) {
        self.progress.lock().expect("job progress lock").push(line);
    }
}

/// Rejection reasons for [`ServerState::submit`].
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    QueueFull,
    /// The daemon is shutting down.
    ShuttingDown,
}

/// Failure modes of `POST /jobs/<id>/events`.
#[derive(Debug)]
pub enum ChurnError {
    /// No job with that id.
    UnknownJob,
    /// The job exists but holds no live churn session (wrong mode, not
    /// finished preparing, or setup failed).
    NoSession,
    /// The event stream did not parse; the message names the line.
    Parse(String),
}

/// Observer that streams step events into the job's progress log as they
/// commit. Only parallelism-invariant fields go into the lines, so a
/// cancelled job's log is comparable (prefix-wise) to an uncancelled run
/// of the same spec regardless of pool sizing.
struct ProgressLog<'a> {
    job: &'a Job,
}

impl ProgressObserver for ProgressLog<'_> {
    fn on_run_start(&mut self, info: &RunInfo<'_>) {
        self.job.push_progress(format!(
            "start strategy={} l={} theta={} initial_lo={:.6}",
            info.strategy, info.l, info.theta, info.initial_lo
        ));
    }

    fn on_step(&mut self, event: &StepEvent) {
        self.job.push_progress(format!(
            "step {} trials={} removed={} inserted={} max_lo={:.6} n_at_max={}",
            event.step, event.trials, event.removed, event.inserted, event.max_lo, event.n_at_max
        ));
    }

    fn on_run_end(&mut self, outcome: &AnonymizationOutcome) {
        self.job.push_progress(format!(
            "end achieved={} steps={} trials={} final_lo={:.6}",
            outcome.achieved, outcome.steps, outcome.trials, outcome.final_lo
        ));
    }
}

/// Everything the daemon's threads share.
pub struct ServerState {
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    shutdown: AtomicBool,
    /// `cache_key -> once-built prepared evaluator`. Grows with distinct
    /// keys for the daemon's lifetime — acceptable for a session daemon;
    /// restart to flush.
    cache: Mutex<HashMap<String, Arc<OnceLock<OpacityEvaluator>>>>,
    /// Live churn sessions by job id. One lock for all sessions: event
    /// batches are cheap relative to APSP builds, and churn jobs are
    /// expected to be few and long-lived.
    churn: Mutex<HashMap<u64, ChurnSession>>,
    /// Keep finished jobs (results, progress logs, held churn sessions)
    /// this long after they finish; `None` keeps them for the daemon's
    /// lifetime. Swept opportunistically on submit and after every run.
    job_ttl: Option<Duration>,
    pub metrics: Metrics,
}

impl ServerState {
    pub fn new(queue_capacity: usize) -> Arc<ServerState> {
        ServerState::with_job_ttl(queue_capacity, None)
    }

    /// Like [`ServerState::new`], with a finished-job retention TTL.
    pub fn with_job_ttl(queue_capacity: usize, job_ttl: Option<Duration>) -> Arc<ServerState> {
        Arc::new(ServerState {
            next_id: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(HashMap::new()),
            churn: Mutex::new(HashMap::new()),
            job_ttl,
            metrics: Metrics::default(),
        })
    }

    /// Drops every finished job that outlived the TTL — its status,
    /// progress log, and any held churn session — and counts it in
    /// `jobs_expired`. A no-op without a TTL; running and queued jobs are
    /// never collected. Returns how many jobs were dropped.
    pub fn gc_expired(&self) -> usize {
        let Some(ttl) = self.job_ttl else { return 0 };
        let mut jobs = self.jobs.lock().expect("jobs lock");
        let expired: Vec<u64> = jobs
            .iter()
            .filter(|(_, job)| job.snapshot().phase.finished() && job.expired(ttl))
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            jobs.remove(id);
        }
        drop(jobs);
        if !expired.is_empty() {
            let mut sessions = self.churn.lock().expect("churn lock");
            for id in &expired {
                sessions.remove(id);
            }
            bump(&self.metrics.jobs_expired, expired.len() as u64);
        }
        expired.len()
    }

    /// Registers and enqueues a job, or rejects it if the queue is full.
    pub fn submit(&self, spec: JobSpec) -> Result<Arc<Job>, SubmitError> {
        if self.is_shutdown() {
            return Err(SubmitError::ShuttingDown);
        }
        self.gc_expired();
        let mut queue = self.queue.lock().expect("queue lock");
        if queue.len() >= self.queue_capacity {
            bump(&self.metrics.jobs_rejected, 1);
            return Err(SubmitError::QueueFull);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let job = Arc::new(Job {
            id,
            spec,
            control: RunControl::new(),
            status: Mutex::new(JobStatus { phase: Phase::Queued, summary: String::new() }),
            progress: Mutex::new(Vec::new()),
            finished_at: Mutex::new(None),
        });
        self.jobs.lock().expect("jobs lock").insert(id, Arc::clone(&job));
        queue.push_back(Arc::clone(&job));
        drop(queue);
        self.queue_cv.notify_one();
        bump(&self.metrics.jobs_submitted, 1);
        Ok(job)
    }

    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs lock").get(&id).cloned()
    }

    /// Requests cancellation. Running jobs stop at their next cooperative
    /// checkpoint; queued jobs are skipped when a worker dequeues them.
    /// Returns false for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        match self.job(id) {
            Some(job) => {
                job.control.cancel();
                true
            }
            None => false,
        }
    }

    pub fn queue_depth(&self) -> usize {
        self.queue.lock().expect("queue lock").len()
    }

    pub fn churn_sessions(&self) -> usize {
        self.churn.lock().expect("churn lock").len()
    }

    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Cancels every registered job — used at shutdown so workers reach
    /// their next checkpoint promptly.
    pub fn cancel_all(&self) {
        for job in self.jobs.lock().expect("jobs lock").values() {
            job.control.cancel();
        }
    }

    /// Plain-text metrics exposition (one `name value` per line).
    pub fn render_metrics(&self) -> String {
        let m = &self.metrics;
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        for (name, value) in [
            ("lopacityd_jobs_submitted", get(&m.jobs_submitted)),
            ("lopacityd_jobs_completed", get(&m.jobs_completed)),
            ("lopacityd_jobs_cancelled", get(&m.jobs_cancelled)),
            ("lopacityd_jobs_failed", get(&m.jobs_failed)),
            ("lopacityd_jobs_rejected", get(&m.jobs_rejected)),
            ("lopacityd_cache_hits", get(&m.cache_hits)),
            ("lopacityd_cache_builds", get(&m.cache_builds)),
            ("lopacityd_trials_total", get(&m.trials_total)),
            ("lopacityd_fork_clones_total", get(&m.fork_clones_total)),
            ("lopacityd_churn_events_applied", get(&m.churn_events_applied)),
            ("lopacityd_churn_repairs", get(&m.churn_repairs)),
            ("lopacityd_jobs_expired", get(&m.jobs_expired)),
            ("lopacityd_workers_busy", get(&m.workers_busy)),
            ("lopacityd_queue_depth", self.queue_depth() as u64),
            ("lopacityd_churn_sessions", self.churn_sessions() as u64),
        ] {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// The worker-pool loop: block on the queue, skip pre-cancelled jobs,
    /// run the rest. Returns when shutdown is requested.
    pub fn worker_loop(self: &Arc<ServerState>) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if self.is_shutdown() {
                        return;
                    }
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = self.queue_cv.wait(queue).expect("queue lock");
                }
            };
            if job.control.is_cancelled() {
                bump(&self.metrics.jobs_cancelled, 1);
                job.set_phase(Phase::Cancelled, "cancelled before start\n".to_string());
                continue;
            }
            bump(&self.metrics.workers_busy, 1);
            // A panicking job must not take its worker down with it — mark
            // the job failed and keep serving the queue.
            let run = catch_unwind(AssertUnwindSafe(|| self.run_job(&job)));
            if run.is_err() {
                bump(&self.metrics.jobs_failed, 1);
                job.set_phase(Phase::Failed, "internal error: job panicked\n".to_string());
            }
            self.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
            self.gc_expired();
        }
    }

    /// Fetches (building at most once per key, daemon-wide) the prepared
    /// evaluator for a spec over its resolved graph.
    fn cached_evaluator(&self, spec: &JobSpec, graph: &lopacity_graph::Graph) -> OpacityEvaluator {
        let key = spec.cache_key(graph_hash(graph));
        let slot = {
            let mut cache = self.cache.lock().expect("cache lock");
            Arc::clone(cache.entry(key).or_default())
        };
        let mut built = false;
        let ev = slot.get_or_init(|| {
            built = true;
            OpacityEvaluator::with_options(
                graph.clone(),
                &TypeSpec::DegreePairs,
                spec.l,
                spec.engine,
                lopacity::Parallelism::Auto,
                spec.store,
            )
        });
        if built {
            bump(&self.metrics.cache_builds, 1);
        } else {
            bump(&self.metrics.cache_hits, 1);
        }
        ev.clone()
    }

    fn run_job(&self, job: &Job) {
        job.set_phase(Phase::Running, String::new());
        let graph = match resolve_graph(&job.spec.source) {
            Ok(g) => g,
            Err(e) => {
                bump(&self.metrics.jobs_failed, 1);
                job.set_phase(Phase::Failed, format!("graph error: {e}\n"));
                return;
            }
        };
        let exact_cap = ExactMinRemovals::default().max_edges;
        if job.spec.method == "exact" && graph.num_edges() > exact_cap {
            bump(&self.metrics.jobs_failed, 1);
            job.set_phase(
                Phase::Failed,
                format!(
                    "graph error: exact method caps at {exact_cap} edges, graph has {}\n",
                    graph.num_edges()
                ),
            );
            return;
        }
        let ev = self.cached_evaluator(&job.spec, &graph);
        job.control.set_max_trials(job.spec.max_trials);
        job.control.set_max_steps(job.spec.max_steps);
        match job.spec.mode {
            JobMode::Anonymize => self.run_anonymize(job, &graph, ev),
            JobMode::Churn => self.run_churn_setup(job, &graph, ev),
        }
    }

    fn run_anonymize(&self, job: &Job, graph: &lopacity_graph::Graph, ev: OpacityEvaluator) {
        let mut observer = ProgressLog { job };
        let mut session = Anonymizer::new(graph, &TypeSpec::DegreePairs)
            .config(job.spec.config())
            .observer(&mut observer)
            .control(job.control.clone());
        session.adopt_prepared(ev);
        let out = match job.spec.method.as_str() {
            "rem" => session.run(Removal),
            "rem-ins" => session.run(RemovalInsertion::default()),
            _ => session.run(ExactMinRemovals::default()),
        };
        drop(session);
        bump(&self.metrics.trials_total, out.trials);
        bump(&self.metrics.fork_clones_total, out.fork_clones);
        let summary = summarize_outcome(&job.spec, &out, job.control.is_cancelled());
        if job.control.is_cancelled() {
            bump(&self.metrics.jobs_cancelled, 1);
            job.set_phase(Phase::Cancelled, summary);
        } else {
            bump(&self.metrics.jobs_completed, 1);
            job.set_phase(Phase::Done, summary);
        }
    }

    fn run_churn_setup(&self, job: &Job, graph: &lopacity_graph::Graph, ev: OpacityEvaluator) {
        let mut anonymizer =
            Anonymizer::new(graph, &TypeSpec::DegreePairs).config(job.spec.config());
        anonymizer.adopt_prepared(ev);
        let mut session = ChurnSession::new(anonymizer);
        session.set_control(Some(job.control.clone()));
        let clones_before = session.fork_clones();
        let patch = if session.is_certified() {
            None
        } else {
            job.push_progress("initial repair".to_string());
            Some(repair_with(&mut session, &job.spec.method))
        };
        bump(&self.metrics.fork_clones_total, session.fork_clones() - clones_before);
        if let Some(p) = &patch {
            bump(&self.metrics.trials_total, p.trials);
        }
        let assessment = session.assessment();
        let certified = session.is_certified();
        let mut summary = format!(
            "mode churn\ncertified {certified}\nmax_lo {:.6}\nn_at_max {}\n",
            assessment.as_f64(),
            assessment.n_at_max()
        );
        if let Some(p) = &patch {
            summary.push_str(&format!(
                "repair_steps {}\nrepair_trials {}\nrepair_removed {}\nrepair_inserted {}\n",
                p.steps,
                p.trials,
                p.removed.len(),
                p.inserted.len()
            ));
        }
        job.push_progress(format!("churn session certified={certified}"));
        if job.control.is_cancelled() {
            bump(&self.metrics.jobs_cancelled, 1);
            job.set_phase(Phase::Cancelled, summary);
        } else if certified {
            self.churn.lock().expect("churn lock").insert(job.id, session);
            bump(&self.metrics.jobs_completed, 1);
            job.set_phase(Phase::Done, summary);
        } else {
            // Budget exhausted before certification: no session to hold.
            bump(&self.metrics.jobs_failed, 1);
            summary.push_str("error initial repair did not reach theta\n");
            job.set_phase(Phase::Failed, summary);
        }
    }

    /// Applies an event batch to a held churn session (one coalesced
    /// fork-sync per batch), auto-repairing if the batch breaks
    /// certification. Returns the report as `key value` lines.
    pub fn apply_churn_events(&self, id: u64, text: &str) -> Result<String, ChurnError> {
        let job = self.job(id).ok_or(ChurnError::UnknownJob)?;
        let events = EdgeEvent::parse_stream(text).map_err(ChurnError::Parse)?;
        let mut sessions = self.churn.lock().expect("churn lock");
        let session = sessions.get_mut(&id).ok_or(ChurnError::NoSession)?;
        let clones_before = session.fork_clones();
        let report = session.apply_batch(&events);
        bump(&self.metrics.churn_events_applied, report.applied as u64);
        let mut out = format!(
            "applied {}\nskipped {}\nchanged_cells {}\nmax_lo {:.6}\nviolated {}\n",
            report.applied, report.skipped, report.changed_cells, report.max_lo, report.violated
        );
        job.push_progress(format!(
            "batch applied={} skipped={} max_lo={:.6} violated={}",
            report.applied, report.skipped, report.max_lo, report.violated
        ));
        if report.violated {
            let patch = repair_with(session, &job.spec.method);
            bump(&self.metrics.churn_repairs, 1);
            bump(&self.metrics.trials_total, patch.trials);
            out.push_str(&format!(
                "repair_achieved {}\nrepair_steps {}\nrepair_trials {}\nrepair_removed {}\nrepair_inserted {}\nrepair_max_lo {:.6}\n",
                patch.achieved,
                patch.steps,
                patch.trials,
                patch.removed.len(),
                patch.inserted.len(),
                patch.max_lo
            ));
            job.push_progress(format!(
                "repair achieved={} steps={} trials={}",
                patch.achieved, patch.steps, patch.trials
            ));
        }
        bump(&self.metrics.fork_clones_total, session.fork_clones() - clones_before);
        Ok(out)
    }
}

fn repair_with(session: &mut ChurnSession, method: &str) -> RepairPatch {
    match method {
        "rem-ins" => session.repair(RemovalInsertion::default()),
        _ => session.repair(Removal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> JobSpec {
        JobSpec::parse("mode anonymize\nl 1\ntheta 1.0\ngraph gnm 12 20 3\n").unwrap()
    }

    /// Submits a job and runs it inline (no worker thread), returning it
    /// in its terminal phase.
    fn submit_and_run(state: &Arc<ServerState>) -> Arc<Job> {
        let job = state.submit(quick_spec()).expect("submit");
        state.run_job(&job);
        assert!(job.snapshot().phase.finished(), "job must finish");
        job
    }

    #[test]
    fn finished_jobs_expire_after_the_ttl() {
        let state = ServerState::with_job_ttl(4, Some(Duration::ZERO));
        let done = submit_and_run(&state);
        assert_eq!(state.gc_expired(), 1);
        assert!(state.job(done.id).is_none(), "finished job is dropped");
        assert_eq!(state.metrics.jobs_expired.load(Ordering::Relaxed), 1);
        assert!(state.render_metrics().contains("lopacityd_jobs_expired 1"));
        // A queued job must survive the sweep no matter how old — and
        // submit() itself sweeps, so an explicit pass finds nothing new.
        let queued = state.submit(quick_spec()).expect("submit");
        assert_eq!(state.gc_expired(), 0);
        assert!(state.job(queued.id).is_some(), "queued job is kept");
    }

    #[test]
    fn without_a_ttl_jobs_are_kept_forever() {
        let state = ServerState::new(4);
        let done = submit_and_run(&state);
        assert_eq!(state.gc_expired(), 0);
        assert!(state.job(done.id).is_some());
        assert_eq!(state.metrics.jobs_expired.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unexpired_jobs_survive_the_sweep() {
        let state = ServerState::with_job_ttl(4, Some(Duration::from_secs(3600)));
        let done = submit_and_run(&state);
        assert_eq!(state.gc_expired(), 0);
        assert!(state.job(done.id).is_some(), "TTL not yet reached");
    }

    #[test]
    fn expiry_drops_held_churn_sessions() {
        let state = ServerState::with_job_ttl(4, Some(Duration::ZERO));
        let spec =
            JobSpec::parse("mode churn\nl 1\ntheta 1.0\ngraph gnm 12 20 3\n").unwrap();
        let job = state.submit(spec).expect("submit");
        state.run_job(&job);
        assert_eq!(job.snapshot().phase, Phase::Done);
        assert_eq!(state.churn_sessions(), 1, "churn job holds a session");
        assert_eq!(state.gc_expired(), 1);
        assert_eq!(state.churn_sessions(), 0, "expiry releases the session");
    }
}

fn summarize_outcome(spec: &JobSpec, out: &AnonymizationOutcome, cancelled: bool) -> String {
    let interrupted = if cancelled {
        "cancel"
    } else if !out.achieved
        && (spec.max_trials.is_some_and(|cap| out.trials >= cap)
            || spec.max_steps.is_some_and(|cap| out.steps as u64 >= cap))
    {
        "budget"
    } else {
        "no"
    };
    format!(
        "mode anonymize\nachieved {}\nsteps {}\ntrials {}\nremoved {}\ninserted {}\nfinal_lo {:.6}\nn_at_max {}\ninterrupted {interrupted}\n",
        out.achieved,
        out.steps,
        out.trials,
        out.removed.len(),
        out.inserted.len(),
        out.final_lo,
        out.final_n_at_max
    )
}
