//! Job specifications: what a client submits to `POST /jobs`.
//!
//! The wire format is a plain-text header of `key value` lines, a blank
//! line, and (for `graph inline`) an edge list — the same offline-friendly
//! shape as the workspace's other formats, no JSON dependency needed:
//!
//! ```text
//! mode anonymize
//! l 2
//! theta 0.5
//! method rem
//! seed 11
//! max_trials 5000
//! graph gnm 40 90 3
//! ```
//!
//! Graph sources: `inline` (edge list follows the blank line), `gnm N M
//! SEED`, or `dataset NAME N SEED` (the paper's generator stand-ins).

use lopacity::config::DEFAULT_SEED;
use lopacity::{estimate_footprint, AnonymizeConfig, Parallelism, StoreBackend};
use lopacity_apsp::ApspEngine;
use lopacity_gen::Dataset;
use lopacity_graph::{io as gio, Graph};

/// Hard cap on a spec's *declared* vertex count — generator parameters and
/// inline edge-list ids alike. Comfortably above the ROADMAP's 10⁷-vertex
/// ladder, far below the `u32::MAX` id space whose adjacency vectors alone
/// would be tens of GB: a 20-byte body must not be able to command a
/// multi-gigabyte allocation before admission control even sees a number.
pub const MAX_DECLARED_VERTICES: usize = 100_000_000;

/// Hard cap on a spec's declared edge count (same posture as
/// [`MAX_DECLARED_VERTICES`]).
pub const MAX_DECLARED_EDGES: usize = 2_000_000_000;

/// Idempotency keys: length cap and allowed alphabet (token-safe, so keys
/// embed cleanly in the plain-text spec and journal formats).
pub const MAX_IDEMPOTENCY_KEY: usize = 64;

/// Where the job's graph comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// Edge list shipped in the request body after the blank line.
    Inline(String),
    /// `G(n, m)` Erdős–Rényi sample.
    Gnm { n: usize, m: usize, seed: u64 },
    /// One of the paper's dataset stand-ins.
    Dataset { which: Dataset, n: usize, seed: u64 },
}

/// What kind of session the job opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMode {
    /// One anonymization run; the job finishes when the run does.
    Anonymize,
    /// Build a certified [`lopacity::ChurnSession`] and hold it; the
    /// daemon then accepts event batches on `POST /jobs/<id>/events`.
    Churn,
}

/// A fully parsed, validated job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub mode: JobMode,
    /// `rem`, `rem-ins`, or `exact`.
    pub method: String,
    pub l: u8,
    pub theta: f64,
    pub seed: u64,
    pub engine: ApspEngine,
    pub store: StoreBackend,
    /// Dynamic candidate-evaluation budget (cooperative, see
    /// [`lopacity::RunControl`]).
    pub max_trials: Option<u64>,
    /// Dynamic greedy-step budget.
    pub max_steps: Option<u64>,
    /// Client-supplied dedupe token (`ikey` line / `Idempotency-Key`
    /// header): two submissions with the same key are the same job, even
    /// across a daemon crash — the key rides in the canonical spec text,
    /// so journal replay rebuilds the dedupe table for free.
    pub idempotency_key: Option<String>,
    pub source: GraphSource,
}

impl JobSpec {
    /// Parses a submission body. Returns a message suitable for a `400`.
    pub fn parse(body: &str) -> Result<JobSpec, String> {
        let (header, rest) = match body.split_once("\n\n") {
            Some((h, r)) => (h, r),
            None => (body, ""),
        };
        let mut spec = JobSpec {
            mode: JobMode::Anonymize,
            method: "rem".to_string(),
            l: 1,
            theta: 0.5,
            seed: DEFAULT_SEED,
            engine: ApspEngine::default(),
            store: StoreBackend::Auto,
            max_trials: None,
            max_steps: None,
            idempotency_key: None,
            source: GraphSource::Inline(String::new()),
        };
        let mut saw_graph = false;
        for line in header.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("spec line {line:?} has no value"))?;
            let value = value.trim();
            match key {
                "mode" => {
                    spec.mode = match value {
                        "anonymize" => JobMode::Anonymize,
                        "churn" => JobMode::Churn,
                        other => return Err(format!("unknown mode {other:?}")),
                    }
                }
                "method" => {
                    if !matches!(value, "rem" | "rem-ins" | "exact") {
                        return Err(format!("unknown method {value:?} (rem, rem-ins, exact)"));
                    }
                    spec.method = value.to_string();
                }
                "l" => {
                    spec.l = value.parse().map_err(|_| format!("l: {value:?} is not a u8"))?;
                    if spec.l == 0 {
                        return Err("l must be at least 1".into());
                    }
                }
                "theta" => {
                    spec.theta =
                        value.parse().map_err(|_| format!("theta: {value:?} is not a number"))?;
                    if !(0.0..=1.0).contains(&spec.theta) {
                        return Err(format!("theta {value} out of [0, 1]"));
                    }
                }
                "seed" => {
                    spec.seed =
                        value.parse().map_err(|_| format!("seed: {value:?} is not a u64"))?;
                }
                "engine" => {
                    spec.engine = value.parse().map_err(|e| format!("engine: {e}"))?;
                }
                "store" => {
                    spec.store = value.parse().map_err(|e| format!("store: {e}"))?;
                }
                "max_trials" => {
                    spec.max_trials = Some(
                        value.parse().map_err(|_| format!("max_trials: {value:?} is not a u64"))?,
                    );
                }
                "max_steps" => {
                    spec.max_steps = Some(
                        value.parse().map_err(|_| format!("max_steps: {value:?} is not a u64"))?,
                    );
                }
                "ikey" => {
                    validate_idempotency_key(value)?;
                    spec.idempotency_key = Some(value.to_string());
                }
                "graph" => {
                    saw_graph = true;
                    spec.source = parse_graph_source(value, rest)?;
                }
                other => return Err(format!("unknown spec key {other:?}")),
            }
        }
        if !saw_graph {
            return Err("missing `graph` line (inline | gnm N M SEED | dataset NAME N SEED)".into());
        }
        if spec.mode == JobMode::Churn && spec.method == "exact" {
            return Err("churn sessions repair with greedy methods only (rem, rem-ins)".into());
        }
        Ok(spec)
    }

    /// The session configuration this spec maps to. The dynamic budgets
    /// are *not* in here — they ride on the job's [`lopacity::RunControl`]
    /// so a client can tighten them while the job runs.
    pub fn config(&self) -> AnonymizeConfig {
        AnonymizeConfig::new(self.l, self.theta)
            .with_seed(self.seed)
            .with_engine(self.engine)
            .with_store(self.store)
            .with_parallelism(Parallelism::Auto)
    }

    /// Serializes the spec back to the wire format, with every field
    /// explicit. `parse(canonical_body(s)) == s` for all valid specs — the
    /// property the journal's crash recovery rests on: a Submit record
    /// carries this text, and replaying it reconstructs the job exactly.
    pub fn canonical_body(&self) -> String {
        let mut out = String::new();
        out.push_str(match self.mode {
            JobMode::Anonymize => "mode anonymize\n",
            JobMode::Churn => "mode churn\n",
        });
        out.push_str(&format!("method {}\n", self.method));
        out.push_str(&format!("l {}\n", self.l));
        out.push_str(&format!("theta {}\n", self.theta));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("engine {}\n", self.engine.name()));
        out.push_str(&format!("store {}\n", self.store.name()));
        if let Some(cap) = self.max_trials {
            out.push_str(&format!("max_trials {cap}\n"));
        }
        if let Some(cap) = self.max_steps {
            out.push_str(&format!("max_steps {cap}\n"));
        }
        if let Some(key) = &self.idempotency_key {
            out.push_str(&format!("ikey {key}\n"));
        }
        match &self.source {
            GraphSource::Inline(text) => {
                out.push_str("graph inline\n\n");
                out.push_str(text);
            }
            GraphSource::Gnm { n, m, seed } => {
                out.push_str(&format!("graph gnm {n} {m} {seed}\n"));
            }
            GraphSource::Dataset { which, n, seed } => {
                out.push_str(&format!("graph dataset {} {n} {seed}\n", which.key()));
            }
        }
        out
    }

    /// The session-cache key: everything that determines the prepared
    /// evaluator build. Two submissions with equal keys share one APSP
    /// build (the acceptance criterion's `(graph hash, L, engine)`, plus
    /// the store backend since it shapes the built artifact).
    pub fn cache_key(&self, graph_hash: u64) -> String {
        format!("{graph_hash:016x}/l{}/{}/{}", self.l, self.engine.name(), self.store)
    }

    /// The `(n, m)` this spec's graph will have, predicted from the spec
    /// alone — no graph is materialized. Exact for `gnm` and `inline`
    /// (a cheap token scan); for `dataset` it follows the generator's own
    /// calibrated average-degree target.
    pub fn predicted_graph_size(&self) -> (usize, usize) {
        match &self.source {
            GraphSource::Inline(text) => scan_inline(text),
            GraphSource::Gnm { n, m, .. } => (*n, *m),
            GraphSource::Dataset { which, n, .. } => {
                let avg = which.spec().interpolate_avg_degree(*n);
                (*n, (avg * *n as f64 / 2.0).round() as usize)
            }
        }
    }

    /// Predicted distance-store bytes for this spec —
    /// [`lopacity::estimate_footprint`] over
    /// [`Self::predicted_graph_size`]. The number admission control
    /// compares against `--job-mem-budget` / `--mem-budget` *before* any
    /// graph build starts.
    pub fn estimated_footprint(&self) -> u64 {
        let (n, m) = self.predicted_graph_size();
        estimate_footprint(n, m, self.l, self.store)
    }
}

/// Checks an idempotency key (from an `ikey` spec line or an
/// `Idempotency-Key` header): 1..=[`MAX_IDEMPOTENCY_KEY`] characters of
/// `[A-Za-z0-9._:-]`.
pub fn validate_idempotency_key(value: &str) -> Result<(), String> {
    if value.is_empty() || value.len() > MAX_IDEMPOTENCY_KEY {
        return Err(format!("ikey must be 1..={MAX_IDEMPOTENCY_KEY} characters"));
    }
    if !value
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b':'))
    {
        return Err("ikey may contain only [A-Za-z0-9._:-]".into());
    }
    Ok(())
}

/// Cheap `(max_id + 1, edge_count)` scan of an inline edge list. Lines
/// that do not parse as two ids are skipped — they will fail properly
/// (line-numbered) in [`resolve_graph`]; admission only needs the size.
fn scan_inline(text: &str) -> (usize, usize) {
    let mut max_id: u64 = 0;
    let mut edges: usize = 0;
    let mut any = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        if let (Some(a), Some(b)) = (parts.next(), parts.next()) {
            if let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) {
                if a == b {
                    continue;
                }
                any = true;
                max_id = max_id.max(a).max(b);
                edges += 1;
            }
        }
    }
    if any {
        (usize::try_from(max_id).unwrap_or(usize::MAX).saturating_add(1), edges)
    } else {
        (0, 0)
    }
}

fn parse_graph_source(value: &str, rest: &str) -> Result<GraphSource, String> {
    let mut words = value.split_whitespace();
    match words.next() {
        Some("inline") => {
            // Declared-size caps for uploads, mirroring the generator
            // ones: the largest *id* bounds the vertex allocation, which
            // a tiny body can otherwise inflate to `u32::MAX` vertices.
            let (n, m) = scan_inline(rest);
            if n > MAX_DECLARED_VERTICES {
                return Err(format!(
                    "inline graph: vertex id {} past the declared-vertex cap {MAX_DECLARED_VERTICES}",
                    n - 1
                ));
            }
            if m > MAX_DECLARED_EDGES {
                return Err(format!(
                    "inline graph: {m} edges past the declared-edge cap {MAX_DECLARED_EDGES}"
                ));
            }
            Ok(GraphSource::Inline(rest.to_string()))
        }
        Some("gnm") => {
            let mut next = |what: &str| -> Result<u64, String> {
                words
                    .next()
                    .ok_or(format!("graph gnm: missing {what}"))?
                    .parse::<u64>()
                    .map_err(|_| format!("graph gnm: {what} is not a number"))
            };
            let n = usize::try_from(next("N")?)
                .map_err(|_| "graph gnm: N does not fit usize".to_string())?;
            let m = usize::try_from(next("M")?)
                .map_err(|_| "graph gnm: M does not fit usize".to_string())?;
            let seed = next("SEED")?;
            if n > MAX_DECLARED_VERTICES {
                return Err(format!("graph gnm: N {n} past the declared-vertex cap {MAX_DECLARED_VERTICES}"));
            }
            if m > MAX_DECLARED_EDGES {
                return Err(format!("graph gnm: M {m} past the declared-edge cap {MAX_DECLARED_EDGES}"));
            }
            // An impossible m would panic the generator *inside a worker*
            // (or, for `m` close to the pair count, grind the rejection
            // sampler); refuse it at the door with the arithmetic done in
            // u128 so huge n cannot wrap the pair count.
            let pairs = n as u128 * n.saturating_sub(1) as u128 / 2;
            if m as u128 > pairs {
                return Err(format!("graph gnm: cannot place {m} edges among {pairs} pairs"));
            }
            Ok(GraphSource::Gnm { n, m, seed })
        }
        Some("dataset") => {
            let which: Dataset = words
                .next()
                .ok_or("graph dataset: missing NAME")?
                .parse()
                .map_err(|e: String| format!("graph dataset: {e}"))?;
            let n = words
                .next()
                .ok_or("graph dataset: missing N")?
                .parse::<usize>()
                .map_err(|_| "graph dataset: N is not a number".to_string())?;
            if n > MAX_DECLARED_VERTICES {
                return Err(format!(
                    "graph dataset: N {n} past the declared-vertex cap {MAX_DECLARED_VERTICES}"
                ));
            }
            let seed = words
                .next()
                .ok_or("graph dataset: missing SEED")?
                .parse::<u64>()
                .map_err(|_| "graph dataset: SEED is not a number".to_string())?;
            Ok(GraphSource::Dataset { which, n, seed })
        }
        other => Err(format!("unknown graph source {other:?} (inline, gnm, dataset)")),
    }
}

/// Materializes the job's graph. Inline parse failures carry the
/// edge-list error; generators cannot fail.
pub fn resolve_graph(source: &GraphSource) -> Result<Graph, String> {
    match source {
        GraphSource::Inline(text) => gio::read_edge_list(text.as_bytes(), 0)
            .map_err(|e| format!("inline edge list: {e}")),
        GraphSource::Gnm { n, m, seed } => Ok(lopacity_gen::er::gnm(*n, *m, *seed)),
        GraphSource::Dataset { which, n, seed } => Ok(which.generate(*n, *seed)),
    }
}

/// FNV-1a over the canonical edge list — the graph half of the session
/// cache key. Identical uploads (or identical generator specs) hash
/// equal; the canonical `u < v` edge order makes the hash insertion-order
/// independent.
pub fn graph_hash(g: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(g.num_vertices() as u64);
    for e in g.edges() {
        mix(e.u() as u64);
        mix(e.v() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_generator_spec() {
        let spec = JobSpec::parse("mode anonymize\nl 2\ntheta 0.4\ngraph gnm 40 90 3\n").unwrap();
        assert_eq!(spec.mode, JobMode::Anonymize);
        assert_eq!(spec.l, 2);
        assert_eq!(spec.theta, 0.4);
        assert_eq!(spec.source, GraphSource::Gnm { n: 40, m: 90, seed: 3 });
        assert_eq!(spec.method, "rem");
    }

    #[test]
    fn parses_an_inline_graph() {
        let spec = JobSpec::parse("l 1\ntheta 0.9\ngraph inline\n\n0 1\n1 2\n").unwrap();
        let GraphSource::Inline(text) = &spec.source else { panic!("not inline") };
        let g = resolve_graph(&GraphSource::Inline(text.clone())).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(JobSpec::parse("l 2\n").unwrap_err().contains("graph"));
        assert!(JobSpec::parse("l 0\ngraph gnm 5 5 1\n").is_err());
        assert!(JobSpec::parse("theta 1.5\ngraph gnm 5 5 1\n").is_err());
        assert!(JobSpec::parse("mode churn\nmethod exact\ngraph gnm 5 5 1\n").is_err());
        assert!(JobSpec::parse("bogus 3\ngraph gnm 5 5 1\n").is_err());
        assert!(JobSpec::parse("graph inline\n\nnot numbers\n").is_ok()); // parse fails later
        assert!(resolve_graph(&GraphSource::Inline("not numbers\n".into())).is_err());
    }

    #[test]
    fn declared_size_caps_reject_pathological_specs() {
        // gnm: N past the vertex cap, m impossible for n, huge-u64 wrap bait.
        let big_n = MAX_DECLARED_VERTICES + 1;
        assert!(JobSpec::parse(&format!("l 1\ngraph gnm {big_n} 5 1\n"))
            .unwrap_err()
            .contains("declared-vertex cap"));
        assert!(JobSpec::parse("l 1\ngraph gnm 10 100 1\n")
            .unwrap_err()
            .contains("cannot place"));
        assert!(JobSpec::parse(&format!("l 1\ngraph gnm {} {} 1\n", u64::MAX, u64::MAX)).is_err());
        // dataset: N past the cap.
        assert!(JobSpec::parse(&format!("l 1\ngraph dataset enron {big_n} 1\n"))
            .unwrap_err()
            .contains("declared-vertex cap"));
        // inline: a 2-token body must not declare a ~u32::MAX-vertex graph.
        assert!(JobSpec::parse("l 1\ngraph inline\n\n0 4294967294\n")
            .unwrap_err()
            .contains("declared-vertex cap"));
        // At the caps, specs still parse.
        assert!(JobSpec::parse("l 1\ngraph gnm 45 990 1\n").is_ok());
    }

    #[test]
    fn idempotency_keys_are_validated_and_round_trip() {
        let spec = JobSpec::parse("l 1\nikey retry-42.a:b_c\ngraph gnm 5 5 1\n").unwrap();
        assert_eq!(spec.idempotency_key.as_deref(), Some("retry-42.a:b_c"));
        let canonical = spec.canonical_body();
        assert!(canonical.contains("ikey retry-42.a:b_c\n"));
        let reparsed = JobSpec::parse(&canonical).unwrap();
        assert_eq!(reparsed.idempotency_key, spec.idempotency_key);
        assert!(JobSpec::parse("l 1\nikey bad key\ngraph gnm 5 5 1\n").is_err(), "space");
        assert!(JobSpec::parse("l 1\nikey \ngraph gnm 5 5 1\n").is_err(), "empty");
        let long = "x".repeat(MAX_IDEMPOTENCY_KEY + 1);
        assert!(JobSpec::parse(&format!("l 1\nikey {long}\ngraph gnm 5 5 1\n")).is_err(), "long");
    }

    #[test]
    fn predicted_sizes_match_the_materialized_graph() {
        let spec = JobSpec::parse("l 2\ntheta 0.5\ngraph gnm 40 90 3\n").unwrap();
        assert_eq!(spec.predicted_graph_size(), (40, 90));
        let spec =
            JobSpec::parse("l 1\ntheta 0.5\ngraph inline\n\n# c\n0 1\n1 2\n7 7\n2 0\n").unwrap();
        assert_eq!(spec.predicted_graph_size(), (3, 3), "self-loop dropped, max id 2");
        let spec = JobSpec::parse("l 1\ntheta 0.5\ngraph dataset enron 200 5\n").unwrap();
        let (n, m) = spec.predicted_graph_size();
        let g = resolve_graph(&spec.source).unwrap();
        assert_eq!(n, 200);
        let err = (m as f64 - g.num_edges() as f64).abs() / g.num_edges() as f64;
        assert!(err < 0.25, "dataset m prediction {m} vs real {} off by {err:.2}", g.num_edges());
        assert!(spec.estimated_footprint() > 0);
    }

    #[test]
    fn canonical_body_round_trips() {
        let bodies = [
            "mode anonymize\nmethod rem-ins\nl 2\ntheta 0.4\nseed 9\nengine floyd\n\
             store sparse\nmax_trials 500\nmax_steps 7\ngraph gnm 40 90 3\n",
            "mode churn\nl 1\ntheta 0.9\ngraph dataset enron 100 5\n",
            "l 1\ntheta 0.9\nikey a-b.c\ngraph inline\n\n0 1\n1 2\n",
        ];
        for body in bodies {
            let spec = JobSpec::parse(body).unwrap();
            let canonical = spec.canonical_body();
            let reparsed = JobSpec::parse(&canonical).unwrap();
            assert_eq!(reparsed.canonical_body(), canonical, "fixed point for {body:?}");
            assert_eq!(format!("{reparsed:?}"), format!("{spec:?}"), "field-equal for {body:?}");
        }
    }

    #[test]
    fn graph_hash_is_content_addressed() {
        let a = lopacity_gen::er::gnm(30, 60, 7);
        let b = lopacity_gen::er::gnm(30, 60, 7);
        let c = lopacity_gen::er::gnm(30, 60, 8);
        assert_eq!(graph_hash(&a), graph_hash(&b));
        assert_ne!(graph_hash(&a), graph_hash(&c));
    }

    #[test]
    fn cache_key_separates_l_engine_and_store() {
        let mut spec = JobSpec::parse("l 2\ntheta 0.5\ngraph gnm 10 20 1\n").unwrap();
        let k1 = spec.cache_key(42);
        spec.l = 3;
        let k2 = spec.cache_key(42);
        spec.engine = ApspEngine::FloydWarshall;
        let k3 = spec.cache_key(42);
        assert_ne!(k1, k2);
        assert_ne!(k2, k3);
        assert_ne!(spec.cache_key(41), spec.cache_key(42));
    }
}
