//! `lopacityd` binary: bind, announce the address, serve until SIGTERM
//! (graceful drain) or SIGKILL (the journal recovers on the next boot).

use lopacity_daemon::{server::serve_until_term, Daemon, DaemonConfig};
use lopacity_util::Args;

const USAGE: &str = "\
lopacityd - L-opacity anonymization daemon

USAGE:
    lopacityd [--addr HOST:PORT] [--workers N] [--queue N] [--job-ttl SECS]
              [--state-dir DIR] [--checkpoint-every STEPS] [--max-attempts N]
              [--backlog-bytes N] [--job-mem-budget BYTES] [--mem-budget BYTES]
              [--job-deadline SECS] [--max-body BYTES] [--io-timeout SECS]
              [--fault PLAN]

OPTIONS:
    --addr HOST:PORT   bind address (default 127.0.0.1:7311; port 0 picks a free port)
    --workers N        job worker threads (default 2)
    --queue N          queued-job cap; excess submissions get 429 (default 32)
    --job-ttl SECS     drop finished jobs (results, logs, held churn sessions)
                       SECS after they finish; counted in the
                       lopacityd_jobs_expired metric (default: keep forever)
    --state-dir DIR    durable job journal in DIR/journal.log: submissions,
                       checkpoints, results. On boot the journal is replayed:
                       finished jobs restore, interrupted jobs resume from
                       their last checkpoint with byte-identical results
                       (default: in-memory only)
    --checkpoint-every STEPS
                       journal a resumable snapshot every STEPS greedy steps;
                       0 disables checkpointing (default 1)
    --max-attempts N   worker panics tolerated per job before it is
                       quarantined as failed (default 3)
    --backlog-bytes N  queued-spec byte budget; when exceeded the oldest
                       queued jobs are shed and over-budget submissions get
                       503 + Retry-After (default: no shedding)
    --job-mem-budget BYTES
                       per-job predicted-footprint cap: a spec whose
                       estimated distance-store footprint exceeds it is
                       refused with 413 before any graph or APSP build
                       (default: unlimited)
    --mem-budget BYTES global predicted-footprint budget across queued and
                       running jobs; submissions past it get 429 +
                       Retry-After (default: unlimited)
    --job-deadline SECS
                       per-job wall-clock deadline, armed when a worker
                       picks the job up; an expired job stops at its next
                       cooperative checkpoint as cancelled with
                       'interrupted deadline' and a certified-prefix
                       partial result (default: none)
    --max-body BYTES   request-body cap; larger declared Content-Lengths
                       get 400 before any body byte is read (default and
                       hard ceiling: 64 MiB)
    --io-timeout SECS  per-connection socket read/write deadline — the
                       slowloris guard; 0 disables (default 30)
    --fault PLAN       deterministic fault injection, e.g.
                       'journal.fsync:2,worker.panic:3:crash'; sites:
                       journal.append journal.fsync worker.panic
                       socket.read socket.write cache.insert

SIGNALS:
    SIGTERM            graceful drain: stop admitting, checkpoint running
                       jobs, exit 0; with --state-dir they resume next boot

ENDPOINTS:
    POST /jobs                submit a job spec (see crate docs for the format)
    GET  /jobs/<id>           job phase + summary
    GET  /jobs/<id>/progress  observer lines (?since=K)
    GET  /jobs/<id>/result    final summary (409 until finished)
    GET  /jobs/<id>/graph     anonymized graph as an edge list (once done)
    POST /jobs/<id>/cancel    cooperative cancel
    POST /jobs/<id>/events    churn event batch into a held session
    GET  /metrics             counters (cache hits, recoveries, faults, ...)
    GET  /healthz             liveness probe
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = run(&argv) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv.iter().map(String::as_str));
    let unknown = args.unknown_keys(&[
        "addr",
        "workers",
        "queue",
        "job-ttl",
        "state-dir",
        "checkpoint-every",
        "max-attempts",
        "backlog-bytes",
        "job-mem-budget",
        "mem-budget",
        "job-deadline",
        "max-body",
        "io-timeout",
        "fault",
    ]);
    if !unknown.is_empty() {
        return Err(format!("unknown option --{} (see --help)", unknown[0]));
    }
    let defaults = DaemonConfig::default();
    let optional_u64 = |key: &str| -> Result<Option<u64>, String> {
        match args.get(key) {
            None => Ok(None),
            Some(raw) => {
                raw.parse().map(Some).map_err(|_| format!("--{key}: {raw:?} is not a number"))
            }
        }
    };
    let config = DaemonConfig {
        addr: args.get("addr").unwrap_or(&defaults.addr).to_string(),
        workers: args.get_or("workers", defaults.workers)?,
        queue_capacity: args.get_or("queue", defaults.queue_capacity)?,
        job_ttl_secs: optional_u64("job-ttl")?,
        state_dir: args.get("state-dir").map(std::path::PathBuf::from),
        fault_spec: args.get("fault").map(str::to_string),
        io_timeout_secs: args.get_or("io-timeout", defaults.io_timeout_secs)?,
        checkpoint_every: args.get_or("checkpoint-every", defaults.checkpoint_every)?,
        max_attempts: args.get_or("max-attempts", defaults.max_attempts)?,
        backlog_bytes: optional_u64("backlog-bytes")?.map(|n| n as usize),
        job_mem_budget: optional_u64("job-mem-budget")?,
        mem_budget: optional_u64("mem-budget")?,
        job_deadline_secs: optional_u64("job-deadline")?,
        max_body: optional_u64("max-body")?.map(|n| usize::try_from(n).unwrap_or(usize::MAX)),
    };
    let daemon = Daemon::bind(&config).map_err(|e| format!("bind {}: {e}", config.addr))?;
    println!("lopacityd listening on {}", daemon.addr());
    println!("workers {} queue {}", config.workers.max(1), config.queue_capacity);
    if let Some(dir) = &config.state_dir {
        println!("state-dir {}", dir.display());
    }
    serve_until_term(daemon);
    Ok(())
}
