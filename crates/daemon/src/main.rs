//! `lopacityd` binary: bind, announce the address, serve until killed.

use lopacity_daemon::{Daemon, DaemonConfig};
use lopacity_util::Args;

const USAGE: &str = "\
lopacityd - L-opacity anonymization daemon

USAGE:
    lopacityd [--addr HOST:PORT] [--workers N] [--queue N] [--job-ttl SECS]

OPTIONS:
    --addr HOST:PORT   bind address (default 127.0.0.1:7311; port 0 picks a free port)
    --workers N        job worker threads (default 2)
    --queue N          queued-job cap; excess submissions get 429 (default 32)
    --job-ttl SECS     drop finished jobs (results, logs, held churn sessions)
                       SECS after they finish; counted in the
                       lopacityd_jobs_expired metric (default: keep forever)

ENDPOINTS:
    POST /jobs                submit a job spec (see crate docs for the format)
    GET  /jobs/<id>           job phase + summary
    GET  /jobs/<id>/progress  observer lines (?since=K)
    GET  /jobs/<id>/result    final summary (409 until finished)
    POST /jobs/<id>/cancel    cooperative cancel
    POST /jobs/<id>/events    churn event batch into a held session
    GET  /metrics             counters (cache hits, trials, queue depth, ...)
    GET  /healthz             liveness probe
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = run(&argv) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv.iter().map(String::as_str));
    let unknown = args.unknown_keys(&["addr", "workers", "queue", "job-ttl"]);
    if !unknown.is_empty() {
        return Err(format!("unknown option --{} (see --help)", unknown[0]));
    }
    let defaults = DaemonConfig::default();
    let config = DaemonConfig {
        addr: args.get("addr").unwrap_or(&defaults.addr).to_string(),
        workers: args.get_or("workers", defaults.workers)?,
        queue_capacity: args.get_or("queue", defaults.queue_capacity)?,
        job_ttl_secs: match args.get("job-ttl") {
            None => None,
            Some(raw) => Some(
                raw.parse().map_err(|_| format!("--job-ttl: {raw:?} is not a seconds count"))?,
            ),
        },
    };
    let daemon = Daemon::bind(&config).map_err(|e| format!("bind {}: {e}", config.addr))?;
    println!("lopacityd listening on {}", daemon.addr());
    println!("workers {} queue {}", config.workers.max(1), config.queue_capacity);
    loop {
        std::thread::park();
    }
}
