//! The durable job journal: lopacityd's crash-safety substrate.
//!
//! One append-only, fsync'd, checksummed record log per `--state-dir`
//! (`<state-dir>/journal.log`). Every externally visible job transition is
//! appended *before* it is acknowledged — the submitted spec (canonical
//! text), terminal phase changes, periodic [`RunCheckpoint`]s from the
//! greedy driver, churn event batches, and rendered result graphs. On
//! boot the daemon replays the log, restores finished jobs, and re-queues
//! interrupted ones from their last checkpoint; the core resume contract
//! (`tests/checkpoint_resume.rs`) then guarantees the recovered output is
//! byte-identical to what the uninterrupted run would have produced.
//!
//! # Frame format
//!
//! Plain text, like every other wire format in this workspace:
//!
//! ```text
//! lopj1 <kind> <job-id> <payload-len> <fnv64-hex>\n
//! <payload bytes>\n
//! ```
//!
//! `<payload-len>` counts the payload bytes only (not the trailing
//! newline); `<fnv64-hex>` is FNV-1a 64 over those bytes. A crash mid
//! `write(2)` leaves a torn tail: a header that does not parse, a payload
//! shorter than its declared length, or a checksum mismatch. Replay stops
//! at the first such frame and **truncates** the file back to the last
//! good frame boundary, so the journal is self-healing — every record
//! that replays was fully durable, and a record that was not fully
//! durable was never acknowledged to a client.
//!
//! # Durability and fault injection
//!
//! [`Journal::append`] writes the frame, flushes, and `sync_data`s before
//! returning, with a bounded retry-with-backoff around transient I/O
//! errors. The deterministic [`FaultPlan`] sites `journal.append` and
//! `journal.fsync` fire inside that loop, which is how the chaos suite
//! proves both the retry path (transient faults are absorbed) and the
//! give-up path (persistent faults surface as a submit `503`).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lopacity::RunCheckpoint;
use lopacity_graph::Edge;
use lopacity_util::FaultPlan;

/// Journal file name inside the state directory.
const JOURNAL_FILE: &str = "journal.log";
/// Frame magic; bump the digit on any format change.
const MAGIC: &str = "lopj1";
/// Attempts per append before the error surfaces to the caller.
const APPEND_ATTEMPTS: u32 = 3;
/// Backoff base between attempts (linear: base, 2×base, ...).
const BACKOFF: Duration = Duration::from_millis(1);

/// One durable record. The `u64` in every variant is the job id.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was admitted; payload is the canonical spec text
    /// ([`crate::JobSpec::canonical_body`]).
    Submit { id: u64, spec: String },
    /// A job reached a phase worth persisting (running jobs journal only
    /// terminal phases; `running` itself is implied by Submit-without-
    /// terminal). First payload line is the phase name, the rest is the
    /// summary.
    Phase { id: u64, phase: String, summary: String },
    /// A mid-run snapshot from the greedy driver (newest wins on replay).
    Checkpoint { id: u64, checkpoint: RunCheckpoint },
    /// A churn event batch that was applied to the job's held session.
    Events { id: u64, batch: String },
    /// The rendered final graph (canonical edge-list text).
    Result { id: u64, graph: String },
}

impl Record {
    fn kind(&self) -> &'static str {
        match self {
            Record::Submit { .. } => "submit",
            Record::Phase { .. } => "phase",
            Record::Checkpoint { .. } => "checkpoint",
            Record::Events { .. } => "events",
            Record::Result { .. } => "result",
        }
    }

    pub fn id(&self) -> u64 {
        match self {
            Record::Submit { id, .. }
            | Record::Phase { id, .. }
            | Record::Checkpoint { id, .. }
            | Record::Events { id, .. }
            | Record::Result { id, .. } => *id,
        }
    }

    fn payload(&self) -> String {
        match self {
            Record::Submit { spec, .. } => spec.clone(),
            Record::Phase { phase, summary, .. } => format!("{phase}\n{summary}"),
            Record::Checkpoint { checkpoint, .. } => encode_checkpoint(checkpoint),
            Record::Events { batch, .. } => batch.clone(),
            Record::Result { graph, .. } => graph.clone(),
        }
    }

    fn decode(kind: &str, id: u64, payload: &str) -> Result<Record, String> {
        match kind {
            "submit" => Ok(Record::Submit { id, spec: payload.to_string() }),
            "phase" => {
                let (phase, summary) = payload.split_once('\n').unwrap_or((payload, ""));
                Ok(Record::Phase {
                    id,
                    phase: phase.to_string(),
                    summary: summary.to_string(),
                })
            }
            "checkpoint" => {
                Ok(Record::Checkpoint { id, checkpoint: decode_checkpoint(payload)? })
            }
            "events" => Ok(Record::Events { id, batch: payload.to_string() }),
            "result" => Ok(Record::Result { id, graph: payload.to_string() }),
            other => Err(format!("unknown record kind {other:?}")),
        }
    }
}

/// Checkpoint payload: `key value` lines; edits as space-separated `u-v`.
fn encode_checkpoint(ck: &RunCheckpoint) -> String {
    let edges = |list: &[Edge]| {
        list.iter().map(|e| format!("{}-{}", e.u(), e.v())).collect::<Vec<_>>().join(" ")
    };
    format!(
        "steps {}\ntrials {}\nrng {} {} {} {}\nremoved {}\ninserted {}\n",
        ck.steps,
        ck.trials,
        ck.rng_state[0],
        ck.rng_state[1],
        ck.rng_state[2],
        ck.rng_state[3],
        edges(&ck.removed),
        edges(&ck.inserted),
    )
}

fn decode_checkpoint(payload: &str) -> Result<RunCheckpoint, String> {
    let mut ck = RunCheckpoint {
        steps: 0,
        trials: 0,
        rng_state: [0; 4],
        removed: Vec::new(),
        inserted: Vec::new(),
    };
    let edges = |list: &str| -> Result<Vec<Edge>, String> {
        list.split_whitespace()
            .map(|pair| {
                let (u, v) = pair
                    .split_once('-')
                    .ok_or_else(|| format!("checkpoint edge {pair:?} is not u-v"))?;
                let u = u.parse().map_err(|_| format!("checkpoint edge {pair:?}: bad u"))?;
                let v = v.parse().map_err(|_| format!("checkpoint edge {pair:?}: bad v"))?;
                Ok(Edge::new(u, v))
            })
            .collect()
    };
    for line in payload.lines() {
        let (key, value) = match line.split_once(' ') {
            Some(kv) => kv,
            None => (line, ""),
        };
        match key {
            "steps" => {
                ck.steps = value.parse().map_err(|_| format!("checkpoint steps {value:?}"))?
            }
            "trials" => {
                ck.trials = value.parse().map_err(|_| format!("checkpoint trials {value:?}"))?
            }
            "rng" => {
                let words: Vec<&str> = value.split_whitespace().collect();
                if words.len() != 4 {
                    return Err(format!("checkpoint rng needs 4 words, got {}", words.len()));
                }
                for (slot, word) in ck.rng_state.iter_mut().zip(&words) {
                    *slot = word.parse().map_err(|_| format!("checkpoint rng word {word:?}"))?;
                }
            }
            "removed" => ck.removed = edges(value)?,
            "inserted" => ck.inserted = edges(value)?,
            other => return Err(format!("unknown checkpoint key {other:?}")),
        }
    }
    Ok(ck)
}

/// FNV-1a 64 over raw bytes (the frame checksum).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_frame(record: &Record) -> Vec<u8> {
    let payload = record.payload();
    let bytes = payload.as_bytes();
    let mut frame = format!(
        "{MAGIC} {} {} {} {:016x}\n",
        record.kind(),
        record.id(),
        bytes.len(),
        fnv64(bytes)
    )
    .into_bytes();
    frame.extend_from_slice(bytes);
    frame.push(b'\n');
    frame
}

/// Scans a raw journal byte buffer into its durable records: the frames
/// that parse, the byte offset of the first torn/corrupt frame (== the
/// clean length of the buffer), and the tear's reason when there is one.
/// This is [`Journal::open`]'s replay loop, exposed so recovery tooling
/// and the parser fuzz suite can drive it on arbitrary bytes without a
/// file — it never panics and never allocates beyond the decoded records.
pub fn scan_frames(buf: &[u8]) -> (Vec<Record>, usize, Option<String>) {
    let mut records = Vec::new();
    let mut offset = 0;
    loop {
        match parse_frame(buf, offset) {
            Parsed::Frame(record, next) => {
                records.push(record);
                offset = next;
            }
            Parsed::Clean => return (records, offset, None),
            Parsed::Torn(why) => return (records, offset, Some(why)),
        }
    }
}

/// Outcome of parsing one frame from the byte stream at `offset`.
enum Parsed {
    /// A good frame; `next` is the offset just past it.
    Frame(Record, usize),
    /// End of buffer, exactly at a frame boundary.
    Clean,
    /// A torn or corrupt tail starting at this offset.
    Torn(String),
}

fn parse_frame(buf: &[u8], offset: usize) -> Parsed {
    let rest = &buf[offset..];
    if rest.is_empty() {
        return Parsed::Clean;
    }
    let Some(header_end) = rest.iter().position(|&b| b == b'\n') else {
        return Parsed::Torn("header without newline".into());
    };
    let header = match std::str::from_utf8(&rest[..header_end]) {
        Ok(h) => h,
        Err(_) => return Parsed::Torn("header is not UTF-8".into()),
    };
    let words: Vec<&str> = header.split(' ').collect();
    let [magic, kind, id, len, sum] = words.as_slice() else {
        return Parsed::Torn(format!("malformed header {header:?}"));
    };
    if *magic != MAGIC {
        return Parsed::Torn(format!("bad magic {magic:?}"));
    }
    let (Ok(id), Ok(len)) = (id.parse::<u64>(), len.parse::<usize>()) else {
        return Parsed::Torn(format!("bad id/len in header {header:?}"));
    };
    let Ok(sum) = u64::from_str_radix(sum, 16) else {
        return Parsed::Torn(format!("bad checksum in header {header:?}"));
    };
    let payload_start = header_end + 1;
    // Payload + its trailing newline must both be present. The declared
    // length is attacker-or-corruption controlled: the bound check must
    // not wrap (`payload_start + len + 1` with `len` near `usize::MAX`
    // would), so it is checked arithmetic — overflow is just Torn.
    let Some(frame_end) = payload_start.checked_add(len).and_then(|end| end.checked_add(1))
    else {
        return Parsed::Torn("declared payload length overflows".into());
    };
    if rest.len() < frame_end {
        return Parsed::Torn("payload shorter than declared length".into());
    }
    let payload = &rest[payload_start..payload_start + len];
    if rest[payload_start + len] != b'\n' {
        return Parsed::Torn("payload not newline-terminated".into());
    }
    if fnv64(payload) != sum {
        return Parsed::Torn("payload checksum mismatch".into());
    }
    let Ok(payload) = std::str::from_utf8(payload) else {
        return Parsed::Torn("payload is not UTF-8".into());
    };
    match Record::decode(kind, id, payload) {
        Ok(record) => Parsed::Frame(record, offset + payload_start + len + 1),
        Err(e) => Parsed::Torn(e),
    }
}

/// The open journal. Appends are serialized behind one lock; the file is
/// flushed and `sync_data`'d before `append` returns.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
    faults: Arc<FaultPlan>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Opens (creating if absent) `<state_dir>/journal.log`, replays every
    /// durable record, truncates any torn tail, and returns the journal
    /// plus the replayed records in append order.
    pub fn open(state_dir: &Path, faults: Arc<FaultPlan>) -> io::Result<(Journal, Vec<Record>)> {
        std::fs::create_dir_all(state_dir)?;
        let path = state_dir.join(JOURNAL_FILE);
        let mut file =
            OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        let (records, offset, torn) = scan_frames(&buf);
        if let Some(why) = torn {
            eprintln!(
                "lopacityd: journal {}: torn tail at byte {offset} ({why}); \
                 truncating {} bytes",
                path.display(),
                buf.len() - offset
            );
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Journal { file: Mutex::new(file), path, faults }, records))
    }

    /// Appends one record durably: write, flush, `sync_data`. Transient
    /// failures (including injected `journal.append` / `journal.fsync`
    /// faults) are retried with linear backoff; after `APPEND_ATTEMPTS`
    /// consecutive failures the last error surfaces to the caller, who
    /// must not acknowledge the record's effect.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        let frame = encode_frame(record);
        let mut file = self.file.lock().expect("journal lock");
        let mut last_err = None;
        for attempt in 0..APPEND_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(BACKOFF * attempt);
            }
            match self.append_once(&mut file, &frame) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    fn append_once(&self, file: &mut File, frame: &[u8]) -> io::Result<()> {
        // A failed partial write would itself be a torn tail — which is
        // exactly what replay truncates, so retrying after it is safe.
        self.faults.check_io("journal.append")?;
        file.write_all(frame)?;
        file.flush()?;
        self.faults.check_io("journal.fsync")?;
        file.sync_data()
    }

    /// The journal file's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("lopj-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submit { id: 1, spec: "mode anonymize\nl 2\ngraph gnm 10 20 3\n".into() },
            Record::Checkpoint {
                id: 1,
                checkpoint: RunCheckpoint {
                    steps: 2,
                    trials: 417,
                    rng_state: [u64::MAX, 0, 7, 123_456_789_012_345],
                    removed: vec![Edge::new(0, 1), Edge::new(4, 9)],
                    inserted: vec![Edge::new(2, 3)],
                },
            },
            Record::Events { id: 2, batch: "add 0 1\nremove 2 3\n".into() },
            Record::Phase { id: 1, phase: "done".into(), summary: "achieved true\nsteps 3\n".into() },
            Record::Result { id: 1, graph: "# lopacity edge list\n0 1\n".into() },
        ]
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let dir = tmp_dir("roundtrip");
        let written = sample_records();
        {
            let (journal, replayed) =
                Journal::open(&dir, Arc::new(FaultPlan::none())).unwrap();
            assert!(replayed.is_empty(), "fresh journal");
            for r in &written {
                journal.append(r).unwrap();
            }
        }
        let (_, replayed) = Journal::open(&dir, Arc::new(FaultPlan::none())).unwrap();
        assert_eq!(replayed, written);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_are_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        let written = sample_records();
        {
            let (journal, _) = Journal::open(&dir, Arc::new(FaultPlan::none())).unwrap();
            for r in &written {
                journal.append(r).unwrap();
            }
        }
        let path = dir.join(JOURNAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Cut the file mid-way through the last frame: the tail record is
        // lost, everything before it replays, and the file is healed.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_, replayed) = Journal::open(&dir, Arc::new(FaultPlan::none())).unwrap();
        assert_eq!(replayed, written[..written.len() - 1]);
        let healed = std::fs::metadata(&path).unwrap().len();
        assert!(healed < full.len() as u64 - 3, "torn frame was cut, not kept");
        // A third open replays the healed prefix without further loss.
        let (_, again) = Journal::open(&dir, Arc::new(FaultPlan::none())).unwrap();
        assert_eq!(again, written[..written.len() - 1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_payload_bytes_fail_the_checksum() {
        let dir = tmp_dir("corrupt");
        {
            let (journal, _) = Journal::open(&dir, Arc::new(FaultPlan::none())).unwrap();
            journal.append(&Record::Submit { id: 9, spec: "l 1\ngraph gnm 5 5 1\n".into() }).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.len() - 5; // inside the payload
        bytes[flip] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Journal::open(&dir, Arc::new(FaultPlan::none())).unwrap();
        assert!(replayed.is_empty(), "checksum rejects the bit flip");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0, "healed to the last good frame");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_append_faults_are_retried_persistent_ones_surface() {
        let dir = tmp_dir("faults");
        // Fault on the first append attempt only: absorbed by the retry.
        let faults = Arc::new(FaultPlan::parse("journal.append:1").unwrap());
        let (journal, _) = Journal::open(&dir, Arc::clone(&faults)).unwrap();
        journal.append(&Record::Submit { id: 1, spec: "x".into() }).unwrap();
        assert_eq!(faults.fired(), 1, "the fault did fire");

        // Fault on every fsync from now on: append gives up after the
        // bounded retries and reports the injected error.
        let faults = Arc::new(FaultPlan::parse("journal.fsync:1+").unwrap());
        let (journal, replayed) = Journal::open(&dir, Arc::clone(&faults)).unwrap();
        assert_eq!(replayed.len(), 1);
        let err = journal.append(&Record::Submit { id: 2, spec: "y".into() }).unwrap_err();
        assert!(err.to_string().contains("journal.fsync"), "{err}");
        assert_eq!(faults.fired(), APPEND_ATTEMPTS as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn huge_declared_lengths_are_torn_not_panics() {
        // A corrupt header declaring a near-usize::MAX payload length used
        // to wrap the bounds arithmetic and panic the replay slice; it
        // must scan as a torn tail at offset 0. (Also pinned in the fuzz
        // corpus: tests/fuzz_corpus/journal/huge-declared-len.bin.)
        let evil = format!("lopj1 submit 1 {} 0000000000000000\nxx\n", usize::MAX - 8);
        let (records, offset, torn) = scan_frames(evil.as_bytes());
        assert!(records.is_empty());
        assert_eq!(offset, 0);
        assert!(torn.unwrap().contains("overflow"));
        // A length merely larger than the buffer is the ordinary torn case.
        let (records, _, torn) = scan_frames(b"lopj1 submit 1 400 0000000000000000\nxx\n");
        assert!(records.is_empty());
        assert!(torn.unwrap().contains("shorter"));
    }

    #[test]
    fn checkpoint_payloads_preserve_every_field() {
        let ck = RunCheckpoint {
            steps: 0,
            trials: u64::MAX,
            rng_state: [1, u64::MAX, 0, 42],
            removed: vec![],
            inserted: vec![Edge::new(7, 8)],
        };
        let decoded = decode_checkpoint(&encode_checkpoint(&ck)).unwrap();
        assert_eq!(decoded, ck);
        assert!(decode_checkpoint("rng 1 2 3\n").is_err(), "short rng rejected");
        assert!(decode_checkpoint("bogus 3\n").is_err(), "unknown key rejected");
    }
}
