//! The HTTP front end: a listener thread accepting connections, one
//! handler thread per connection (requests are short — submit, poll,
//! cancel — the long work happens on the worker pool), and the route
//! table over [`lopacity_util::http`].
//!
//! Endpoints:
//!
//! | method + path                 | effect                                      |
//! |-------------------------------|---------------------------------------------|
//! | `POST /jobs`                  | submit a job spec; `202 id=N` or `429`      |
//! | `GET /jobs/<id>`              | phase + summary                             |
//! | `GET /jobs/<id>/progress`     | observer lines from `?since=K` on           |
//! | `GET /jobs/<id>/result`       | summary once finished, else `409`           |
//! | `GET /jobs/<id>/graph`        | anonymized graph (edge list) once done      |
//! | `POST /jobs/<id>/cancel`      | cooperative cancel (running or queued)      |
//! | `POST /jobs/<id>/events`      | churn batch into the held session           |
//! | `GET /metrics`                | counter exposition                          |
//! | `GET /healthz`                | liveness probe                              |

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use lopacity_util::http::{set_stream_deadlines, HttpError, Request, Response, MAX_BODY};
use lopacity_util::FaultPlan;

use crate::job::JobSpec;
use crate::journal::Journal;
use crate::state::{ChurnError, Job, ServerState, StateOptions, SubmitError};

/// Boot-time knobs for [`Daemon::bind`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see [`Daemon::addr`]).
    pub addr: String,
    /// Worker threads running jobs.
    pub workers: usize,
    /// Queued-job cap; submissions beyond it get `429`.
    pub queue_capacity: usize,
    /// Finished-job retention in seconds: expired jobs (results, progress
    /// logs, held churn sessions) are garbage-collected and counted in
    /// `lopacityd_jobs_expired`. `None` keeps them forever.
    pub job_ttl_secs: Option<u64>,
    /// Durable state directory. When set, every job transition is
    /// journaled to `<state_dir>/journal.log` and replayed at boot:
    /// finished jobs restore, interrupted jobs resume from their last
    /// checkpoint (see the crate docs and `journal`).
    pub state_dir: Option<PathBuf>,
    /// Deterministic fault plan, e.g.
    /// `journal.fsync:2,worker.panic:3:crash` (see
    /// [`lopacity_util::FaultPlan::parse`]). `None` injects nothing.
    pub fault_spec: Option<String>,
    /// Per-connection socket read *and* write deadline in seconds — the
    /// slowloris guard. 0 disables the deadlines.
    pub io_timeout_secs: u64,
    /// Checkpoint cadence in greedy steps (0 disables capture).
    pub checkpoint_every: u64,
    /// Worker panics tolerated per job before quarantine.
    pub max_attempts: u64,
    /// Queued-spec byte budget for load-shedding admission.
    pub backlog_bytes: Option<usize>,
    /// Per-job predicted-footprint cap in bytes; specs predicted past it
    /// are refused with `413` before any graph or APSP build.
    pub job_mem_budget: Option<u64>,
    /// Global predicted-footprint budget in bytes across queued and
    /// running jobs; submissions past it get `429` + `Retry-After`.
    pub mem_budget: Option<u64>,
    /// Per-job wall-clock deadline in seconds; an expired job stops at
    /// its next cooperative checkpoint (`cancelled`, `interrupted
    /// deadline`) with a certified-prefix partial result.
    pub job_deadline_secs: Option<u64>,
    /// Request-body cap in bytes, clamped to
    /// [`lopacity_util::http::MAX_BODY`]. `None` uses the clamp itself.
    pub max_body: Option<usize>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:7311".to_string(),
            workers: 2,
            queue_capacity: 32,
            job_ttl_secs: None,
            state_dir: None,
            fault_spec: None,
            io_timeout_secs: 30,
            checkpoint_every: 1,
            max_attempts: 3,
            backlog_bytes: None,
            job_mem_budget: None,
            mem_budget: None,
            job_deadline_secs: None,
            max_body: None,
        }
    }
}

/// A running daemon: listener + worker pool over a shared [`ServerState`].
/// Dropping it shuts everything down (cancelling in-flight jobs).
pub struct Daemon {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    io_timeout: Option<Duration>,
}

impl Daemon {
    /// Binds the listener and spawns the accept loop and worker pool.
    /// With a `state_dir`, the journal is opened and replayed *before*
    /// the first worker starts, so recovered jobs run exactly once.
    pub fn bind(config: &DaemonConfig) -> std::io::Result<Daemon> {
        let faults = Arc::new(match &config.fault_spec {
            Some(spec) => FaultPlan::parse(spec).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("fault plan: {e}"))
            })?,
            None => FaultPlan::none(),
        });
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = ServerState::with_options(StateOptions {
            queue_capacity: config.queue_capacity,
            job_ttl: config.job_ttl_secs.map(Duration::from_secs),
            faults: Arc::clone(&faults),
            checkpoint_every: config.checkpoint_every,
            max_attempts: config.max_attempts,
            backlog_bytes: config.backlog_bytes,
            job_mem_budget: config.job_mem_budget,
            mem_budget: config.mem_budget,
            job_deadline: config.job_deadline_secs.map(Duration::from_secs),
        });
        if let Some(dir) = &config.state_dir {
            let (journal, records) = Journal::open(dir, faults)?;
            let recovered = state.attach_journal(Arc::new(journal), records);
            if recovered > 0 {
                eprintln!("lopacityd: recovered {recovered} job(s) from the journal");
            }
        }
        let io_timeout = match config.io_timeout_secs {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        };
        let max_body = config.max_body.unwrap_or(MAX_BODY);
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("lopacityd-worker-{i}"))
                    .spawn(move || state.worker_loop())
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("lopacityd-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state, io_timeout, max_body))
            .expect("spawn accept thread");
        Ok(Daemon { state, addr, accept: Some(accept), workers, io_timeout })
    }

    /// The configured per-connection socket deadline.
    pub fn io_timeout(&self) -> Option<Duration> {
        self.io_timeout
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the shared state (integration tests, embedding).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, cancels in-flight jobs, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Graceful SIGTERM-style drain: stop admitting (`503`), stop running
    /// jobs at their next cooperative checkpoint *without* journaling a
    /// terminal phase, and join all threads. With a state dir, every job
    /// still queued or running recovers — and resumes from its last
    /// durable checkpoint — on the next boot over the same directory.
    pub fn drain(mut self) {
        self.state.begin_drain();
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.accept.is_none() && self.workers.is_empty() {
            return;
        }
        self.state.request_shutdown();
        self.state.cancel_all();
        // Unblock the accept loop with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// SIGTERM plumbing for [`serve_until_term`]: a raw `signal(2)`
/// registration (no dependencies; libc is always linked on unix) whose
/// handler only flips an atomic — everything async-signal-unsafe happens
/// on the main thread after the poll loop observes the flag.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static TERM: AtomicBool = AtomicBool::new(false);
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }
}

/// Serves until SIGTERM, then drains gracefully ([`Daemon::drain`]) and
/// returns — the caller exits 0, the contract init systems expect from a
/// well-behaved service. Running jobs stop at their next cooperative
/// checkpoint with their snapshots journaled; with a state dir they
/// resume on the next boot. On non-unix targets this never returns (no
/// SIGTERM to catch — kill the process).
pub fn serve_until_term(daemon: Daemon) {
    #[cfg(unix)]
    {
        term_signal::install();
        while !term_signal::TERM.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::park_timeout(Duration::from_millis(100));
        }
        eprintln!("lopacityd: SIGTERM received, draining");
        daemon.drain();
    }
    #[cfg(not(unix))]
    {
        let _ = daemon;
        loop {
            std::thread::park();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServerState>,
    io_timeout: Option<Duration>,
    max_body: usize,
) {
    for stream in listener.incoming() {
        if state.is_shutdown() {
            return;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        let _ = thread::Builder::new()
            .name("lopacityd-conn".to_string())
            .spawn(move || handle_connection(stream, state, io_timeout, max_body));
    }
}

fn handle_connection(
    stream: TcpStream,
    state: Arc<ServerState>,
    io_timeout: Option<Duration>,
    max_body: usize,
) {
    // Read *and* write deadlines: a client that stalls mid-request (or
    // stops draining the response) costs one handler thread for at most
    // the deadline, not forever — the slowloris guard. The deadlines also
    // bound how long an idle kept-alive connection holds its thread.
    let _ = set_stream_deadlines(&stream, io_timeout, io_timeout);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    // Keep-alive loop: serve requests until the client closes, asks to
    // close, an error makes further framing untrustworthy, or shutdown.
    loop {
        if state.faults.check_io("socket.read").is_err() {
            return; // injected read failure: the connection just dies
        }
        let (response, keep) = match Request::parse_with_limits(&mut reader, max_body) {
            Ok(request) => {
                let keep = request.keep_alive && !state.is_shutdown();
                (route(&request, &state), keep)
            }
            Err(HttpError::ConnectionClosed) => return,
            // After a framing error the stream position is undefined —
            // answer and drop the connection rather than misparse.
            Err(e) => (Response::new(400).text(format!("bad request: {e}\n")), false),
        };
        let response = response.keep_alive(keep);
        if state.faults.check_io("socket.write").is_err() {
            return; // injected write failure: response lost on the wire
        }
        if response.write_to(&mut write_half).is_err() || !keep {
            return;
        }
    }
}

/// Dispatches one parsed request against the state.
pub fn route(request: &Request, state: &Arc<ServerState>) -> Response {
    // Sweep expired jobs on every request, not only on submit and
    // worker-loop turns — an idle daemon that only ever gets polled
    // still honors its TTL.
    state.gc_expired();
    let segments: Vec<&str> =
        request.path.split('/').filter(|segment| !segment.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::ok("ok\n"),
        ("GET", ["metrics"]) => Response::ok(state.render_metrics()),
        ("POST", ["jobs"]) => submit(request, state),
        ("GET", ["jobs", id]) => with_job(state, id, |job| {
            let status = job.snapshot();
            Response::ok(format!("id {}\nphase {}\n{}", job.id, status.phase.name(), status.summary))
        }),
        ("GET", ["jobs", id, "progress"]) => with_job(state, id, |job| {
            let since = request
                .query_param("since")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            let (next, lines) = job.progress_since(since);
            let mut body = format!("next {next}\n");
            for line in lines {
                body.push_str(&line);
                body.push('\n');
            }
            Response::ok(body)
        }),
        ("GET", ["jobs", id, "graph"]) => with_job(state, id, |job| {
            let status = job.snapshot();
            match job.result_graph() {
                Some(graph) => Response::ok(graph),
                None if status.phase.finished() => Response::new(404)
                    .text(format!("job {} produced no graph ({})\n", job.id, status.phase.name())),
                None => {
                    Response::new(409).text(format!("job {} still {}\n", job.id, status.phase.name()))
                }
            }
        }),
        ("GET", ["jobs", id, "result"]) => with_job(state, id, |job| {
            let status = job.snapshot();
            if status.phase.finished() {
                Response::ok(format!("phase {}\n{}", status.phase.name(), status.summary))
            } else {
                Response::new(409).text(format!("job {} still {}\n", job.id, status.phase.name()))
            }
        }),
        ("POST", ["jobs", id, "cancel"]) => match id.parse::<u64>() {
            Ok(id) if state.cancel(id) => Response::ok("cancelling\n"),
            Ok(id) => Response::new(404).text(format!("no job {id}\n")),
            Err(_) => Response::new(400).text("job id is not a number\n"),
        },
        ("POST", ["jobs", id, "events"]) => events(request, state, id),
        _ => Response::new(404).text("not found\n"),
    }
}

fn with_job(
    state: &Arc<ServerState>,
    id: &str,
    respond: impl FnOnce(&Job) -> Response,
) -> Response {
    match id.parse::<u64>() {
        Ok(id) => match state.job(id) {
            Some(job) => respond(&job),
            None => Response::new(404).text(format!("no job {id}\n")),
        },
        Err(_) => Response::new(400).text("job id is not a number\n"),
    }
}

fn submit(request: &Request, state: &Arc<ServerState>) -> Response {
    let Some(body) = request.body_str() else {
        return Response::new(400).text("body is not UTF-8\n");
    };
    let mut spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return Response::new(400).text(format!("bad job spec: {e}\n")),
    };
    // An `Idempotency-Key` header is folded into the spec (same slot as
    // an `ikey` line, which wins on conflict) so it rides the journaled
    // canonical spec and survives daemon restarts.
    if spec.idempotency_key.is_none() {
        if let Some(key) = request.header("idempotency-key") {
            if let Err(e) = crate::job::validate_idempotency_key(key) {
                return Response::new(400).text(format!("bad Idempotency-Key: {e}\n"));
            }
            spec.idempotency_key = Some(key.to_string());
        }
    }
    match state.submit(spec) {
        Ok(job) => Response::new(202).text(format!("id {}\n", job.id)),
        Err(SubmitError::QueueFull) => {
            Response::new(429).header("Retry-After", "5").text("queue full\n")
        }
        Err(SubmitError::ShuttingDown) => Response::new(503).text("shutting down\n"),
        Err(SubmitError::Overloaded) => Response::new(503)
            .header("Retry-After", "5")
            .text("overloaded: checkpointed backlog over budget\n"),
        Err(SubmitError::TooLarge { estimate, budget }) => Response::new(413).text(format!(
            "estimated footprint {estimate} bytes exceeds the per-job memory budget {budget}\n"
        )),
        Err(SubmitError::MemFull { estimate, in_flight, budget }) => Response::new(429)
            .header("Retry-After", "5")
            .text(format!(
                "memory budget full: {in_flight} bytes in flight + {estimate} estimated exceeds {budget}\n"
            )),
        Err(SubmitError::Journal(e)) => {
            Response::new(503).text(format!("journal write failed, job not admitted: {e}\n"))
        }
    }
}

fn events(request: &Request, state: &Arc<ServerState>, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::new(400).text("job id is not a number\n");
    };
    let Some(body) = request.body_str() else {
        return Response::new(400).text("body is not UTF-8\n");
    };
    match state.apply_churn_events(id, body) {
        Ok(report) => Response::ok(report),
        Err(ChurnError::UnknownJob) => Response::new(404).text(format!("no job {id}\n")),
        Err(ChurnError::NoSession) => {
            Response::new(409).text(format!("job {id} holds no live churn session\n"))
        }
        Err(ChurnError::Parse(e)) => Response::new(400).text(format!("bad event stream: {e}\n")),
    }
}
