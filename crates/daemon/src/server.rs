//! The HTTP front end: a listener thread accepting connections, one
//! handler thread per connection (requests are short — submit, poll,
//! cancel — the long work happens on the worker pool), and the route
//! table over [`lopacity_util::http`].
//!
//! Endpoints:
//!
//! | method + path                 | effect                                      |
//! |-------------------------------|---------------------------------------------|
//! | `POST /jobs`                  | submit a job spec; `202 id=N` or `429`      |
//! | `GET /jobs/<id>`              | phase + summary                             |
//! | `GET /jobs/<id>/progress`     | observer lines from `?since=K` on           |
//! | `GET /jobs/<id>/result`       | summary once finished, else `409`           |
//! | `POST /jobs/<id>/cancel`      | cooperative cancel (running or queued)      |
//! | `POST /jobs/<id>/events`      | churn batch into the held session           |
//! | `GET /metrics`                | counter exposition                          |
//! | `GET /healthz`                | liveness probe                              |

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use lopacity_util::http::{HttpError, Request, Response};

use crate::job::JobSpec;
use crate::state::{ChurnError, Job, ServerState, SubmitError};

/// Boot-time knobs for [`Daemon::bind`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see [`Daemon::addr`]).
    pub addr: String,
    /// Worker threads running jobs.
    pub workers: usize,
    /// Queued-job cap; submissions beyond it get `429`.
    pub queue_capacity: usize,
    /// Finished-job retention in seconds: expired jobs (results, progress
    /// logs, held churn sessions) are garbage-collected and counted in
    /// `lopacityd_jobs_expired`. `None` keeps them forever.
    pub job_ttl_secs: Option<u64>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:7311".to_string(),
            workers: 2,
            queue_capacity: 32,
            job_ttl_secs: None,
        }
    }
}

/// A running daemon: listener + worker pool over a shared [`ServerState`].
/// Dropping it shuts everything down (cancelling in-flight jobs).
pub struct Daemon {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener and spawns the accept loop and worker pool.
    pub fn bind(config: &DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = ServerState::with_job_ttl(
            config.queue_capacity,
            config.job_ttl_secs.map(Duration::from_secs),
        );
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("lopacityd-worker-{i}"))
                    .spawn(move || state.worker_loop())
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("lopacityd-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state))
            .expect("spawn accept thread");
        Ok(Daemon { state, addr, accept: Some(accept), workers })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the shared state (integration tests, embedding).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, cancels in-flight jobs, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.accept.is_none() && self.workers.is_empty() {
            return;
        }
        self.state.request_shutdown();
        self.state.cancel_all();
        // Unblock the accept loop with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.is_shutdown() {
            return;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        let _ = thread::Builder::new()
            .name("lopacityd-conn".to_string())
            .spawn(move || handle_connection(stream, state));
    }
}

fn handle_connection(stream: TcpStream, state: Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let response = match Request::parse(&mut reader) {
        Ok(request) => route(&request, &state),
        Err(HttpError::ConnectionClosed) => return,
        Err(e) => Response::new(400).text(format!("bad request: {e}\n")),
    };
    let mut write_half = stream;
    let _ = response.write_to(&mut write_half);
}

/// Dispatches one parsed request against the state.
pub fn route(request: &Request, state: &Arc<ServerState>) -> Response {
    let segments: Vec<&str> =
        request.path.split('/').filter(|segment| !segment.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::ok("ok\n"),
        ("GET", ["metrics"]) => Response::ok(state.render_metrics()),
        ("POST", ["jobs"]) => submit(request, state),
        ("GET", ["jobs", id]) => with_job(state, id, |job| {
            let status = job.snapshot();
            Response::ok(format!("id {}\nphase {}\n{}", job.id, status.phase.name(), status.summary))
        }),
        ("GET", ["jobs", id, "progress"]) => with_job(state, id, |job| {
            let since = request
                .query_param("since")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            let (next, lines) = job.progress_since(since);
            let mut body = format!("next {next}\n");
            for line in lines {
                body.push_str(&line);
                body.push('\n');
            }
            Response::ok(body)
        }),
        ("GET", ["jobs", id, "result"]) => with_job(state, id, |job| {
            let status = job.snapshot();
            if status.phase.finished() {
                Response::ok(format!("phase {}\n{}", status.phase.name(), status.summary))
            } else {
                Response::new(409).text(format!("job {} still {}\n", job.id, status.phase.name()))
            }
        }),
        ("POST", ["jobs", id, "cancel"]) => match id.parse::<u64>() {
            Ok(id) if state.cancel(id) => Response::ok("cancelling\n"),
            Ok(id) => Response::new(404).text(format!("no job {id}\n")),
            Err(_) => Response::new(400).text("job id is not a number\n"),
        },
        ("POST", ["jobs", id, "events"]) => events(request, state, id),
        _ => Response::new(404).text("not found\n"),
    }
}

fn with_job(
    state: &Arc<ServerState>,
    id: &str,
    respond: impl FnOnce(&Job) -> Response,
) -> Response {
    match id.parse::<u64>() {
        Ok(id) => match state.job(id) {
            Some(job) => respond(&job),
            None => Response::new(404).text(format!("no job {id}\n")),
        },
        Err(_) => Response::new(400).text("job id is not a number\n"),
    }
}

fn submit(request: &Request, state: &Arc<ServerState>) -> Response {
    let Some(body) = request.body_str() else {
        return Response::new(400).text("body is not UTF-8\n");
    };
    let spec = match JobSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return Response::new(400).text(format!("bad job spec: {e}\n")),
    };
    match state.submit(spec) {
        Ok(job) => Response::new(202).text(format!("id {}\n", job.id)),
        Err(SubmitError::QueueFull) => Response::new(429).text("queue full\n"),
        Err(SubmitError::ShuttingDown) => Response::new(503).text("shutting down\n"),
    }
}

fn events(request: &Request, state: &Arc<ServerState>, id: &str) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::new(400).text("job id is not a number\n");
    };
    let Some(body) = request.body_str() else {
        return Response::new(400).text("body is not UTF-8\n");
    };
    match state.apply_churn_events(id, body) {
        Ok(report) => Response::ok(report),
        Err(ChurnError::UnknownJob) => Response::new(404).text(format!("no job {id}\n")),
        Err(ChurnError::NoSession) => {
            Response::new(409).text(format!("job {id} holds no live churn session\n"))
        }
        Err(ChurnError::Parse(e)) => Response::new(400).text(format!("bad event stream: {e}\n")),
    }
}
