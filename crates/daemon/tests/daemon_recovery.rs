//! Crash recovery, fault injection, and graceful degradation, end to end:
//!
//! * a daemon drained (or SIGKILLed, or crashed by an injected fault) mid
//!   job re-queues the job from its journal on the next boot and resumes
//!   from the last durable checkpoint — and the recovered final graph is
//!   **byte-identical** to an uninterrupted run's, on both store backends;
//! * finished jobs restore from the journal without re-running;
//! * `done` churn jobs get their held session rebuilt deterministically;
//! * a panicking job is re-queued up to its attempts budget, then
//!   quarantined — without taking the worker pool down;
//! * load-shedding admission sheds the oldest queued job and answers
//!   over-budget submissions with `503` + `Retry-After`;
//! * every named fault site fires under a seeded sweep and the daemon
//!   still produces byte-identical results (degradation, not corruption).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use lopacity_daemon::{Daemon, DaemonConfig};

/// A fresh per-test state directory under the system temp dir.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lopd-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(config: DaemonConfig) -> Daemon {
    Daemon::bind(&config).expect("bind daemon on an ephemeral port")
}

fn config_with(state_dir: Option<PathBuf>) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        state_dir,
        ..DaemonConfig::default()
    }
}

/// One request over a fresh connection; returns the raw response text
/// (empty if the connection died — e.g. an injected socket fault).
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let _ = write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    raw
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let raw = request_raw(addr, method, path, body);
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn field(body: &str, key: &str) -> Option<String> {
    body.lines().find_map(|line| {
        line.strip_prefix(key)
            .filter(|rest| rest.starts_with(' '))
            .map(|rest| rest.trim().to_string())
    })
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, body) = request(addr, "POST", "/jobs", spec);
    assert_eq!(status, 202, "submit failed: {body}");
    field(&body, "id").expect("submit returns an id").parse().expect("numeric id")
}

fn wait_finished(addr: SocketAddr, id: u64) -> (String, String) {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "status poll failed: {body}");
        let phase = field(&body, "phase").expect("status has a phase");
        if matches!(phase.as_str(), "done" | "cancelled" | "failed") {
            return (phase, body);
        }
        assert!(Instant::now() < deadline, "job {id} did not finish; last status:\n{body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls the progress log until at least `min_steps` step lines appear.
fn wait_steps(addr: SocketAddr, id: u64, min_steps: usize) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}/progress"), "");
        assert_eq!(status, 200);
        if body.lines().filter(|l| l.starts_with("step ")).count() >= min_steps {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never reached {min_steps} steps:\n{body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body.lines()
        .find_map(|line| {
            line.strip_suffix(|c: char| c.is_ascii_digit())
                .map(|_| line)
                .and_then(|l| l.rsplit_once(' '))
                .filter(|(n, _)| *n == name)
                .and_then(|(_, v)| v.parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{body}"))
}

/// Fetches the anonymized graph text for a finished job.
fn result_graph(addr: SocketAddr, id: u64) -> String {
    let (status, body) = request(addr, "GET", &format!("/jobs/{id}/graph"), "");
    assert_eq!(status, 200, "graph fetch failed: {body}");
    body
}

/// A deterministic multi-step workload: θ is unreachable, so the run
/// always stops at exactly `max_steps` greedy steps ("interrupted
/// budget") — plenty of room to interrupt it earlier and resume.
fn budget_spec(method: &str, store: &str, max_steps: u64) -> String {
    format!(
        "mode anonymize\nmethod {method}\nl 2\ntheta 0.01\nseed 11\nstore {store}\n\
         max_steps {max_steps}\ngraph gnm 100 300 7\n"
    )
}

/// The uninterrupted reference for a spec, computed on a journal-less
/// daemon: (summary body, graph text).
fn reference_run(spec: &str) -> (String, String) {
    let daemon = boot(config_with(None));
    let addr = daemon.addr();
    let id = submit(addr, spec);
    let (phase, summary) = wait_finished(addr, id);
    assert_eq!(phase, "done", "{summary}");
    let graph = result_graph(addr, id);
    daemon.shutdown();
    (summary, graph)
}

fn assert_same_outcome(reference: &(String, String), summary: &str, graph: &str, tag: &str) {
    for key in ["achieved", "steps", "trials", "removed", "inserted", "final_lo", "interrupted"] {
        assert_eq!(
            field(&reference.0, key),
            field(summary, key),
            "{tag}: summary field {key} diverged\nreference:\n{}\nrecovered:\n{summary}",
            reference.0
        );
    }
    assert_eq!(reference.1, graph, "{tag}: recovered graph is not byte-identical");
}

/// Tentpole: drain mid-run (the SIGTERM path), reboot on the same state
/// dir, and the job resumes from its last durable checkpoint to a
/// byte-identical result — across methods and both store backends.
#[test]
fn drain_then_reboot_resumes_byte_identical() {
    for (method, store) in [("rem", "dense"), ("rem", "sparse"), ("rem-ins", "dense")] {
        let spec = budget_spec(method, store, 60);
        let reference = reference_run(&spec);

        let dir = state_dir(&format!("drain-{method}-{store}"));
        let daemon = boot(config_with(Some(dir.clone())));
        let addr = daemon.addr();
        let id = submit(addr, &spec);
        wait_steps(addr, id, 3);
        daemon.drain(); // stop admitting, checkpoint, suppress terminal records

        let daemon = boot(config_with(Some(dir.clone())));
        let addr = daemon.addr();
        assert!(metric(addr, "lopacityd_jobs_recovered") >= 1, "{method}/{store}");
        let (phase, summary) = wait_finished(addr, id);
        assert_eq!(phase, "done", "{summary}");
        let graph = result_graph(addr, id);
        assert_same_outcome(&reference, &summary, &graph, &format!("{method}/{store}"));
        let (_, progress) = request(addr, "GET", &format!("/jobs/{id}/progress"), "");
        assert!(
            progress.contains("resumed from checkpoint"),
            "{method}/{store}: expected a resume, not a restart:\n{progress}"
        );
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Finished jobs restore from the journal as-is: same phase, summary, and
/// graph, with no re-run (the evaluator cache stays cold).
#[test]
fn finished_jobs_restore_without_rerun() {
    let dir = state_dir("restore");
    let spec = "mode anonymize\nl 2\ntheta 0.5\nseed 11\ngraph gnm 40 90 3\n";
    let daemon = boot(config_with(Some(dir.clone())));
    let addr = daemon.addr();
    let id = submit(addr, spec);
    let (phase, summary) = wait_finished(addr, id);
    assert_eq!(phase, "done");
    let graph = result_graph(addr, id);
    daemon.shutdown();

    let daemon = boot(config_with(Some(dir.clone())));
    let addr = daemon.addr();
    let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200);
    assert_eq!(field(&body, "phase").as_deref(), Some("done"), "restored terminal phase");
    for key in ["achieved", "steps", "trials", "final_lo"] {
        assert_eq!(field(&body, key), field(&summary, key), "restored summary field {key}");
    }
    assert_eq!(result_graph(addr, id), graph, "restored graph byte-identical");
    assert_eq!(metric(addr, "lopacityd_cache_builds"), 0, "no re-run on restore");
    assert_eq!(metric(addr, "lopacityd_jobs_recovered"), 0, "restore is not recovery");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `done` churn job's held session is rebuilt at boot by re-running the
/// deterministic setup and replaying the journaled event batches; the
/// rebuilt session keeps accepting batches.
#[test]
fn churn_sessions_rebuild_on_boot() {
    let dir = state_dir("churn");
    let spec = "mode churn\nl 1\ntheta 0.6\nseed 5\ngraph gnm 30 60 9\n";
    let daemon = boot(config_with(Some(dir.clone())));
    let addr = daemon.addr();
    let id = submit(addr, spec);
    let (phase, _) = wait_finished(addr, id);
    assert_eq!(phase, "done");
    let (status, first_report) =
        request(addr, "POST", &format!("/jobs/{id}/events"), "+ 0 1\n- 2 3\n+ 4 5\n");
    assert_eq!(status, 200, "{first_report}");
    daemon.shutdown();

    let daemon = boot(config_with(Some(dir.clone())));
    let addr = daemon.addr();
    assert_eq!(metric(addr, "lopacityd_churn_sessions"), 1, "session rebuilt at boot");
    assert!(metric(addr, "lopacityd_jobs_recovered") >= 1);
    // The rebuilt session is live: a fresh batch lands with a report, and
    // re-adding an edge the journaled batch already added is a skip —
    // proof the replayed state carried over.
    let (status, report) = request(addr, "POST", &format!("/jobs/{id}/events"), "+ 0 1\n+ 6 7\n");
    assert_eq!(status, 200, "{report}");
    let skipped: u64 = field(&report, "skipped").unwrap().parse().unwrap();
    assert!(skipped >= 1, "duplicate of a replayed event must be skipped:\n{report}");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One injected worker panic: the job is re-queued, resumes from its
/// checkpoint, and still lands on the byte-identical result.
#[test]
fn panicked_jobs_resume_and_complete() {
    let spec = budget_spec("rem", "auto", 40);
    let reference = reference_run(&spec);
    let dir = state_dir("panic-resume");
    let daemon = boot(DaemonConfig {
        fault_spec: Some("worker.panic:4".to_string()),
        ..config_with(Some(dir.clone()))
    });
    let addr = daemon.addr();
    let id = submit(addr, &spec);
    let (phase, summary) = wait_finished(addr, id);
    assert_eq!(phase, "done", "{summary}");
    assert_same_outcome(&reference, &summary, &result_graph(addr, id), "panic-resume");
    let (_, progress) = request(addr, "GET", &format!("/jobs/{id}/progress"), "");
    assert!(progress.contains("panic caught"), "{progress}");
    assert!(progress.contains("resumed from checkpoint"), "{progress}");
    assert_eq!(metric(addr, "lopacityd_jobs_quarantined"), 0);
    assert!(metric(addr, "lopacityd_faults_injected") >= 1);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A job that panics on every attempt exhausts its budget and is
/// quarantined with the captured panic — and the daemon keeps serving.
#[test]
fn poisoned_jobs_are_quarantined() {
    let daemon = boot(DaemonConfig {
        fault_spec: Some("worker.panic:1+".to_string()),
        max_attempts: 2,
        ..config_with(None)
    });
    let addr = daemon.addr();
    let id = submit(addr, &budget_spec("rem", "auto", 40));
    let (phase, summary) = wait_finished(addr, id);
    assert_eq!(phase, "failed", "{summary}");
    assert!(summary.contains("quarantined after 2 panics"), "{summary}");
    assert!(summary.contains("injected fault at worker.panic"), "{summary}");
    assert_eq!(metric(addr, "lopacityd_jobs_quarantined"), 1);
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "pool survives a poisoned job");
    daemon.shutdown();
}

/// Load shedding: when the queued-spec byte budget is exceeded, the
/// oldest queued job is shed (failed, counted) in favor of the newcomer;
/// a spec that cannot fit at all gets `503` with a `Retry-After` header.
#[test]
fn load_shedding_sheds_oldest_and_rejects_oversize() {
    let small = "mode anonymize\nl 2\ntheta 0.0\nseed 11\nmax_steps 500\ngraph gnm 150 450 7\n";
    let small_bytes =
        lopacity_daemon::JobSpec::parse(small).unwrap().canonical_body().len();
    let daemon = boot(DaemonConfig {
        backlog_bytes: Some(small_bytes * 2 + small_bytes / 2),
        ..config_with(None)
    });
    let addr = daemon.addr();
    // Occupy the single worker so later submissions stay queued.
    let running = submit(addr, small);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = request(addr, "GET", &format!("/jobs/{running}"), "");
        if field(&body, "phase").as_deref() == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "first job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    let queued_a = submit(addr, small);
    let queued_b = submit(addr, small);
    // Admitting a third queued spec would exceed the 2.5×-spec budget:
    // the oldest queued job is shed, the newcomer is admitted.
    let newcomer = submit(addr, small);
    let (status, body) = request(addr, "GET", &format!("/jobs/{queued_a}"), "");
    assert_eq!(status, 200);
    assert_eq!(field(&body, "phase").as_deref(), Some("failed"), "oldest queued was shed");
    assert!(body.contains("shed under load"), "{body}");
    assert_eq!(metric(addr, "lopacityd_shed_total"), 1);

    // A spec too large for the whole budget is refused with Retry-After.
    let giant_edges: String = (0..200).map(|i| format!("{i} {}\n", i + 1)).collect();
    let giant = format!("mode anonymize\nl 1\ntheta 0.5\ngraph inline\n\n{giant_edges}");
    let raw = request_raw(addr, "POST", "/jobs", &giant);
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("Retry-After:"), "503 must carry Retry-After:\n{raw}");

    // Cleanup: cancel everything still alive.
    for id in [running, queued_b, newcomer] {
        let _ = request(addr, "POST", &format!("/jobs/{id}/cancel"), "");
    }
    daemon.shutdown();
}

/// The seeded chaos sweep: every named fault site fires at least once in
/// one daemon lifetime — and the workload still completes with a
/// byte-identical result. Degradation never becomes corruption.
#[test]
fn fault_sweep_fires_every_site_and_stays_correct() {
    let spec = budget_spec("rem", "auto", 40);
    let reference = reference_run(&spec);
    let dir = state_dir("sweep");
    let daemon = boot(DaemonConfig {
        fault_spec: Some(
            "socket.read:1,socket.write:1,journal.append:1,journal.fsync:2,\
             cache.insert:1,worker.panic:4"
                .to_string(),
        ),
        ..config_with(Some(dir.clone()))
    });
    let addr = daemon.addr();
    // Connection 1 dies on the injected read fault, connection 2 loses
    // its response on the write fault; both leave the daemon serving.
    assert_eq!(request_raw(addr, "GET", "/healthz", ""), "", "socket.read fault kills conn 1");
    assert_eq!(request_raw(addr, "GET", "/healthz", ""), "", "socket.write fault eats response 2");
    // The submit absorbs the journal.append fault via retry; the first
    // checkpoint absorbs journal.fsync the same way; cache.insert forces
    // a private build; worker.panic costs one re-queue + resume.
    let id = submit(addr, &spec);
    let (phase, summary) = wait_finished(addr, id);
    assert_eq!(phase, "done", "{summary}");
    assert_same_outcome(&reference, &summary, &result_graph(addr, id), "fault sweep");
    let fired = metric(addr, "lopacityd_faults_injected");
    assert!(fired >= 6, "all six sites must fire, got {fired}");
    for name in [
        "lopacityd_jobs_recovered",
        "lopacityd_jobs_quarantined",
        "lopacityd_faults_injected",
        "lopacityd_shed_total",
    ] {
        let (_, body) = request(addr, "GET", "/metrics", "");
        assert!(body.contains(name), "metric {name} missing:\n{body}");
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Subprocess tests: a real lopacityd process, really killed.
// ---------------------------------------------------------------------

#[cfg(unix)]
mod subprocess {
    use super::*;
    use std::process::{Child, Command, Stdio};

    /// Boots the real binary on an ephemeral port; parses the announced
    /// address from its stdout.
    fn spawn_daemon(dir: &std::path::Path, extra: &[&str]) -> (Child, SocketAddr) {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_lopacityd"));
        cmd.args(["--addr", "127.0.0.1:0", "--workers", "1"])
            .args(["--state-dir", dir.to_str().unwrap()])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn lopacityd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("lopacityd announces its address")
            .expect("readable stdout");
        let addr = first
            .strip_prefix("lopacityd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .parse()
            .expect("parsable address");
        // Drain the rest of stdout on a throwaway thread so the child
        // never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        (child, addr)
    }

    fn recovered_matches_reference(dir: &std::path::Path, id: u64, reference: &(String, String)) {
        let (mut child, addr) = spawn_daemon(dir, &[]);
        let (phase, summary) = wait_finished(addr, id);
        assert_eq!(phase, "done", "{summary}");
        assert_same_outcome(reference, &summary, &result_graph(addr, id), "subprocess recovery");
        let (_, progress) = request(addr, "GET", &format!("/jobs/{id}/progress"), "");
        assert!(progress.contains("resumed from checkpoint"), "{progress}");
        let _ = child.kill();
        let _ = child.wait();
    }

    /// SIGKILL mid-job: no drain, no warning — the journal alone brings
    /// the job back, byte-identical.
    #[test]
    fn sigkill_recovery_is_byte_identical() {
        let spec = budget_spec("rem", "auto", 60);
        let reference = reference_run(&spec);
        let dir = state_dir("sigkill");
        let (mut child, addr) = spawn_daemon(&dir, &[]);
        let id = submit(addr, &spec);
        wait_steps(addr, id, 3);
        child.kill().expect("SIGKILL the daemon"); // SIGKILL: no cleanup runs
        child.wait().expect("reap");
        recovered_matches_reference(&dir, id, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A `crash`-action fault (process abort at the Nth checkpoint append)
    /// — the self-inflicted SIGKILL — recovers the same way.
    #[test]
    fn injected_crash_fault_recovery_is_byte_identical() {
        let spec = budget_spec("rem-ins", "auto", 60);
        let reference = reference_run(&spec);
        let dir = state_dir("crashfault");
        let (mut child, addr) =
            spawn_daemon(&dir, &["--fault", "journal.append:5:crash"]);
        let id = submit(addr, &spec);
        let status = child.wait().expect("the injected fault aborts the process");
        assert!(!status.success(), "process must die from the abort, got {status}");
        recovered_matches_reference(&dir, id, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// SIGTERM drains: exit code 0, running job checkpointed (no terminal
    /// record), and the next boot resumes it — the init-system contract.
    #[test]
    fn sigterm_drains_with_exit_zero_and_resumes() {
        let spec = budget_spec("rem", "auto", 60);
        let reference = reference_run(&spec);
        let dir = state_dir("sigterm");
        let (mut child, addr) = spawn_daemon(&dir, &[]);
        let id = submit(addr, &spec);
        wait_steps(addr, id, 3);
        let term = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        assert!(term.success());
        let status = child.wait().expect("reap");
        assert!(status.success(), "SIGTERM drain must exit 0, got {status}");
        recovered_matches_reference(&dir, id, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
