//! End-to-end tests of `lopacityd` over real TCP: boot a daemon on port 0,
//! drive it with a hand-rolled HTTP/1.1 client, and check the acceptance
//! criteria of the service layer:
//!
//! * N concurrent submissions over the same `(graph, L, engine, store)`
//!   pay for exactly one APSP build (verified through `/metrics`);
//! * a cancelled job frees its worker, the pool keeps serving, and the
//!   cancelled job's progress trajectory is a prefix of an uncancelled
//!   run's;
//! * budget-interrupted jobs produce deterministic partial outcomes;
//! * churn jobs hold a live session that accepts event batches;
//! * the bounded queue rejects overflow with `429`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use lopacity_daemon::{Daemon, DaemonConfig};

fn boot(workers: usize, queue: usize) -> Daemon {
    Daemon::bind(&DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: queue,
        ..DaemonConfig::default()
    })
    .expect("bind daemon on an ephemeral port")
}

/// One request over a fresh connection (the daemon is `Connection: close`).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Like [`request`] but returns the raw response, headers included.
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// Reads `key value` from a summary body.
fn field(body: &str, key: &str) -> Option<String> {
    body.lines().find_map(|line| {
        line.strip_prefix(key)
            .filter(|rest| rest.starts_with(' '))
            .map(|rest| rest.trim().to_string())
    })
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, body) = request(addr, "POST", "/jobs", spec);
    assert_eq!(status, 202, "submit failed: {body}");
    field(&body, "id").expect("submit returns an id").parse().expect("numeric id")
}

/// Polls until the job reaches a terminal phase; returns (phase, summary).
fn wait_finished(addr: SocketAddr, id: u64) -> (String, String) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "status poll failed: {body}");
        let phase = field(&body, "phase").expect("status has a phase");
        if matches!(phase.as_str(), "done" | "cancelled" | "failed") {
            return (phase, body);
        }
        assert!(Instant::now() < deadline, "job {id} did not finish; last status:\n{body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The job's `step ...` progress lines.
fn step_lines(addr: SocketAddr, id: u64) -> Vec<String> {
    let (status, body) = request(addr, "GET", &format!("/jobs/{id}/progress"), "");
    assert_eq!(status, 200);
    body.lines().filter(|l| l.starts_with("step ")).map(str::to_string).collect()
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body.lines()
        .find_map(|line| line.strip_prefix(name).map(|rest| rest.trim().parse().unwrap()))
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{body}"))
}

/// A spec whose cache key is shared by every θ (θ is not part of the
/// prepared build).
fn shared_spec(theta: f64) -> String {
    format!("mode anonymize\nl 2\ntheta {theta}\nseed 11\ngraph gnm 40 90 3\n")
}

/// A spec that runs long enough (hundreds of greedy steps in a debug
/// build) to cancel mid-run.
const SLOW_SPEC: &str = "mode anonymize\nl 2\ntheta 0.0\nseed 11\ngraph gnm 150 450 7\n";

#[test]
fn healthz_metrics_and_routing_respond() {
    let daemon = boot(1, 4);
    let addr = daemon.addr();
    assert_eq!(request(addr, "GET", "/healthz", ""), (200, "ok\n".to_string()));
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("lopacityd_jobs_submitted 0"));
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "GET", "/jobs/99", "").0, 404);
    assert_eq!(request(addr, "POST", "/jobs", "l 2\n").0, 400, "spec without a graph");
    daemon.shutdown();
}

#[test]
fn eight_concurrent_jobs_share_one_apsp_build() {
    let daemon = boot(4, 32);
    let addr = daemon.addr();
    // Eight jobs, eight θ values, one (graph, L, engine, store) key.
    let ids: Vec<u64> = (0..8)
        .map(|i| submit(addr, &shared_spec(0.90 - 0.05 * i as f64)))
        .collect();
    let mut done = 0;
    for &id in &ids {
        let (phase, body) = wait_finished(addr, id);
        assert_eq!(phase, "done", "job {id}: {body}");
        assert_eq!(field(&body, "achieved").as_deref(), Some("true"), "job {id}: {body}");
        done += 1;
    }
    assert_eq!(done, 8);
    // The acceptance criterion: exactly one build, everyone else hits.
    assert_eq!(metric(addr, "lopacityd_cache_builds"), 1);
    assert_eq!(metric(addr, "lopacityd_cache_hits"), 7);
    assert_eq!(metric(addr, "lopacityd_jobs_completed"), 8);
    assert_eq!(metric(addr, "lopacityd_jobs_failed"), 0);
    assert!(metric(addr, "lopacityd_trials_total") > 0);
    daemon.shutdown();
}

#[test]
fn cancelled_job_frees_its_worker_and_leaves_a_prefix() {
    let daemon = boot(1, 8);
    let addr = daemon.addr();
    // Reference trajectory: the same spec run to completion first (also
    // warms the cache so the cancelled run starts its greedy phase fast).
    let reference = submit(addr, SLOW_SPEC);
    let (phase, _) = wait_finished(addr, reference);
    assert_eq!(phase, "done");
    let reference_steps = step_lines(addr, reference);
    assert!(reference_steps.len() > 10, "need a long reference run");

    let victim = submit(addr, SLOW_SPEC);
    // Let it commit a few steps, then cancel mid-run.
    let deadline = Instant::now() + Duration::from_secs(60);
    while step_lines(addr, victim).len() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(request(addr, "POST", &format!("/jobs/{victim}/cancel"), "").0, 200);
    let (phase, body) = wait_finished(addr, victim);
    assert_eq!(phase, "cancelled", "{body}");
    assert_eq!(field(&body, "interrupted").as_deref(), Some("cancel"));

    // Partial trajectory is a prefix of the uncancelled run's.
    let victim_steps = step_lines(addr, victim);
    assert!(!victim_steps.is_empty());
    assert!(victim_steps.len() < reference_steps.len(), "cancel landed mid-run");
    assert_eq!(victim_steps[..], reference_steps[..victim_steps.len()], "prefix property");

    // The worker is reclaimed: the single-worker pool still serves jobs.
    let next = submit(addr, &shared_spec(0.5));
    let (phase, _) = wait_finished(addr, next);
    assert_eq!(phase, "done");
    assert_eq!(metric(addr, "lopacityd_workers_busy"), 0);
    assert_eq!(metric(addr, "lopacityd_jobs_cancelled"), 1);
    daemon.shutdown();
}

#[test]
fn budget_interrupted_jobs_are_deterministic_partial_outcomes() {
    let daemon = boot(2, 16);
    let addr = daemon.addr();
    let full = submit(addr, SLOW_SPEC);
    let (phase, full_body) = wait_finished(addr, full);
    assert_eq!(phase, "done");
    let full_steps: u64 = field(&full_body, "steps").unwrap().parse().unwrap();
    assert!(full_steps > 6);

    // Two identical step-budgeted jobs: byte-identical partial outcomes.
    let budgeted = format!("{SLOW_SPEC}max_steps 5\n");
    let a = submit(addr, &budgeted);
    let b = submit(addr, &budgeted);
    let (phase_a, body_a) = wait_finished(addr, a);
    let (phase_b, body_b) = wait_finished(addr, b);
    assert_eq!(phase_a, "done");
    assert_eq!(phase_b, "done");
    assert_eq!(body_a.replace(&format!("id {a}"), ""), body_b.replace(&format!("id {b}"), ""));
    assert_eq!(field(&body_a, "steps").as_deref(), Some("5"));
    assert_eq!(field(&body_a, "interrupted").as_deref(), Some("budget"));
    // And the budgeted trajectory is a prefix of the full one.
    let full_lines = step_lines(addr, full);
    let a_lines = step_lines(addr, a);
    assert_eq!(a_lines[..], full_lines[..a_lines.len()]);

    // A trial budget stops within one scan step of the cap, deterministically.
    let full_trials: u64 = field(&full_body, "trials").unwrap().parse().unwrap();
    let capped = format!("{SLOW_SPEC}max_trials {}\n", full_trials / 2);
    let c = submit(addr, &capped);
    let d = submit(addr, &capped);
    let (_, body_c) = wait_finished(addr, c);
    let (_, body_d) = wait_finished(addr, d);
    let trials_c: u64 = field(&body_c, "trials").unwrap().parse().unwrap();
    assert!(trials_c >= full_trials / 2 && trials_c < full_trials);
    assert_eq!(field(&body_c, "trials"), field(&body_d, "trials"));
    assert_eq!(field(&body_c, "steps"), field(&body_d, "steps"));
    daemon.shutdown();
}

#[test]
fn churn_jobs_hold_live_sessions() {
    let daemon = boot(2, 8);
    let addr = daemon.addr();
    let job = submit(addr, "mode churn\nl 1\ntheta 0.6\nseed 5\ngraph gnm 30 60 9\n");
    let (phase, body) = wait_finished(addr, job);
    assert_eq!(phase, "done", "{body}");
    assert_eq!(field(&body, "certified").as_deref(), Some("true"));
    assert_eq!(metric(addr, "lopacityd_churn_sessions"), 1);

    // A batch of events lands in the held session.
    let (status, report) =
        request(addr, "POST", &format!("/jobs/{job}/events"), "+ 0 1\n- 2 3\n+ 4 5\n");
    assert_eq!(status, 200, "{report}");
    let applied: u64 = field(&report, "applied").unwrap().parse().unwrap();
    let skipped: u64 = field(&report, "skipped").unwrap().parse().unwrap();
    assert_eq!(applied + skipped, 3);
    assert!(field(&report, "max_lo").is_some());
    assert_eq!(metric(addr, "lopacityd_churn_events_applied"), applied);

    // Error paths: bad stream, wrong job kind, unknown id.
    assert_eq!(request(addr, "POST", &format!("/jobs/{job}/events"), "bogus\n").0, 400);
    let plain = submit(addr, &shared_spec(0.5));
    wait_finished(addr, plain);
    assert_eq!(request(addr, "POST", &format!("/jobs/{plain}/events"), "+ 0 1\n").0, 409);
    assert_eq!(request(addr, "POST", "/jobs/999/events", "+ 0 1\n").0, 404);
    daemon.shutdown();
}

#[test]
fn bounded_queue_rejects_overflow_with_429() {
    let daemon = boot(1, 1);
    let addr = daemon.addr();
    // Occupy the worker with a slow job, fill the queue's single slot,
    // then overflow.
    let slow = submit(addr, SLOW_SPEC);
    let queued = submit(addr, &shared_spec(0.5));
    let raw = request_raw(addr, "POST", "/jobs", &shared_spec(0.4));
    assert!(raw.starts_with("HTTP/1.1 429"), "{raw}");
    // Queue overflow is transient, so — like the load-shedding `503` —
    // the response tells retrying clients when to come back.
    assert!(raw.contains("Retry-After:"), "429 must carry Retry-After:\n{raw}");
    assert_eq!(metric(addr, "lopacityd_jobs_rejected"), 1);

    // A cancelled queued job is skipped without occupying the worker.
    assert_eq!(request(addr, "POST", &format!("/jobs/{queued}/cancel"), "").0, 200);
    assert_eq!(request(addr, "POST", &format!("/jobs/{slow}/cancel"), "").0, 200);
    let (phase, _) = wait_finished(addr, queued);
    assert_eq!(phase, "cancelled");
    wait_finished(addr, slow);
    daemon.shutdown();
}
