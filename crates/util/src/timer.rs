//! Wall-clock timing helpers for runtime experiments.

use std::time::{Duration, Instant};

/// A restartable stopwatch accumulating elapsed wall-clock time.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Option<Instant>,
    accumulated: Duration,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Stopwatch { started: None, accumulated: Duration::ZERO }
    }

    /// A stopwatch that starts running immediately.
    pub fn started() -> Self {
        Stopwatch { started: Some(Instant::now()), accumulated: Duration::ZERO }
    }

    /// Starts (or restarts) timing; a no-op when already running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stops timing and folds the running interval into the total.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Total accumulated time (including the running interval, if any).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Total accumulated time in (fractional) seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Runs `f` and returns its result plus the wall-clock duration it took.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_start_stop() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(2));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(2));
        sw.start();
        std::thread::sleep(Duration::from_millis(2));
        sw.stop();
        assert!(sw.elapsed() >= first + Duration::from_millis(2));
    }

    #[test]
    fn elapsed_while_running_includes_partial_interval() {
        let sw = Stopwatch::started();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn time_it_returns_value_and_duration() {
        let (v, d) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }
}
