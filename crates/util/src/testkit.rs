//! Shared comparators for the workspace's equivalence test suites.
//!
//! Three suites pin the same contract from different angles — store
//! backends (`crates/apsp/tests/store_equivalence.rs`), the incremental
//! evaluator (`crates/core/tests/evaluator_equivalence.rs`), and churn
//! replay (`tests/tests/churn_equivalence.rs`): *two distance sources must
//! agree on every `(i, j)` cell*. This module holds that comparator once.
//!
//! The util crate sits below the graph/apsp/core stack (and deliberately
//! has no dependencies), so the comparators are **closure-generic**: a
//! distance source is any `Fn(u32, u32) -> u8`, which every store,
//! matrix, and evaluator in the workspace can provide as a one-line
//! closure. That inversion is what lets one comparator serve crates the
//! util layer cannot name.

/// The first cell where two distance sources disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellMismatch {
    /// Row of the disagreeing cell.
    pub i: u32,
    /// Column of the disagreeing cell.
    pub j: u32,
    /// The left source's value.
    pub left: u8,
    /// The right source's value.
    pub right: u8,
}

impl std::fmt::Display for CellMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell ({}, {}): left {} vs right {}",
            self.i, self.j, self.left, self.right
        )
    }
}

/// Scans all `n × n` ordered cells in row-major order and returns the
/// first disagreement, or `None` when the sources are identical. Ordered
/// (not just `i < j`) on purpose: symmetric storage is part of the
/// contract, so an asymmetry bug in either source must surface here.
pub fn first_cell_mismatch(
    n: usize,
    left: impl Fn(u32, u32) -> u8,
    right: impl Fn(u32, u32) -> u8,
) -> Option<CellMismatch> {
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let (l, r) = (left(i, j), right(i, j));
            if l != r {
                return Some(CellMismatch { i, j, left: l, right: r });
            }
        }
    }
    None
}

/// [`first_cell_mismatch`] as a `Result`, with the caller's context folded
/// into the error — the shape `assert!`/`prop_assert!` call sites want.
pub fn cells_match(
    n: usize,
    left: impl Fn(u32, u32) -> u8,
    right: impl Fn(u32, u32) -> u8,
    context: &str,
) -> Result<(), String> {
    match first_cell_mismatch(n, left, right) {
        None => Ok(()),
        Some(m) => Err(format!("{m} ({context})")),
    }
}

/// The finite entries of row `i` as the workspace's stores iterate them:
/// `(j, d)` for every `j != i` with `d != inf`, ascending in `j`. Both
/// sides of a row-iteration equivalence check can be normalized through
/// this — the reference side reads cell by cell, the store side collects
/// its iterator — and then compared as plain vectors.
pub fn finite_row(
    n: usize,
    i: u32,
    inf: u8,
    get: impl Fn(u32, u32) -> u8,
) -> Vec<(u32, u8)> {
    (0..n as u32)
        .filter(|&j| j != i)
        .filter_map(|j| {
            let d = get(i, j);
            (d != inf).then_some((j, d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: u8 = u8::MAX;

    #[test]
    fn identical_sources_have_no_mismatch() {
        let cells = |i: u32, j: u32| (i + j) as u8;
        assert_eq!(first_cell_mismatch(5, cells, cells), None);
        assert!(cells_match(5, cells, cells, "self").is_ok());
    }

    #[test]
    fn first_mismatch_is_row_major() {
        let left = |i: u32, j: u32| (i * 4 + j) as u8;
        let right = |i: u32, j: u32| if (i, j) >= (1, 2) { 0 } else { left(i, j) };
        let m = first_cell_mismatch(4, left, right).unwrap();
        assert_eq!((m.i, m.j), (1, 2), "must report the row-major-first cell");
        assert_eq!(m.left, 6);
        assert_eq!(m.right, 0);
        let err = cells_match(4, left, right, "ctx").unwrap_err();
        assert!(err.contains("(1, 2)") && err.contains("ctx"), "{err}");
    }

    #[test]
    fn asymmetric_sources_are_caught() {
        let left = |_: u32, _: u32| 1;
        let right = |i: u32, j: u32| if i > j { 2 } else { 1 };
        assert!(first_cell_mismatch(3, left, right).is_some());
    }

    #[test]
    fn finite_row_skips_diagonal_and_inf() {
        let get = |i: u32, j: u32| match (i, j) {
            (1, 0) => 2,
            (1, 3) => INF,
            (1, 4) => 1,
            _ => INF,
        };
        assert_eq!(finite_row(5, 1, INF, get), vec![(0, 2), (4, 1)]);
        assert_eq!(finite_row(5, 2, INF, get), vec![]);
    }
}
