//! A vendored minimal HTTP/1.1 layer — hand-rolled in the same spirit as
//! the workspace's other registry-free stand-ins (`rand`, `proptest`,
//! `criterion`): exactly the subset the `lopacityd` daemon needs, nothing
//! more.
//!
//! Supported: request-line + header parsing from any [`BufRead`],
//! `Content-Length` bodies, query-string splitting, HTTP/1.1 keep-alive
//! (requests carry [`Request::keep_alive`]; responses answer
//! `Connection: keep-alive` when [`Response::keep_alive`] opts in, and
//! `Connection: close` otherwise), a response writer, and a client-side
//! response parser ([`ClientResponse`]) for the `lopacity-client` crate.
//! Not supported, by design: chunked transfer encoding, multipart bodies,
//! TLS, HTTP/2, pipelining.
//!
//! The parser is defensive rather than strict: it enforces the request
//! shape it understands (reasonable line/header/body limits, a valid
//! `Content-Length`) and rejects everything else with a typed
//! [`HttpError`], which the server maps to a `400`.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on one request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a request body (graph uploads are edge lists; 64 MiB is
/// ~4M `u32 u32` lines, far past anything the daemon serves in tests).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed before a full request arrived.
    ConnectionClosed,
    /// A line exceeded the per-line byte cap or the header count
    /// exceeded the header cap.
    TooLarge(&'static str),
    /// The request line or a header was syntactically malformed.
    Malformed(&'static str),
    /// Transport failure.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed mid-request"),
            HttpError::TooLarge(what) => write!(f, "request too large: {what}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

/// One parsed HTTP/1.x request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Path component of the target, before any `?`.
    pub path: String,
    /// Raw query string (after `?`, empty when absent).
    pub query: String,
    /// Headers, keys lowercased; later duplicates overwrite earlier ones.
    pub headers: HashMap<String, String>,
    /// The body, sized by `Content-Length` (empty when the header is
    /// absent or `0`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to yes unless `Connection: close`; HTTP/1.0 requires an
    /// explicit `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// Parses one request from `reader` with the default [`MAX_BODY`] cap
    /// (blocking until the body is complete). Returns
    /// [`HttpError::ConnectionClosed`] on a clean EOF before the first
    /// byte — the normal end of a connection.
    pub fn parse<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
        Request::parse_with_limits(reader, MAX_BODY)
    }

    /// [`Request::parse`] with a caller-chosen body cap (never above
    /// [`MAX_BODY`]) — the daemon wires its `--max-body` flag through
    /// here. A declared `Content-Length` beyond the cap is rejected
    /// *before* any body byte is read or allocated, and the body buffer
    /// grows incrementally with the bytes actually received, so a client
    /// declaring a huge length and stalling never costs the declared
    /// allocation.
    pub fn parse_with_limits<R: BufRead>(
        reader: &mut R,
        max_body: usize,
    ) -> Result<Request, HttpError> {
        let max_body = max_body.min(MAX_BODY);
        let line = read_line(reader)?;
        if line.is_empty() {
            return Err(HttpError::ConnectionClosed);
        }
        let mut parts = line.split(' ').filter(|p| !p.is_empty());
        let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?;
        let target = parts.next().ok_or(HttpError::Malformed("missing request target"))?;
        let version = parts.next().ok_or(HttpError::Malformed("missing HTTP version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        if parts.next().is_some() {
            return Err(HttpError::Malformed("trailing tokens in request line"));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers = HashMap::new();
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break; // blank line: end of headers
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::TooLarge("header count"));
            }
            let (name, value) =
                line.split_once(':').ok_or(HttpError::Malformed("header without ':'"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::Malformed("invalid header name"));
            }
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }

        let length = match headers.get("content-length") {
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| HttpError::Malformed("invalid Content-Length"))?,
            None => 0,
        };
        if length > max_body as u64 {
            return Err(HttpError::TooLarge("body"));
        }
        let body = read_body(reader, length as usize)?;

        let keep_alive = {
            let connection =
                headers.get("connection").map(|v| v.to_ascii_lowercase()).unwrap_or_default();
            match version {
                "HTTP/1.0" => connection == "keep-alive",
                _ => connection != "close",
            }
        };

        Ok(Request { method: method.to_string(), path, query, headers, body, keep_alive })
    }

    /// The body as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Case-insensitive header lookup (keys are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Looks up a `key=value` pair in the query string (first match;
    /// no percent-decoding — the daemon's parameters are alphanumeric).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| match pair.split_once('=') {
            Some((k, v)) if k == key => Some(v),
            None if pair == key => Some(""),
            _ => None,
        })
    }
}

/// Arms per-connection read/write deadlines on a socket — the slowloris
/// defense. A client that opens a connection and stalls (never sends a
/// full request, or never drains the response) hits the deadline and the
/// blocked `read`/`write` returns `WouldBlock`/`TimedOut`, which
/// [`Request::parse`] surfaces as [`HttpError::Io`] so the handler thread
/// is reclaimed instead of pinned forever. `None` leaves a direction
/// unbounded (blocking), matching `TcpStream::set_read_timeout`.
pub fn set_stream_deadlines(
    stream: &TcpStream,
    read: Option<Duration>,
    write: Option<Duration>,
) -> io::Result<()> {
    stream.set_read_timeout(read)?;
    stream.set_write_timeout(write)
}

/// Reads exactly `length` body bytes, growing the buffer with the bytes
/// actually received (chunked `read`s) instead of allocating the declared
/// length up front — a stalling or lying peer costs at most one chunk.
fn read_body<R: BufRead>(reader: &mut R, length: usize) -> Result<Vec<u8>, HttpError> {
    const CHUNK: usize = 64 * 1024;
    let mut body = Vec::with_capacity(length.min(CHUNK));
    let mut chunk = [0u8; CHUNK];
    while body.len() < length {
        let want = (length - body.len()).min(CHUNK);
        match reader.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::ConnectionClosed),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    Ok(body)
}

/// Reads one CRLF- (or bare-LF-) terminated line, without its terminator.
/// An EOF before any byte yields an empty string (mapped to
/// [`HttpError::ConnectionClosed`] by the request-line caller, and to
/// end-of-headers nowhere — a blank line is `"\r\n"`, two bytes).
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(HttpError::TooLarge("line"));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-UTF-8 line"))
}

/// An HTTP/1.1 response under construction.
#[derive(Debug)]
pub struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    /// Extra `name: value` headers (e.g. `Retry-After` on a load-shedding
    /// `503`), written after the built-in ones.
    extra_headers: Vec<(String, String)>,
    body: Vec<u8>,
    /// Whether to answer `Connection: keep-alive` instead of `close`.
    keep_alive: bool,
}

impl Response {
    /// A response with the given status code and canned reason phrase.
    pub fn new(status: u16) -> Response {
        let reason = match status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: Vec::new(),
            keep_alive: false,
        }
    }

    /// `200 OK` with a plain-text body.
    pub fn ok(body: impl Into<String>) -> Response {
        Response::new(200).text(body)
    }

    /// Sets a plain-text body.
    pub fn text(mut self, body: impl Into<String>) -> Response {
        self.body = body.into().into_bytes();
        self
    }

    /// Overrides the content type (e.g. a metrics exposition format).
    pub fn content_type(mut self, ct: &'static str) -> Response {
        self.content_type = ct;
        self
    }

    /// Appends an extra response header (e.g. `Retry-After`).
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Opts this response into `Connection: keep-alive` (the server's
    /// connection loop sets it when the request asked to stay open and
    /// the daemon is not draining).
    pub fn keep_alive(mut self, keep_alive: bool) -> Response {
        self.keep_alive = keep_alive;
        self
    }

    /// Whether this response will answer `Connection: keep-alive`.
    pub fn keeps_alive(&self) -> bool {
        self.keep_alive
    }

    /// The status code this response will send.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serializes the response (`Connection: close` unless
    /// [`Response::keep_alive`] opted in).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            if self.keep_alive { "keep-alive" } else { "close" }
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// One parsed HTTP/1.x *response*, as read by a client (`lopacity-client`
/// and the `lopacify submit` wrapper). Mirrors [`Request::parse`]'s
/// defensive posture: the same line/header/body caps apply, so a hostile
/// or corrupted server cannot drive the client into unbounded allocation
/// either.
#[derive(Debug)]
pub struct ClientResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Headers, keys lowercased; later duplicates overwrite earlier ones.
    pub headers: HashMap<String, String>,
    /// The body, sized by `Content-Length`.
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open after this
    /// exchange (`Connection: keep-alive`, or HTTP/1.1 without `close`).
    pub keep_alive: bool,
}

impl ClientResponse {
    /// Parses one response from `reader` (blocking until the body is
    /// complete).
    pub fn parse<R: BufRead>(reader: &mut R) -> Result<ClientResponse, HttpError> {
        let line = read_line(reader)?;
        if line.is_empty() {
            return Err(HttpError::ConnectionClosed);
        }
        let mut parts = line.splitn(3, ' ');
        let version = parts.next().ok_or(HttpError::Malformed("empty status line"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed("unsupported HTTP version"));
        }
        let status = parts
            .next()
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or(HttpError::Malformed("invalid status code"))?;

        let mut headers = HashMap::new();
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::TooLarge("header count"));
            }
            let (name, value) =
                line.split_once(':').ok_or(HttpError::Malformed("header without ':'"))?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::Malformed("invalid header name"));
            }
            headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
        }

        let length = match headers.get("content-length") {
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| HttpError::Malformed("invalid Content-Length"))?,
            None => 0,
        };
        if length > MAX_BODY as u64 {
            return Err(HttpError::TooLarge("body"));
        }
        let body = read_body(reader, length as usize)?;

        let keep_alive = {
            let connection =
                headers.get("connection").map(|v| v.to_ascii_lowercase()).unwrap_or_default();
            match version {
                "HTTP/1.0" => connection == "keep-alive",
                _ => connection != "close",
            }
        };

        Ok(ClientResponse { status, headers, body, keep_alive })
    }

    /// The body as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        Request::parse(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse("GET /jobs/7/progress?since=12&full HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/7/progress");
        assert_eq!(req.query, "since=12&full");
        assert_eq!(req.query_param("since"), Some("12"));
        assert_eq!(req.query_param("full"), Some(""));
        assert_eq!(req.query_param("absent"), None);
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse("POST /jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello\nworld").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_str(), Some("hello\nworld"));
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse("GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn clean_eof_is_connection_closed() {
        assert_eq!(parse("").unwrap_err(), HttpError::ConnectionClosed);
    }

    #[test]
    fn truncated_body_is_connection_closed() {
        let err = parse("POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert_eq!(err, HttpError::ConnectionClosed);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(parse("GET /x\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET /x SMTP/1.0\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET /x HTTP/1.1 junk\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: lots\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_lines_are_rejected() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 1));
        assert!(matches!(parse(&long), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn header_keys_are_lowercased_and_last_wins() {
        let req =
            parse("GET / HTTP/1.1\r\nX-Tag: a\r\nx-tag: b\r\n\r\n").unwrap();
        assert_eq!(req.headers.get("x-tag").map(String::as_str), Some("b"));
    }

    /// The slowloris satellite: a client that connects and then stalls
    /// must not pin the reading thread forever. With a read deadline
    /// armed, `Request::parse` errors out within the timeout instead of
    /// blocking on the half-open connection.
    #[test]
    fn stalled_clients_hit_the_read_deadline() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The stalling client: connects, sends half a request line, and
        // goes silent (kept alive until the end of the test).
        let client = TcpStream::connect(addr).unwrap();
        {
            let mut c = &client;
            c.write_all(b"GET /never").unwrap();
        }
        let (server_side, _) = listener.accept().unwrap();
        set_stream_deadlines(
            &server_side,
            Some(Duration::from_millis(80)),
            Some(Duration::from_millis(80)),
        )
        .unwrap();
        let started = std::time::Instant::now();
        let err = Request::parse(&mut BufReader::new(&server_side)).unwrap_err();
        assert!(matches!(err, HttpError::Io(_)), "stall must surface as an I/O error: {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "read deadline must reclaim the thread promptly, took {:?}",
            started.elapsed()
        );
        drop(client);
    }

    #[test]
    fn keep_alive_negotiation_follows_http_11_defaults() {
        assert!(parse("GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive);
    }

    #[test]
    fn keep_alive_responses_say_so() {
        let mut out = Vec::new();
        Response::ok("x").keep_alive(true).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("Connection: close"), "{text}");
    }

    #[test]
    fn body_cap_rejects_declared_length_before_reading() {
        // Content-Length past the cap must fail as TooLarge without
        // waiting for (or allocating) the declared bytes.
        let raw = format!("POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        assert_eq!(parse(&raw).unwrap_err(), HttpError::TooLarge("body"));
        let raw = "POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nbody";
        let err = Request::parse_with_limits(&mut BufReader::new(raw.as_bytes()), 10).unwrap_err();
        assert_eq!(err, HttpError::TooLarge("body"));
        // At or under the cap, the body parses as before.
        let raw = "POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let req = Request::parse_with_limits(&mut BufReader::new(raw.as_bytes()), 10).unwrap();
        assert_eq!(req.body_str(), Some("body"));
    }

    #[test]
    fn client_response_round_trips_a_server_response() {
        let mut wire = Vec::new();
        Response::new(429)
            .header("Retry-After", "3")
            .text("queue full\n")
            .keep_alive(true)
            .write_to(&mut wire)
            .unwrap();
        let resp = ClientResponse::parse(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("3"));
        assert_eq!(resp.body_str(), Some("queue full\n"));
        assert!(resp.keep_alive);

        let mut wire = Vec::new();
        Response::ok("done").write_to(&mut wire).unwrap();
        let resp = ClientResponse::parse(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(resp.status, 200);
        assert!(!resp.keep_alive);
    }

    #[test]
    fn client_response_rejects_garbage() {
        let p = |raw: &str| ClientResponse::parse(&mut BufReader::new(raw.as_bytes()));
        assert_eq!(p("").unwrap_err(), HttpError::ConnectionClosed);
        assert!(matches!(p("ICY 200 OK\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(p("HTTP/1.1 abc OK\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            p("HTTP/1.1 200 OK\r\nContent-Length: 99999999999999999999\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        Response::new(503)
            .header("Retry-After", "2")
            .text("shed\n")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nRetry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nshed\n"), "{text}");
    }

    #[test]
    fn responses_serialize_with_connection_close() {
        let mut out = Vec::new();
        Response::ok("body\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nbody\n"));

        let mut out = Vec::new();
        Response::new(429).text("queue full").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
    }
}
