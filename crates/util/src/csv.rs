//! Minimal CSV writing.
//!
//! The reproduction harness emits one CSV file per table/figure. The format
//! is deliberately simple: comma-separated, `"`-quoted only when a field
//! contains a comma, quote or newline, with `""` escaping. Output is buffered.

use std::fmt::Display;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Buffered CSV writer over any [`Write`] sink.
pub struct CsvWriter<W: Write> {
    sink: W,
    columns: usize,
}

impl CsvWriter<BufWriter<File>> {
    /// Creates the file at `path` (truncating), writes the header row, and
    /// returns a writer that enforces the header's column count.
    ///
    /// Parent directories are created if missing.
    pub fn create<P: AsRef<Path>>(path: P, header: &[&str]) -> io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = BufWriter::new(File::create(path)?);
        let mut w = CsvWriter { sink: file, columns: header.len() };
        w.write_row(header)?;
        Ok(w)
    }
}

impl<W: Write> CsvWriter<W> {
    /// Wraps an arbitrary sink. The column count is locked in by the first
    /// row written.
    pub fn from_writer(sink: W) -> Self {
        CsvWriter { sink, columns: 0 }
    }

    /// Writes one row of string-like fields.
    ///
    /// # Errors
    /// Returns [`io::ErrorKind::InvalidInput`] when the row width differs
    /// from previously written rows, or any underlying I/O error.
    pub fn write_row<S: AsRef<str>>(&mut self, fields: &[S]) -> io::Result<()> {
        if self.columns == 0 {
            self.columns = fields.len();
        } else if fields.len() != self.columns {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("csv row has {} fields, expected {}", fields.len(), self.columns),
            ));
        }
        for (i, f) in fields.iter().enumerate() {
            if i > 0 {
                self.sink.write_all(b",")?;
            }
            write_field(&mut self.sink, f.as_ref())?;
        }
        self.sink.write_all(b"\n")
    }

    /// Convenience: formats every value with [`Display`] and writes the row.
    pub fn write_record<D: Display>(&mut self, fields: &[D]) -> io::Result<()> {
        let strings: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        self.write_row(&strings)
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

fn write_field<W: Write>(sink: &mut W, field: &str) -> io::Result<()> {
    if !field.contains([',', '"', '\n', '\r']) {
        return sink.write_all(field.as_bytes());
    }
    // Quoted fields are rare in our output; building them in memory keeps the
    // streaming path branch-free.
    let mut buf = String::with_capacity(field.len() + 2);
    buf.push('"');
    for ch in field.chars() {
        if ch == '"' {
            buf.push('"');
        }
        buf.push(ch);
    }
    buf.push('"');
    sink.write_all(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(rows: &[Vec<&str>]) -> String {
        let mut out = Vec::new();
        {
            let mut w = CsvWriter::from_writer(&mut out);
            for row in rows {
                w.write_row(row).unwrap();
            }
            w.flush().unwrap();
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn plain_rows() {
        let got = render(&[vec!["a", "b"], vec!["1", "2"]]);
        assert_eq!(got, "a,b\n1,2\n");
    }

    #[test]
    fn quotes_fields_with_commas_and_quotes() {
        let got = render(&[vec!["a,b", "say \"hi\"", "plain"]]);
        assert_eq!(got, "\"a,b\",\"say \"\"hi\"\"\",plain\n");
    }

    #[test]
    fn quotes_fields_with_newlines() {
        let got = render(&[vec!["line1\nline2"]]);
        assert_eq!(got, "\"line1\nline2\"\n");
    }

    #[test]
    fn rejects_ragged_rows() {
        let mut out = Vec::new();
        let mut w = CsvWriter::from_writer(&mut out);
        w.write_row(&["a", "b"]).unwrap();
        let err = w.write_row(&["only-one"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn write_record_formats_numbers() {
        let mut out = Vec::new();
        let mut w = CsvWriter::from_writer(&mut out);
        w.write_record(&[1.5_f64, 2.0, 3.25]).unwrap();
        w.flush().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "1.5,2,3.25\n");
    }

    #[test]
    fn create_writes_header_and_rows() {
        let dir = std::env::temp_dir().join("lopacity-util-csv-test");
        let path = dir.join("t.csv");
        let mut w = CsvWriter::create(&path, &["x", "y"]).unwrap();
        w.write_record(&[1, 2]).unwrap();
        w.flush().unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
