//! Shared utilities for the `lopacity` workspace.
//!
//! This crate deliberately has no external dependencies. It provides the
//! small amounts of infrastructure the benchmark harness and CLI need:
//!
//! * [`csv`] — a minimal CSV writer (quoting, buffered output) used by the
//!   reproduction harness to persist experiment series.
//! * [`args`] — a tiny `--flag value` command-line parser, so the binaries do
//!   not need an argument-parsing dependency.
//! * [`pool`] — a scoped-thread work pool with deterministic sharding (the
//!   parallel candidate scan in the core heuristics builds on it) and the
//!   [`Parallelism`] knob the binaries expose.
//! * [`timer`] — wall-clock stopwatch helpers for runtime experiments.
//! * [`table`] — fixed-width ASCII table rendering for paper-style output.
//! * [`testkit`] — closure-generic distance-cell comparators shared by the
//!   workspace's equivalence test suites (store backends, evaluator,
//!   churn replay).
//! * [`http`] — a vendored minimal HTTP/1.1 request parser and response
//!   writer (no TLS, no chunked encoding), the transport under the
//!   `lopacityd` daemon.
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]):
//!   named sites, per-site hit counting, reproducible chaos plans for the
//!   daemon's crash-recovery tests.

pub mod args;
pub mod csv;
pub mod fault;
pub mod http;
pub mod pool;
pub mod table;
pub mod testkit;
pub mod timer;

pub use args::Args;
pub use csv::CsvWriter;
pub use fault::{FaultAction, FaultPlan};
pub use pool::Parallelism;
pub use table::Table;
pub use timer::Stopwatch;
