//! A hand-rolled scoped-thread work pool.
//!
//! The build environment has no crate registry, so rayon-style work
//! stealing is not available; the greedy heuristics' candidate scan is
//! instead sharded statically over [`std::thread::scope`]. Static contiguous
//! sharding is the right fit for that workload: every worker pays a fixed
//! setup cost (cloning the incremental evaluator) and per-candidate costs
//! are near-uniform, so the classic stealing advantage does not apply while
//! the shard boundaries stay deterministic — which the caller relies on to
//! merge per-shard results into a result provably identical to a sequential
//! scan.
//!
//! [`Parallelism`] is the user-facing knob, threaded from the `lopacify`
//! command line down to the scan loop.

/// How many worker threads a parallelizable scan may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use [`std::thread::available_parallelism`] workers, and let the
    /// caller fall back to a sequential scan when the input is too small to
    /// amortize per-worker setup.
    #[default]
    Auto,
    /// Exactly this many workers (`>= 1`), even on inputs where a
    /// sequential scan would be faster — the equivalence test suite uses
    /// this to force multi-threaded paths on tiny graphs.
    Fixed(usize),
    /// Sequential: never spawn, never shard.
    Off,
}

impl Parallelism {
    /// The worker count this setting resolves to on the current machine.
    /// Always `>= 1`; [`Parallelism::Off`] resolves to 1.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Off => 1,
        }
    }

    /// Whether the caller may skip sharding on small inputs. `Fixed` means
    /// "shard no matter what" (the test suites rely on that to exercise the
    /// parallel path on small graphs); `Auto` lets heuristics pick.
    pub fn is_adaptive(self) -> bool {
        matches!(self, Parallelism::Auto)
    }
}

impl std::str::FromStr for Parallelism {
    type Err = String;

    /// Parses `auto`, `off`, or a positive worker count.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            "off" | "seq" | "sequential" => Ok(Parallelism::Off),
            n => match n.parse::<usize>() {
                Ok(0) | Err(_) => {
                    Err(format!("parallelism must be `auto`, `off`, or a count >= 1, got {s:?}"))
                }
                Ok(n) => Ok(Parallelism::Fixed(n)),
            },
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
            Parallelism::Off => write!(f, "off"),
        }
    }
}

/// Splits `items` into at most `workers` contiguous shards, runs `work` on
/// each shard concurrently, and returns the per-shard results **in shard
/// order** (ascending by offset).
///
/// `work` receives `(offset, shard)` where `offset` is the index of
/// `shard[0]` within `items` — shard-local loops recover each item's global
/// index as `offset + k`, which is what keeps sharded scans mergeable into
/// an order-independent argmin. Shard boundaries depend only on
/// `items.len()` and `workers` (never on timing): sizes differ by at most
/// one, larger shards first.
///
/// Empty input returns an empty vector without calling `work`. A single
/// shard (or `workers <= 1`) runs on the calling thread; otherwise shard 0
/// runs on the calling thread while the rest run on scoped threads.
///
/// # Panics
/// A panicking worker is propagated to the caller (after the remaining
/// workers finish) with its original payload.
pub fn run_sharded<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let shards = workers.clamp(1, items.len());
    if shards == 1 {
        return vec![work(0, items)];
    }
    let base = items.len() / shards;
    let extra = items.len() % shards;
    // Shard w covers `base` items, plus one more for the first `extra`.
    let bounds: Vec<(usize, usize)> = (0..shards)
        .scan(0usize, |offset, w| {
            let len = base + usize::from(w < extra);
            let start = *offset;
            *offset += len;
            Some((start, len))
        })
        .collect();

    let mut results: Vec<Option<R>> = Vec::with_capacity(shards);
    results.resize_with(shards, || None);
    let work = &work;
    std::thread::scope(|scope| {
        let (first_slot, rest_slots) = results.split_first_mut().expect("shards >= 2");
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(start, len)| scope.spawn(move || work(start, &items[start..start + len])))
            .collect();
        // Shard 0 runs here: the calling thread is a worker, not a waiter.
        let (start, len) = bounds[0];
        *first_slot = Some(work(start, &items[start..start + len]));
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for (slot, handle) in rest_slots.iter_mut().zip(handles) {
            match handle.join() {
                Ok(r) => *slot = Some(r),
                // Keep joining so every worker finishes before unwinding.
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
    results.into_iter().map(|r| r.expect("every shard joined")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_runs_nothing() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let out: Vec<u64> = run_sharded(&[] as &[u32], 4, |_, _| {
            calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            0
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn one_item_uses_one_inline_shard() {
        let out = run_sharded(&[7u32], 8, |offset, shard| {
            assert_eq!(offset, 0);
            (shard.to_vec(), std::thread::current().id())
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, vec![7]);
        assert_eq!(out[0].1, std::thread::current().id(), "single shard must not spawn");
    }

    #[test]
    fn more_workers_than_items_caps_at_item_count() {
        let items: Vec<u32> = (0..3).collect();
        let out = run_sharded(&items, 16, |offset, shard| (offset, shard.to_vec()));
        assert_eq!(out, vec![(0, vec![0]), (1, vec![1]), (2, vec![2])]);
    }

    #[test]
    fn shards_are_contiguous_in_order_and_cover_everything() {
        for len in 1..40usize {
            for workers in 1..10usize {
                let items: Vec<usize> = (0..len).collect();
                let out = run_sharded(&items, workers, |offset, shard| (offset, shard.to_vec()));
                assert!(out.len() <= workers && !out.is_empty());
                let flat: Vec<usize> = out
                    .iter()
                    .flat_map(|(offset, shard)| {
                        // Offsets really are each shard's global base index.
                        assert_eq!(shard[0], *offset);
                        shard.clone()
                    })
                    .collect();
                assert_eq!(flat, items, "len={len} workers={workers}");
                let sizes: Vec<usize> = out.iter().map(|(_, s)| s.len()).collect();
                let (min, max) =
                    (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced shards {sizes:?}");
            }
        }
    }

    #[test]
    fn workers_zero_is_treated_as_sequential() {
        let items = [1u32, 2, 3];
        let out = run_sharded(&items, 0, |_, shard| shard.iter().sum::<u32>());
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        let items: Vec<u32> = (0..8).collect();
        let ids = run_sharded(&items, 4, |_, _| std::thread::current().id());
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 1, "expected more than one worker thread");
    }

    #[test]
    fn panicking_worker_propagates_payload() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            run_sharded(&items, 4, |offset, _| {
                if offset >= 4 {
                    panic!("shard {offset} exploded");
                }
                offset
            })
        });
        let payload = result.expect_err("worker panic must propagate");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("exploded"), "unexpected payload {message:?}");
    }

    #[test]
    fn parallelism_parses_and_resolves() {
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("off".parse::<Parallelism>().unwrap(), Parallelism::Off);
        assert_eq!("6".parse::<Parallelism>().unwrap(), Parallelism::Fixed(6));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
        assert_eq!(Parallelism::Off.workers(), 1);
        assert_eq!(Parallelism::Fixed(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::Fixed(4).to_string(), "4");
    }
}
