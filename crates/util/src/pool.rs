//! A hand-rolled scoped-thread work pool.
//!
//! The build environment has no crate registry, so rayon-style work
//! stealing is not available; the greedy heuristics' candidate scan is
//! instead sharded statically over [`std::thread::scope`]. Static contiguous
//! sharding is the right fit for that workload: every worker pays a fixed
//! setup cost (cloning the incremental evaluator) and per-candidate costs
//! are near-uniform, so the classic stealing advantage does not apply while
//! the shard boundaries stay deterministic — which the caller relies on to
//! merge per-shard results into a result provably identical to a sequential
//! scan.
//!
//! [`Parallelism`] is the user-facing knob, threaded from the `lopacify`
//! command line down to the scan loop.

/// How many worker threads a parallelizable scan may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use [`std::thread::available_parallelism`] workers, and let the
    /// caller fall back to a sequential scan when the input is too small to
    /// amortize per-worker setup.
    #[default]
    Auto,
    /// Exactly this many workers (`>= 1`), even on inputs where a
    /// sequential scan would be faster — the equivalence test suite uses
    /// this to force multi-threaded paths on tiny graphs.
    Fixed(usize),
    /// Sequential: never spawn, never shard.
    Off,
}

impl Parallelism {
    /// The worker count this setting resolves to on the current machine.
    /// Always `>= 1`; [`Parallelism::Off`] resolves to 1.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Off => 1,
        }
    }

    /// Whether the caller may skip sharding on small inputs. `Fixed` means
    /// "shard no matter what" (the test suites rely on that to exercise the
    /// parallel path on small graphs); `Auto` lets heuristics pick.
    pub fn is_adaptive(self) -> bool {
        matches!(self, Parallelism::Auto)
    }

    /// Resolves the worker count for a workload of `n` independent items:
    /// [`Parallelism::Auto`] below `auto_floor` items falls back to 1 (the
    /// caller's measured break-even point for its per-worker overhead);
    /// otherwise the machine worker count, capped at `n` so no worker goes
    /// idle. `Fixed` ignores the floor — the equivalence suites rely on
    /// that to force sharding on tiny inputs.
    pub fn resolve(self, n: usize, auto_floor: usize) -> usize {
        if self.is_adaptive() && n < auto_floor {
            return 1;
        }
        self.workers().min(n.max(1))
    }
}

impl std::str::FromStr for Parallelism {
    type Err = String;

    /// Parses `auto`, `off`, or a positive worker count.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            "off" | "seq" | "sequential" => Ok(Parallelism::Off),
            n => match n.parse::<usize>() {
                Ok(0) | Err(_) => {
                    Err(format!("parallelism must be `auto`, `off`, or a count >= 1, got {s:?}"))
                }
                Ok(n) => Ok(Parallelism::Fixed(n)),
            },
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
            Parallelism::Off => write!(f, "off"),
        }
    }
}

/// Splits `items` into at most `workers` contiguous shards, runs `work` on
/// each shard concurrently, and returns the per-shard results **in shard
/// order** (ascending by offset).
///
/// `work` receives `(offset, shard)` where `offset` is the index of
/// `shard[0]` within `items` — shard-local loops recover each item's global
/// index as `offset + k`, which is what keeps sharded scans mergeable into
/// an order-independent argmin. Shard boundaries depend only on
/// `items.len()` and `workers` (never on timing): sizes differ by at most
/// one, larger shards first.
///
/// Empty input returns an empty vector without calling `work`. A single
/// shard (or `workers <= 1`) runs on the calling thread; otherwise shard 0
/// runs on the calling thread while the rest run on scoped threads.
///
/// # Panics
/// A panicking worker is propagated to the caller (after the remaining
/// workers finish) with its original payload.
pub fn run_sharded<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    // One unit state per shard: the stateless scan is the stateful one
    // with nothing to carry, so the shard-bounds arithmetic and the
    // spawn/join/panic machinery live in exactly one place.
    let mut states = vec![(); workers.clamp(1, items.len().max(1))];
    run_sharded_with(items, &mut states, |offset, shard, _unit| work(offset, shard))
}

/// Like [`run_sharded`], but each shard additionally borrows a dedicated
/// **worker state** for the duration of its scan: shard `w` receives
/// `&mut states[w]`. This is the zero-copy variant the greedy candidate
/// scan runs on — the states are long-lived evaluator forks owned by the
/// caller, so sharding a scan costs thread spawns only, never the
/// `O(|V|²)` clone a fresh fork would.
///
/// Sharding is identical to [`run_sharded`] with `workers = states.len()`:
/// contiguous shards in offset order, sizes differing by at most one,
/// larger shards first, shard 0 (with `states[0]`) on the calling thread.
/// When `items.len() < states.len()`, only the first `items.len()` states
/// are borrowed; the rest are untouched. Empty `items` returns an empty
/// vector without touching any state.
///
/// # Panics
/// Panics when `states` is empty and `items` is not (there is nothing to
/// run the work on). Worker panics propagate like [`run_sharded`]'s.
pub fn run_sharded_with<T, W, R, F>(items: &[T], states: &mut [W], work: F) -> Vec<R>
where
    T: Sync,
    W: Send,
    R: Send,
    F: Fn(usize, &[T], &mut W) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    assert!(!states.is_empty(), "run_sharded_with needs at least one worker state");
    let shards = states.len().min(items.len());
    if shards == 1 {
        return vec![work(0, items, &mut states[0])];
    }
    let base = items.len() / shards;
    let extra = items.len() % shards;
    let bounds: Vec<(usize, usize)> = (0..shards)
        .scan(0usize, |offset, w| {
            let len = base + usize::from(w < extra);
            let start = *offset;
            *offset += len;
            Some((start, len))
        })
        .collect();

    let mut results: Vec<Option<R>> = Vec::with_capacity(shards);
    results.resize_with(shards, || None);
    let work = &work;
    std::thread::scope(|scope| {
        let (first_state, rest_states) = states.split_first_mut().expect("states >= 1");
        let (first_slot, rest_slots) = results.split_first_mut().expect("shards >= 2");
        let handles: Vec<_> = bounds[1..]
            .iter()
            .zip(rest_states.iter_mut())
            .map(|(&(start, len), state)| {
                scope.spawn(move || work(start, &items[start..start + len], state))
            })
            .collect();
        // Shard 0 runs here: the calling thread is a worker, not a waiter.
        let (start, len) = bounds[0];
        *first_slot = Some(work(start, &items[start..start + len], first_state));
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for (slot, handle) in rest_slots.iter_mut().zip(handles) {
            match handle.join() {
                Ok(r) => *slot = Some(r),
                // Keep joining so every worker finishes before unwinding.
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
    results.into_iter().map(|r| r.expect("every shard joined")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_runs_nothing() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let out: Vec<u64> = run_sharded(&[] as &[u32], 4, |_, _| {
            calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            0
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn one_item_uses_one_inline_shard() {
        let out = run_sharded(&[7u32], 8, |offset, shard| {
            assert_eq!(offset, 0);
            (shard.to_vec(), std::thread::current().id())
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, vec![7]);
        assert_eq!(out[0].1, std::thread::current().id(), "single shard must not spawn");
    }

    #[test]
    fn more_workers_than_items_caps_at_item_count() {
        let items: Vec<u32> = (0..3).collect();
        let out = run_sharded(&items, 16, |offset, shard| (offset, shard.to_vec()));
        assert_eq!(out, vec![(0, vec![0]), (1, vec![1]), (2, vec![2])]);
    }

    #[test]
    fn shards_are_contiguous_in_order_and_cover_everything() {
        for len in 1..40usize {
            for workers in 1..10usize {
                let items: Vec<usize> = (0..len).collect();
                let out = run_sharded(&items, workers, |offset, shard| (offset, shard.to_vec()));
                assert!(out.len() <= workers && !out.is_empty());
                let flat: Vec<usize> = out
                    .iter()
                    .flat_map(|(offset, shard)| {
                        // Offsets really are each shard's global base index.
                        assert_eq!(shard[0], *offset);
                        shard.clone()
                    })
                    .collect();
                assert_eq!(flat, items, "len={len} workers={workers}");
                let sizes: Vec<usize> = out.iter().map(|(_, s)| s.len()).collect();
                let (min, max) =
                    (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced shards {sizes:?}");
            }
        }
    }

    #[test]
    fn workers_zero_is_treated_as_sequential() {
        let items = [1u32, 2, 3];
        let out = run_sharded(&items, 0, |_, shard| shard.iter().sum::<u32>());
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        let items: Vec<u32> = (0..8).collect();
        let ids = run_sharded(&items, 4, |_, _| std::thread::current().id());
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() > 1, "expected more than one worker thread");
    }

    #[test]
    fn panicking_worker_propagates_payload() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            run_sharded(&items, 4, |offset, _| {
                if offset >= 4 {
                    panic!("shard {offset} exploded");
                }
                offset
            })
        });
        let payload = result.expect_err("worker panic must propagate");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("exploded"), "unexpected payload {message:?}");
    }

    #[test]
    fn stateful_shards_match_stateless_bounds() {
        // run_sharded_with must shard exactly like run_sharded given
        // workers == states.len(): the scan-equivalence contract depends
        // on the boundaries being identical.
        for len in 1..40usize {
            for workers in 1..10usize {
                let items: Vec<usize> = (0..len).collect();
                let stateless = run_sharded(&items, workers, |offset, shard| (offset, shard.len()));
                let mut states = vec![0u64; workers];
                let stateful = run_sharded_with(&items, &mut states, |offset, shard, state| {
                    *state += shard.len() as u64;
                    (offset, shard.len())
                });
                assert_eq!(stateless, stateful, "len={len} workers={workers}");
                // Every item was charged to exactly one state.
                assert_eq!(states.iter().sum::<u64>(), len as u64);
            }
        }
    }

    #[test]
    fn stateful_shard_w_gets_state_w() {
        let items: Vec<u32> = (0..9).collect();
        let mut states: Vec<Vec<u32>> = vec![Vec::new(); 3];
        run_sharded_with(&items, &mut states, |_, shard, state| state.extend_from_slice(shard));
        assert_eq!(states[0], vec![0, 1, 2]);
        assert_eq!(states[1], vec![3, 4, 5]);
        assert_eq!(states[2], vec![6, 7, 8]);
    }

    #[test]
    fn stateful_excess_states_stay_untouched() {
        let items = [10u32, 20];
        let mut states = vec![0u32; 5];
        let out = run_sharded_with(&items, &mut states, |_, shard, state| {
            *state = shard[0];
            shard[0]
        });
        assert_eq!(out, vec![10, 20]);
        assert_eq!(states, vec![10, 20, 0, 0, 0]);
    }

    #[test]
    fn stateful_empty_input_touches_nothing() {
        let mut states = vec![7u32; 3];
        let out: Vec<u32> = run_sharded_with(&[] as &[u32], &mut states, |_, _, s| *s);
        assert!(out.is_empty());
        assert_eq!(states, vec![7, 7, 7]);
        // An empty state slice is fine as long as the input is empty too.
        let out: Vec<u32> = run_sharded_with(&[] as &[u32], &mut [] as &mut [u32], |_, _, s| *s);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker state")]
    fn stateful_rejects_missing_states() {
        run_sharded_with(&[1u32], &mut [] as &mut [u32], |_, _, _| ());
    }

    #[test]
    fn stateful_single_state_runs_inline() {
        let mut states = [std::thread::current().id()];
        let out = run_sharded_with(&[1u32, 2, 3], &mut states, |offset, shard, state| {
            assert_eq!(offset, 0);
            assert_eq!(shard.len(), 3);
            (*state, std::thread::current().id())
        });
        assert_eq!(out[0].0, out[0].1, "single state must not spawn");
    }

    #[test]
    fn stateful_panicking_worker_propagates_payload() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            let mut states = vec![0u8; 4];
            run_sharded_with(&items, &mut states, |offset, _, _| {
                if offset >= 4 {
                    panic!("stateful shard {offset} exploded");
                }
                offset
            })
        });
        let payload = result.expect_err("worker panic must propagate");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("exploded"), "unexpected payload {message:?}");
    }

    #[test]
    fn parallelism_parses_and_resolves() {
        assert_eq!("auto".parse::<Parallelism>().unwrap(), Parallelism::Auto);
        assert_eq!("off".parse::<Parallelism>().unwrap(), Parallelism::Off);
        assert_eq!("6".parse::<Parallelism>().unwrap(), Parallelism::Fixed(6));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
        assert_eq!(Parallelism::Off.workers(), 1);
        assert_eq!(Parallelism::Fixed(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::Fixed(4).to_string(), "4");
    }

    #[test]
    fn resolve_applies_the_auto_floor_and_item_cap() {
        assert_eq!(Parallelism::Off.resolve(10_000, 64), 1);
        assert_eq!(Parallelism::Auto.resolve(63, 64), 1, "Auto below floor is sequential");
        assert!(Parallelism::Auto.resolve(64, 64) >= 1);
        assert_eq!(Parallelism::Fixed(4).resolve(3, 64), 3, "Fixed ignores floor, capped at n");
        assert_eq!(Parallelism::Fixed(4).resolve(0, 64), 1, "empty input still resolves");
        assert_eq!(Parallelism::Fixed(2).resolve(100, 64), 2);
    }
}
