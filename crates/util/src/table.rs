//! Fixed-width ASCII tables for paper-style console output.
//!
//! The reproduction binary prints each regenerated table/figure as a plain
//! text table so the series can be eyeballed against the paper.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// An in-memory table rendered with [`Table::render`].
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    align: Vec<Align>,
}

impl Table {
    /// Creates a table with the given header; all columns right-aligned
    /// except the first.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let mut align = vec![Align::Right; header.len()];
        if let Some(first) = align.first_mut() {
            *first = Align::Left;
        }
        Table { header, rows: Vec::new(), align }
    }

    /// Overrides the alignment of column `idx`.
    pub fn set_align(&mut self, idx: usize, align: Align) {
        if let Some(slot) = self.align.get_mut(idx) {
            *slot = align;
        }
    }

    /// Appends a data row; panics if the width differs from the header.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "table row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        self.render_row(&mut out, &self.header, &widths);
        let total: usize = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            self.render_row(&mut out, row, &widths);
        }
        out
    }

    fn render_row(&self, out: &mut String, row: &[String], widths: &[usize]) {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("   ");
            }
            let pad = widths[i].saturating_sub(cell.chars().count());
            match self.align[i] {
                Align::Left => {
                    out.push_str(cell);
                    if i + 1 != row.len() {
                        out.push_str(&" ".repeat(pad));
                    }
                }
                Align::Right => {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                }
            }
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "count"]);
        t.add_row(vec!["alpha", "1"]);
        t.add_row(vec!["b", "1000"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Counts are right-aligned to the same terminal column.
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("1000"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "table row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only one"]);
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.add_row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
