//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a set of rules of the form *"at the Nth time
//! execution reaches the named site, inject a fault"*. Sites are plain
//! string labels compiled into the code under test (the `lopacityd`
//! daemon's catalog lives in its ARCHITECTURE section: `journal.append`,
//! `journal.fsync`, `worker.panic`, `socket.read`, `socket.write`,
//! `cache.insert`); hit counting is per site and the rules are pure
//! functions of the hit count, so a chaos run is **reproducible**: the
//! same plan against the same deterministic workload fires the same
//! faults at the same points, every time. No randomness is involved —
//! the workspace's determinism contract extends to its failure testing.
//!
//! Plan syntax (comma-separated rules):
//!
//! ```text
//! site:N            fire once, on the Nth hit (1-based)
//! site:N+           fire on every hit from the Nth on
//! site:N:crash      on the Nth hit, abort the process (SIGKILL-grade
//!                   crash simulation for recovery tests)
//! ```
//!
//! An empty plan ([`FaultPlan::none`]) is free: `check` is a single
//! atomic load on the fast path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What an armed rule asks the site to do when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Simulate a transient failure: the site should behave as if the
    /// operation failed (an I/O error, a dropped socket, a panic —
    /// whatever failure the site models).
    Error,
    /// Abort the process immediately (`std::process::abort`), simulating
    /// a hard crash (power loss, OOM-kill). The site calls
    /// [`FaultPlan::abort_now`] so the intent is greppable.
    Crash,
}

#[derive(Debug, Clone)]
struct Rule {
    site: String,
    /// 1-based hit index the rule arms at.
    nth: u64,
    /// `false`: fire exactly once, on hit `nth`. `true`: fire on every
    /// hit `>= nth`.
    repeat: bool,
    action: FaultAction,
}

/// A compiled, shareable fault plan. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
    /// Per-site hit counters (only sites that appear in a rule are
    /// counted; unknown sites never take this lock).
    hits: Mutex<HashMap<String, u64>>,
    /// How many faults have fired so far (all sites, all actions).
    fired: AtomicU64,
    /// Fast-path guard: number of rules (0 = the plan is inert).
    armed: AtomicU64,
}

impl FaultPlan {
    /// The inert plan: every `check` returns `None` at the cost of one
    /// atomic load.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parses a plan from its textual syntax (see the [module
    /// docs](self)). An empty or all-whitespace spec is the inert plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.split(':');
            let site = fields.next().unwrap_or_default().trim();
            if site.is_empty() {
                return Err(format!("fault rule {part:?} has no site name"));
            }
            let raw_nth = fields
                .next()
                .ok_or_else(|| format!("fault rule {part:?} has no hit index (site:N)"))?
                .trim();
            let (raw_nth, repeat) = match raw_nth.strip_suffix('+') {
                Some(prefix) => (prefix, true),
                None => (raw_nth, false),
            };
            let nth: u64 = raw_nth
                .parse()
                .map_err(|_| format!("fault rule {part:?}: {raw_nth:?} is not a hit index"))?;
            if nth == 0 {
                return Err(format!("fault rule {part:?}: hit indices are 1-based"));
            }
            let action = match fields.next().map(str::trim) {
                None | Some("error") => FaultAction::Error,
                Some("crash") => FaultAction::Crash,
                Some(other) => {
                    return Err(format!(
                        "fault rule {part:?}: unknown action {other:?} (error, crash)"
                    ))
                }
            };
            if fields.next().is_some() {
                return Err(format!("fault rule {part:?}: trailing fields"));
            }
            rules.push(Rule { site: site.to_string(), nth, repeat, action });
        }
        let armed = AtomicU64::new(rules.len() as u64);
        Ok(FaultPlan { rules, hits: Mutex::new(HashMap::new()), fired: AtomicU64::new(0), armed })
    }

    /// Whether the plan has any rules at all.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed) > 0
    }

    /// Registers one hit of `site` and returns the action to inject, if
    /// any rule fires on this hit. Sites without rules are not counted.
    pub fn check(&self, site: &str) -> Option<FaultAction> {
        if !self.is_armed() || !self.rules.iter().any(|r| r.site == site) {
            return None;
        }
        let hit = {
            let mut hits = self.hits.lock().expect("fault hit counters");
            let counter = hits.entry(site.to_string()).or_insert(0);
            *counter += 1;
            *counter
        };
        let fired = self
            .rules
            .iter()
            .find(|r| r.site == site && if r.repeat { hit >= r.nth } else { hit == r.nth })
            .map(|r| r.action);
        if fired.is_some() {
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Convenience for I/O sites: returns a synthetic
    /// [`std::io::Error`] when an `Error` rule fires, aborts the process
    /// on a `Crash` rule, and is `Ok(())` otherwise.
    pub fn check_io(&self, site: &str) -> std::io::Result<()> {
        match self.check(site) {
            None => Ok(()),
            Some(FaultAction::Error) => Err(std::io::Error::other(format!(
                "injected fault at {site}"
            ))),
            Some(FaultAction::Crash) => self.abort_now(site),
        }
    }

    /// Hard-crash the process on behalf of a `Crash` rule.
    pub fn abort_now(&self, site: &str) -> ! {
        eprintln!("fault plan: crashing at {site}");
        std::process::abort();
    }

    /// Total faults fired so far (the `lopacityd_faults_injected`
    /// metric).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Distinct sites named by the plan's rules, in rule order (the
    /// chaos sweep uses this to assert coverage).
    pub fn sites(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for rule in &self.rules {
            if !out.contains(&rule.site.as_str()) {
                out.push(&rule.site);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plans_are_inert() {
        let plan = FaultPlan::none();
        assert!(!plan.is_armed());
        assert_eq!(plan.check("journal.append"), None);
        assert_eq!(plan.fired(), 0);
        let parsed = FaultPlan::parse("  ").unwrap();
        assert!(!parsed.is_armed());
    }

    #[test]
    fn one_shot_rules_fire_on_exactly_the_nth_hit() {
        let plan = FaultPlan::parse("journal.append:3").unwrap();
        assert_eq!(plan.check("journal.append"), None);
        assert_eq!(plan.check("journal.append"), None);
        assert_eq!(plan.check("journal.append"), Some(FaultAction::Error));
        assert_eq!(plan.check("journal.append"), None);
        assert_eq!(plan.fired(), 1);
        // Other sites are untouched (and uncounted).
        assert_eq!(plan.check("socket.read"), None);
    }

    #[test]
    fn repeat_rules_fire_from_the_nth_hit_on() {
        let plan = FaultPlan::parse("socket.read:2+").unwrap();
        assert_eq!(plan.check("socket.read"), None);
        assert_eq!(plan.check("socket.read"), Some(FaultAction::Error));
        assert_eq!(plan.check("socket.read"), Some(FaultAction::Error));
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn crash_actions_parse_and_io_errors_synthesize() {
        let plan = FaultPlan::parse("journal.fsync:1:crash, worker.panic:2").unwrap();
        assert_eq!(plan.sites(), vec!["journal.fsync", "worker.panic"]);
        // The crash rule is armed but we must not trigger it in a test;
        // check the error path instead.
        assert!(plan.check_io("worker.panic").is_ok());
        assert!(plan.check_io("worker.panic").is_err());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlan::parse("nosite").is_err());
        assert!(FaultPlan::parse(":3").is_err());
        assert!(FaultPlan::parse("site:0").is_err());
        assert!(FaultPlan::parse("site:abc").is_err());
        assert!(FaultPlan::parse("site:1:explode").is_err());
        assert!(FaultPlan::parse("site:1:error:extra").is_err());
    }

    #[test]
    fn plans_are_deterministic_replicas() {
        let mk = || FaultPlan::parse("a:2,b:1+,a:4").unwrap();
        let (p1, p2) = (mk(), mk());
        let trace = |p: &FaultPlan| -> Vec<Option<FaultAction>> {
            (0..6).flat_map(|_| [p.check("a"), p.check("b")]).collect()
        };
        assert_eq!(trace(&p1), trace(&p2), "same plan + same hits = same faults");
    }
}
