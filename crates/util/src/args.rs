//! A tiny command-line parser.
//!
//! Supports the shapes the workspace binaries need:
//! positional arguments, `--flag` booleans, and `--key value` /
//! `--key=value` options. Unknown flags are collected so callers can reject
//! them with a helpful message.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order plus a key/value map.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an iterator of raw arguments (excluding the program name).
    ///
    /// `--key=value` and `--key value` are equivalent. A `--key` followed by
    /// another `--flag` (or nothing) is recorded as a boolean flag.
    pub fn parse<I, S>(raw: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(stripped) = token.strip_prefix("--") {
                if let Some((key, value)) = stripped.split_once('=') {
                    args.options.insert(key.to_string(), value.to_string());
                } else if iter.peek().map(|next| !next.starts_with("--")).unwrap_or(false) {
                    let value = iter.next().expect("peeked");
                    args.options.insert(stripped.to_string(), value);
                } else {
                    args.flags.push(stripped.to_string());
                }
            } else {
                args.positional.push(token);
            }
        }
        args
    }

    /// Parses the process arguments (skipping `argv[0]`).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Positional argument by index.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }

    /// All positionals in order.
    pub fn positionals(&self) -> &[String] {
        &self.positional
    }

    /// Raw string value of `--key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Value of `--key` parsed into `T`, or `default` when absent.
    ///
    /// # Errors
    /// Returns a message naming the key when the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("invalid value {raw:?} for --{key}")),
        }
    }

    /// Whether a boolean `--flag` was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Keys that were provided but are not in `known` (for error reporting).
    pub fn unknown_keys<'a>(&'a self, known: &[&str]) -> Vec<&'a str> {
        self.options
            .keys()
            .map(String::as_str)
            .chain(self.flags.iter().map(String::as_str))
            .filter(|k| !known.contains(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_options_and_flags() {
        let args = Args::parse(["fig6", "--theta", "0.5", "--seed=42", "--verbose"]);
        assert_eq!(args.positional(0), Some("fig6"));
        assert_eq!(args.get("theta"), Some("0.5"));
        assert_eq!(args.get("seed"), Some("42"));
        assert!(args.has_flag("verbose"));
        assert!(!args.has_flag("quiet"));
    }

    #[test]
    fn get_or_parses_with_default() {
        let args = Args::parse(["--n", "100"]);
        assert_eq!(args.get_or("n", 5_usize).unwrap(), 100);
        assert_eq!(args.get_or("m", 7_usize).unwrap(), 7);
        assert!(args.get_or::<usize>("n", 0).is_ok());
        let bad = Args::parse(["--n", "abc"]);
        assert!(bad.get_or("n", 5_usize).is_err());
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let args = Args::parse(["--fast", "--n", "3"]);
        assert!(args.has_flag("fast"));
        assert_eq!(args.get_or("n", 0_usize).unwrap(), 3);
    }

    #[test]
    fn unknown_keys_reports_unexpected() {
        let args = Args::parse(["--good", "1", "--bad", "2", "--worse"]);
        let unknown = args.unknown_keys(&["good"]);
        assert_eq!(unknown, vec!["bad", "worse"]);
    }
}
