//! The `lopacify` exit-code contract, driven through the real binary:
//!
//! * `0` — success,
//! * `1` — I/O failures (unreadable files) and usage errors,
//! * `2` — input parse errors (malformed edge lists or event streams),
//! * `3` — θ lost: the churn stream ended uncertified after repair.
//!
//! The codes let scripts distinguish "fix your pipeline" (1), "fix your
//! data" (2), and "the privacy goal is unreachable" (3) without scraping
//! stderr.

use std::path::PathBuf;
use std::process::Command;

fn lopacify() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lopacify"))
}

/// A scratch file under the system temp dir, unique per test process.
fn scratch(name: &str, content: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("lopacify-exit-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("write scratch file");
    path
}

fn out_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lopacify-exit-{}-out-{name}", std::process::id()))
}

/// A triangle: certifiable at θ = 1 trivially.
const TRIANGLE: &str = "0 1\n1 2\n0 2\n";

// (No K4-style fixture for the greedy methods: `rem` commits weakly
// improving moves, so it always reaches θ = 0 by emptying the graph. The
// lost-θ test instead repairs with the GADES baseline, which inserts for
// degree anonymity and cannot drive `maxLO` to 0.)

#[test]
fn certified_stream_exits_0() {
    let graph = scratch("ok-graph", TRIANGLE);
    let events = scratch("ok-events", "- 0 1\n+ 0 1\n");
    let status = lopacify()
        .args(["churn", "--l", "1", "--theta", "1.0"])
        .arg("--in")
        .arg(&graph)
        .arg("--events")
        .arg(&events)
        .arg("--out")
        .arg(out_path("ok"))
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn unreadable_graph_exits_1() {
    let events = scratch("noio-events", "+ 0 1\n");
    let status = lopacify()
        .args(["churn", "--l", "1", "--theta", "1.0", "--in", "/nonexistent/graph.txt"])
        .arg("--events")
        .arg(&events)
        .arg("--out")
        .arg(out_path("noio"))
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(1), "missing graph file is an I/O failure");
}

#[test]
fn unreadable_event_stream_exits_1() {
    let graph = scratch("noev-graph", TRIANGLE);
    let status = lopacify()
        .args(["churn", "--l", "1", "--theta", "1.0"])
        .arg("--in")
        .arg(&graph)
        .args(["--events", "/nonexistent/events.txt"])
        .arg("--out")
        .arg(out_path("noev"))
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(1), "missing events file is an I/O failure");
}

#[test]
fn malformed_graph_exits_2() {
    let graph = scratch("badgraph-graph", "0 zebra\n");
    let events = scratch("badgraph-events", "+ 0 1\n");
    let status = lopacify()
        .args(["churn", "--l", "1", "--theta", "1.0"])
        .arg("--in")
        .arg(&graph)
        .arg("--events")
        .arg(&events)
        .arg("--out")
        .arg(out_path("badgraph"))
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(2), "malformed edge list is a parse error");
}

#[test]
fn malformed_event_stream_exits_2() {
    let graph = scratch("badev-graph", TRIANGLE);
    let events = scratch("badev-events", "+ 0 1\nnot an event\n");
    let status = lopacify()
        .args(["churn", "--l", "1", "--theta", "1.0"])
        .arg("--in")
        .arg(&graph)
        .arg("--events")
        .arg(&events)
        .arg("--out")
        .arg(out_path("badev"))
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(2), "malformed event stream is a parse error");
}

#[test]
fn lost_theta_after_repair_exits_3() {
    let graph = scratch("lost-graph", TRIANGLE);
    let events = scratch("lost-events", "# no events\n");
    let status = lopacify()
        .args(["churn", "--l", "1", "--theta", "0.0", "--method", "gades"])
        .arg("--in")
        .arg(&graph)
        .arg("--events")
        .arg(&events)
        .arg("--out")
        .arg(out_path("lost"))
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(3), "uncertified end of stream reports lost θ");
}

#[test]
fn help_lists_the_exit_codes() {
    let output = lopacify().arg("help").output().expect("run lopacify");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stderr);
    assert!(text.contains("exit codes:"), "usage text documents the contract");
    for needle in ["1  I/O failures", "2  input parse errors", "3  theta lost"] {
        assert!(text.contains(needle), "usage text missing {needle:?}");
    }
}

#[test]
fn help_lists_the_rival_models_and_compare() {
    let output = lopacify().arg("help").output().expect("run lopacify");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stderr);
    for needle in ["k-degree", "kl-adjacency", "compare", "--budget"] {
        assert!(text.contains(needle), "usage text missing {needle:?}");
    }
}

/// A five-leaf star: its hub is alone in its degree class, so k-degree
/// repair must insert edges before certifying.
const STAR5: &str = "0 1\n0 2\n0 3\n0 4\n0 5\n";

#[test]
fn k_degree_repair_exits_0() {
    let graph = scratch("kdeg-graph", STAR5);
    let out = out_path("kdeg");
    let status = lopacify()
        .args(["anonymize", "--l", "1", "--theta", "1.0", "--method", "k-degree", "--k", "3"])
        .arg("--in")
        .arg(&graph)
        .arg("--out")
        .arg(&out)
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(0), "a feasible k-degree repair certifies");
    assert!(out.exists(), "the anonymized graph is written");
}

#[test]
fn budget_starved_k_degree_repair_exits_3() {
    let graph = scratch("kdeg3-graph", STAR5);
    let status = lopacify()
        .args([
            "anonymize", "--l", "1", "--theta", "1.0", "--method", "k-degree", "--k", "3",
            "--max-edits", "1",
        ])
        .arg("--in")
        .arg(&graph)
        .arg("--out")
        .arg(out_path("kdeg3"))
        .status()
        .expect("run lopacify");
    assert_eq!(
        status.code(),
        Some(3),
        "one edit cannot reach 3-degree anonymity on the star: the model's \
         certifier (not theta) decides the verdict"
    );
}

#[test]
fn kl_adjacency_repair_exits_0() {
    let graph = scratch("kladj-graph", STAR5);
    let status = lopacify()
        .args(["anonymize", "--l", "1", "--theta", "1.0", "--method", "kl-adjacency", "--k", "2"])
        .arg("--in")
        .arg(&graph)
        .arg("--out")
        .arg(out_path("kladj"))
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(0), "a feasible (2,1)-adjacency repair certifies");
}

#[test]
fn compare_writes_the_report_and_exits_0() {
    let graph = scratch("cmp-graph", STAR5);
    let json = out_path("cmp-json");
    let csv = out_path("cmp-csv");
    let output = lopacify()
        .args(["compare", "--l", "1", "--theta", "0.5", "--k", "2", "--ell", "1"])
        .arg("--in")
        .arg(&graph)
        .arg("--json")
        .arg(&json)
        .arg("--csv")
        .arg(&csv)
        .output()
        .expect("run lopacify");
    assert_eq!(output.status.code(), Some(0), "a comparison is a report, never exit 3");
    let report = std::fs::read_to_string(&json).expect("COMPARE.json written");
    for needle in ["\"l-opacity-rem\"", "\"k-degree\"", "\"kl-adjacency\"", "\"budget\""] {
        assert!(report.contains(needle), "COMPARE.json missing {needle}");
    }
    let table = std::fs::read_to_string(&csv).expect("CSV written");
    assert!(table.starts_with("model,"), "CSV has the fixed header");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("l-opacity-rem-ins"), "summary table on stdout");
}

// ---------------------------------------------------------------------
// Remote submission (`lopacify submit` against an in-process daemon):
// the same contract over the wire — 0 accepted/achieved, 1 transport,
// 2 rejected spec (400 parse or 413 footprint), 3 theta lost.

use lopacity_daemon::{Daemon, DaemonConfig};

fn test_daemon(config: DaemonConfig) -> Daemon {
    Daemon::bind(&DaemonConfig { addr: "127.0.0.1:0".to_string(), workers: 1, ..config })
        .expect("bind daemon on an ephemeral port")
}

#[test]
fn submit_wait_roundtrip_exits_0_and_writes_the_graph() {
    let daemon = test_daemon(DaemonConfig::default());
    let spec = scratch("submit-ok", "mode anonymize\nl 1\ntheta 1.0\ngraph gnm 12 20 3\n");
    let out = out_path("submit-ok");
    let output = lopacify()
        .args(["submit", "--wait", "--ikey", "cli-ok-1"])
        .arg("--addr")
        .arg(daemon.addr().to_string())
        .arg("--spec")
        .arg(&spec)
        .arg("--out")
        .arg(&out)
        .output()
        .expect("run lopacify");
    assert_eq!(output.status.code(), Some(0), "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("id 1"), "job id printed: {stdout}");
    assert!(stdout.contains("achieved true"), "result summary printed: {stdout}");
    let graph = std::fs::read_to_string(&out).expect("graph written");
    assert!(graph.contains("# vertices"), "edge-list header present: {graph}");
    daemon.shutdown();
}

#[test]
fn submit_rejected_spec_exits_2() {
    let daemon = test_daemon(DaemonConfig::default());
    let spec = scratch("submit-bad", "mode anonymize\nl 0\ngraph gnm 5 5 1\n");
    let status = lopacify()
        .args(["submit"])
        .arg("--addr")
        .arg(daemon.addr().to_string())
        .arg("--spec")
        .arg(&spec)
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(2), "a 400 from the daemon is a data error");
    daemon.shutdown();
}

#[test]
fn submit_over_footprint_budget_exits_2() {
    let daemon =
        test_daemon(DaemonConfig { job_mem_budget: Some(64), ..DaemonConfig::default() });
    let spec = scratch("submit-413", "mode anonymize\nl 1\ntheta 1.0\ngraph gnm 100 300 3\n");
    let output = lopacify()
        .args(["submit"])
        .arg("--addr")
        .arg(daemon.addr().to_string())
        .arg("--spec")
        .arg(&spec)
        .output()
        .expect("run lopacify");
    assert_eq!(output.status.code(), Some(2), "a 413 footprint refusal is a data error");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("footprint"), "the estimate reaches the user: {stderr}");
    daemon.shutdown();
}

#[test]
fn submit_unreachable_daemon_exits_1() {
    let spec = scratch("submit-noconn", "mode anonymize\nl 1\ntheta 1.0\ngraph gnm 5 8 1\n");
    // A port from the ephemeral range with nothing listening; zero
    // retries so the failure is immediate.
    let status = lopacify()
        .args(["submit", "--addr", "127.0.0.1:59999", "--retries", "0"])
        .arg("--spec")
        .arg(&spec)
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(1), "transport failure is an I/O error");
}

#[test]
fn submit_wait_with_theta_lost_exits_3() {
    let daemon = test_daemon(DaemonConfig::default());
    // One greedy step cannot reach theta 0 on this graph: the job
    // finishes done with `achieved false` (budget-interrupted).
    let spec = scratch(
        "submit-lost",
        "mode anonymize\nl 2\ntheta 0.0\nseed 11\nmax_steps 1\ngraph gnm 30 60 3\n",
    );
    let status = lopacify()
        .args(["submit", "--wait"])
        .arg("--addr")
        .arg(daemon.addr().to_string())
        .arg("--spec")
        .arg(&spec)
        .status()
        .expect("run lopacify");
    assert_eq!(status.code(), Some(3), "theta lost over the wire is still exit 3");
    daemon.shutdown();
}
