//! End-to-end tests of the `lopacify` binary.

use std::path::PathBuf;
use std::process::Command;

fn lopacify() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lopacify"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lopacify-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = lopacify().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("anonymize"), "usage missing: {text}");
    assert!(text.contains("generate"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = lopacify().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_stats_anonymize_opacity_pipeline() {
    let dir = temp_dir("pipeline");
    let graph_path = dir.join("g.txt");
    let anon_path = dir.join("anon.txt");

    // generate
    let out = lopacify()
        .args(["generate", "--dataset", "gnutella", "--n", "60", "--seed", "7"])
        .args(["--out", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(graph_path.exists());

    // stats
    let out = lopacify()
        .args(["stats", "--in", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("n=60"), "stats output: {text}");

    // anonymize
    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", anon_path.to_str().unwrap()])
        .args(["--l", "1", "--theta", "0.5", "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8_lossy(&out.stderr);
    assert!(report.contains("achieved"), "report: {report}");
    assert!(report.contains("distortion:"));

    // opacity certificate against the original
    let out = lopacify()
        .args(["opacity", "--in", anon_path.to_str().unwrap()])
        .args(["--original", graph_path.to_str().unwrap()])
        .args(["--l", "1", "--theta", "0.5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1-opaque wrt θ = 0.5: YES"), "certificate: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn anonymize_rejects_bad_arguments() {
    let dir = temp_dir("badargs");
    let graph_path = dir.join("g.txt");
    lopacify()
        .args(["generate", "--dataset", "gnutella", "--n", "20"])
        .args(["--out", graph_path.to_str().unwrap()])
        .output()
        .unwrap();

    // θ out of range
    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", dir.join("x.txt").to_str().unwrap()])
        .args(["--theta", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of [0, 1]"));

    // baseline at L > 1
    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", dir.join("x.txt").to_str().unwrap()])
        .args(["--l", "2", "--method", "gades"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("only --l 1"));

    // missing file
    let out = lopacify()
        .args(["stats", "--in", dir.join("nope.txt").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallelism_settings_produce_identical_output() {
    let dir = temp_dir("parallelism");
    let graph_path = dir.join("g.txt");
    let out = lopacify()
        .args(["generate", "--dataset", "gnutella", "--n", "60", "--seed", "7"])
        .args(["--out", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "generate: {}", String::from_utf8_lossy(&out.stderr));
    let mut outputs = Vec::new();
    for setting in ["off", "1", "4", "auto"] {
        let anon_path = dir.join(format!("anon-{setting}.txt"));
        let out = lopacify()
            .args(["anonymize", "--in", graph_path.to_str().unwrap()])
            .args(["--out", anon_path.to_str().unwrap()])
            .args(["--l", "1", "--theta", "0.5", "--seed", "3"])
            .args(["--parallelism", setting])
            .output()
            .unwrap();
        assert!(out.status.success(), "{setting}: {}", String::from_utf8_lossy(&out.stderr));
        outputs.push(std::fs::read(&anon_path).unwrap());
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "anonymized edge lists differ across --parallelism settings"
    );

    // Invalid settings are rejected with a parse error.
    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", dir.join("x.txt").to_str().unwrap()])
        .args(["--parallelism", "warp-speed"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--parallelism"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Every `--store` backend publishes the identical graph (the
/// representation is outside the equivalence contract), and bad values
/// fail with a hint naming the flag.
#[test]
fn store_settings_produce_identical_output() {
    let dir = temp_dir("store");
    let graph_path = dir.join("g.txt");
    let out = lopacify()
        .args(["generate", "--dataset", "gnutella", "--n", "60", "--seed", "7"])
        .args(["--out", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "generate: {}", String::from_utf8_lossy(&out.stderr));
    let mut outputs = Vec::new();
    for setting in ["auto", "dense", "sparse"] {
        let anon_path = dir.join(format!("anon-{setting}.txt"));
        let out = lopacify()
            .args(["anonymize", "--in", graph_path.to_str().unwrap()])
            .args(["--out", anon_path.to_str().unwrap()])
            .args(["--l", "2", "--theta", "0.5", "--seed", "3"])
            .args(["--store", setting])
            .output()
            .unwrap();
        assert!(out.status.success(), "{setting}: {}", String::from_utf8_lossy(&out.stderr));
        outputs.push(std::fs::read(&anon_path).unwrap());
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "anonymized edge lists differ across --store settings"
    );

    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", dir.join("x.txt").to_str().unwrap()])
        .args(["--store", "ram"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn theta_sweep_emits_one_row_per_theta_and_matches_single_run() {
    let dir = temp_dir("sweep");
    let graph_path = dir.join("g.txt");
    let out = lopacify()
        .args(["generate", "--dataset", "gnutella", "--n", "120", "--seed", "4"])
        .args(["--out", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "generate: {}", String::from_utf8_lossy(&out.stderr));

    // Multi-θ sweep: CSV on stdout, strictest-θ graph in --out.
    let sweep_path = dir.join("sweep.txt");
    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", sweep_path.to_str().unwrap()])
        .args(["--l", "1", "--theta", "0.9,0.66,0.5", "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "sweep: {}", String::from_utf8_lossy(&out.stderr));
    let csv = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 4, "header + one row per θ, got: {csv}");
    assert!(lines[0].starts_with("theta,achieved,steps,trials,new_trials"), "header: {}", lines[0]);
    for (line, theta) in lines[1..].iter().zip(["0.9", "0.66", "0.5"]) {
        assert!(line.starts_with(&format!("{theta},")), "row for θ={theta}: {line}");
    }

    // Single-θ run at the strictest value, same seed.
    let single_path = dir.join("single.txt");
    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", single_path.to_str().unwrap()])
        .args(["--l", "1", "--theta", "0.5", "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "single: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).is_empty(), "single runs emit no CSV");

    // The final-θ graph of the sweep is byte-identical to the single run.
    assert_eq!(
        std::fs::read(&sweep_path).unwrap(),
        std::fs::read(&single_path).unwrap(),
        "sweep final graph differs from standalone θ=0.5 run"
    );

    // Unsweepable combinations fail cleanly.
    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", dir.join("x.txt").to_str().unwrap()])
        .args(["--theta", "0.9,0.5", "--method", "gades"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("theta sweeps support"));

    let out = lopacify()
        .args(["anonymize", "--in", graph_path.to_str().unwrap()])
        .args(["--out", dir.join("x.txt").to_str().unwrap()])
        .args(["--theta", "0.9,oops"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a number"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_rejects_unknown_dataset() {
    let out = lopacify()
        .args(["generate", "--dataset", "friendster", "--n", "10", "--out", "/tmp/x.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn baseline_methods_run_from_cli() {
    let dir = temp_dir("baselines");
    let graph_path = dir.join("g.txt");
    lopacify()
        .args(["generate", "--dataset", "gnutella", "--n", "40", "--seed", "5"])
        .args(["--out", graph_path.to_str().unwrap()])
        .output()
        .unwrap();
    for method in ["gaded-rand", "gaded-max"] {
        let out = lopacify()
            .args(["anonymize", "--in", graph_path.to_str().unwrap()])
            .args(["--out", dir.join(format!("{method}.txt")).to_str().unwrap()])
            .args(["--l", "1", "--theta", "0.6", "--method", method])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{method}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
