//! `lopacify` — command-line L-opacity anonymization.
//!
//! ```text
//! lopacify anonymize --in graph.txt --out anon.txt --l 2 --theta 0.5
//!          [--method rem|rem-ins|exact|gaded-rand|gaded-max|gades
//!                   |k-degree|kl-adjacency] [--k N] [--ell N]
//!          [--lookahead N] [--seed N] [--max-steps N] [--max-edits N]
//!          [--parallelism auto|off|N] [--store auto|dense|sparse]
//!          [--sweep-mode resume|independent]
//! lopacify compare   --in graph.txt [--json COMPARE.json] [--csv FILE]
//!          --l 2 --theta 0.5 [--k N] [--ell N] [--budget N]
//!          [--ls 1,2,3] [--seed N] [--store auto|dense|sparse]
//! lopacify churn     --in graph.txt --events events.txt --out live.txt
//!          --l 2 --theta 0.5 [--method ...] [--batch N] [--seed N]
//!          [--parallelism auto|off|N] [--store auto|dense|sparse]
//! lopacify opacity   --in graph.txt --l 2 [--original orig.txt]
//! lopacify stats     --in graph.txt
//! lopacify generate  --dataset google --n 500 --out graph.txt [--seed N]
//! lopacify serve     [--addr HOST:PORT] [--workers N] [--queue N] [--job-ttl SECS] [--state-dir DIR]
//!          [--job-mem-budget BYTES] [--mem-budget BYTES] [--job-deadline SECS]
//! lopacify submit    --spec FILE [--addr HOST:PORT] [--ikey KEY] [--wait] [--out FILE]
//!          [--retries N] [--seed N]
//! ```
//!
//! Graphs are whitespace-separated edge lists (SNAP format); `#`/`%` lines
//! are comments. `anonymize` prints the run report to stderr and writes the
//! anonymized edge list; `opacity` prints the per-type opacity matrix.
//!
//! `--theta` accepts a comma-separated list (e.g. `--theta 0.9,0.66,0.5`):
//! the θ values run as one [`lopacity::Anonymizer::sweep`] over a shared
//! evaluator build, one CSV row per θ on stdout, with the strictest θ's
//! graph written to `--out`. Under the default resume mode the final graph
//! is byte-identical to a single-θ run at the strictest value.
//!
//! `churn` replays an external edge-event stream (`+ u v` / `- u v`, one
//! per line) against a live [`lopacity::ChurnSession`]: events apply as
//! incremental deltas, each `--batch`-sized window re-reads certification,
//! and violations trigger an in-place repair — one CSV row per batch on
//! stdout, the final graph to `--out`, exit status 3 if the stream ends
//! uncertified.

use lopacity::opacity::{opacity_report, opacity_report_against_original};
use lopacity::{
    AnonymizeConfig, Anonymizer, ChurnSession, EdgeEvent, ExactMinRemovals, Parallelism,
    RepairPatch, Removal, RemovalInsertion, StoreBackend, SweepMode, TypeSpec,
};
use lopacity_baselines::{gaded_max, gaded_rand, gades, Gades, GadedMax, GadedRand};
use lopacity_models::{run_comparison, CompareSpec, KDegreeAnonymity, KLAdjacencyAnonymity};
use lopacity_daemon::{Daemon, DaemonConfig};
use lopacity_gen::Dataset;
use lopacity_graph::{io as gio, Graph, GraphError};
use lopacity_metrics::{GraphStats, UtilityReport};
use lopacity_util::Args;

/// A CLI failure with its exit status. The exit-code contract (documented
/// in the usage text and README):
///
/// * `1` — I/O failures and usage errors,
/// * `2` — input parse errors (edge lists, event streams),
/// * `3` — θ lost: the run/stream ended with `maxLO > θ` (raised at the
///   `exit(3)` sites in `anonymize`/`churn`, not through this type).
struct CliError {
    code: i32,
    message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { code: 1, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError { code: 1, message: message.to_string() }
    }
}

fn main() {
    let args = Args::from_env();
    let command = args.positional(0).unwrap_or("").to_string();
    let result: Result<(), CliError> = match command.as_str() {
        "anonymize" => anonymize(&args).map_err(CliError::from),
        "compare" => compare(&args),
        "churn" => churn(&args),
        "serve" => serve(&args).map_err(CliError::from),
        "submit" => submit(&args),
        "opacity" => opacity(&args).map_err(CliError::from),
        "stats" => stats(&args).map_err(CliError::from),
        "generate" => generate(&args).map_err(CliError::from),
        "" | "help" | "--help" => {
            eprint!("{}", USAGE);
            Ok(())
        }
        other => Err(CliError::from(format!("unknown command {other:?}\n{USAGE}"))),
    };
    if let Err(e) = result {
        eprintln!("error: {}", e.message);
        std::process::exit(e.code);
    }
}

const USAGE: &str = "\
lopacify — linkage-aware graph anonymization (L-opacity, EDBT 2014)

commands:
  anonymize --in FILE --out FILE --l N --theta X[,X2,...] [--method M]
            [--k N] [--ell N] [--lookahead N] [--seed N] [--max-steps N]
            [--max-edits N] [--parallelism auto|off|N]
            [--store auto|dense|sparse] [--sweep-mode resume|independent]
            methods: rem (default), rem-ins, exact (<= 25 edges),
                     gaded-rand, gaded-max, gades,
                     k-degree, kl-adjacency
            k-degree and kl-adjacency repair toward the rival anonymity
            models (degree-sequence k-anonymity; (k,l)-adjacency
            anonymity) through the same session; they take --k (default
            2) and --ell (default 1), ignore theta for their verdict, and
            exit 3 when their own certifier is not satisfied
            max-edits caps the total edge edits (matched-budget runs)
            parallelism shards the candidate scan and the initial APSP
            build across worker threads; results are identical for every
            setting (default: auto)
            store picks the distance representation: dense O(V^2) matrix,
            sparse within-L lists (unlocks very large graphs), or an
            adaptive choice from the measured within-L density (default:
            auto); results are identical for every setting
            a comma-separated theta list runs a descending sweep over one
            shared evaluator build (methods rem/rem-ins/exact): one CSV row
            per theta on stdout, the strictest theta's graph in --out
            sweep-mode defaults to resume (exact: independent, so every
            theta stays globally minimal)
  churn     --in FILE --events FILE --out FILE --l N --theta X
            [--method M] [--batch N] [--seed N]
            [--parallelism auto|off|N] [--store auto|dense|sparse]
            methods: rem (default), rem-ins, gaded-rand, gaded-max, gades
                     (baselines only at --l 1)
            replays an external edge-event stream (one `+ u v` or `- u v`
            per line; #/% comments) as incremental deltas against a live
            session: every --batch events (default 1) certification is
            re-read and a violation triggers an in-place repair; one CSV
            row per batch on stdout, the final graph in --out, exit 3 if
            the stream ends uncertified
  compare   --in FILE [--json FILE] [--csv FILE] --l N --theta X
            [--k N] [--ell N] [--budget N] [--ls L1,L2,...] [--seed N]
            [--store auto|dense|sparse]
            runs every privacy model (L-opacity removal and
            removal/insertion, k-degree, (k,l)-adjacency) on one graph at
            a matched edit budget — taken from the unbudgeted L-opacity
            removal run unless --budget overrides it — scores every
            output with every model's certifier plus the utility suite,
            writes COMPARE.json (default) and optionally --csv, and
            prints a summary table on stdout; --ls adds budget-matched
            L-opacity rows and certifier columns at extra L values
  opacity   --in FILE --l N [--original FILE] [--theta X]
  stats     --in FILE
  generate  --dataset D --n N --out FILE [--seed N]
            datasets: google, berkeley-stanford, epinions, enron, gnutella,
                      acm, wikipedia
  serve     [--addr HOST:PORT] [--workers N] [--queue N] [--job-ttl SECS]
            [--state-dir DIR] [--job-mem-budget BYTES] [--mem-budget BYTES]
            [--job-deadline SECS]
            starts lopacityd, the anonymization daemon: jobs over HTTP with
            progress streaming, cooperative cancellation, per-job budgets,
            a shared (graph, L, engine) evaluator cache, and held churn
            sessions (defaults: 127.0.0.1:7311, 2 workers, queue 32);
            --job-ttl drops finished jobs SECS after completion (default:
            keep forever); --state-dir keeps a durable job journal so
            interrupted jobs resume byte-identically on the next boot;
            --job-mem-budget refuses specs whose predicted distance-store
            footprint exceeds BYTES with 413 before any build;
            --mem-budget caps the summed prediction across queued+running
            jobs (429 + Retry-After past it); --job-deadline stops jobs
            at their next cooperative checkpoint SECS after they start
            (SIGTERM drains and exits 0; see lopacityd --help for the
            full robustness knobs: --fault, --backlog-bytes, ...)
  submit    --spec FILE [--addr HOST:PORT] [--ikey KEY] [--wait]
            [--out FILE] [--retries N] [--seed N]
            submits a job spec file (see the lopacity-daemon crate docs
            for the format) to a running daemon, retrying 429/503 and
            transport errors with capped, seeded exponential backoff;
            prints `id N`; --ikey sends an Idempotency-Key so retries
            (even across a daemon restart) cannot enqueue duplicates;
            --wait polls until the job finishes, prints the result
            summary, writes the anonymized graph to --out if given, and
            exits 3 when the run ended with theta lost

exit codes:
  0  success
  1  I/O failures (unreadable/unwritable files) and usage errors; for
     submit: connect failures and retry budgets exhausted
  2  input parse errors (malformed edge lists or event streams); for
     submit: the daemon rejected the spec (400) or its predicted
     footprint (413)
  3  theta lost: anonymize ended with maxLO > theta (for the k-degree and
     kl-adjacency methods: ended with their own certifier unsatisfied),
     a churn stream ended uncertified after repair, or a submit --wait
     job finished without achieving theta
";

fn load(args: &Args, key: &str) -> Result<Graph, String> {
    let path = args.get(key).ok_or(format!("missing --{key} FILE"))?;
    gio::read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))
}

/// Like [`load`], but classifying the failure for the exit-code contract:
/// an unreadable file is an I/O failure (exit 1), malformed content is a
/// parse error (exit 2).
fn load_classified(args: &Args, key: &str) -> Result<Graph, CliError> {
    let path = args.get(key).ok_or_else(|| format!("missing --{key} FILE"))?;
    gio::read_edge_list_file(path).map_err(|e| CliError {
        code: if matches!(e, GraphError::Io(_)) { 1 } else { 2 },
        message: format!("reading {path}: {e}"),
    })
}

/// The `--theta` list: one or more values in [0, 1], comma-separated.
fn parse_thetas(args: &Args) -> Result<Vec<f64>, String> {
    let raw = args.get("theta").unwrap_or("0.5");
    let mut thetas = Vec::new();
    for part in raw.split(',') {
        let theta: f64 = part
            .trim()
            .parse()
            .map_err(|_| format!("--theta: {part:?} is not a number"))?;
        if !(0.0..=1.0).contains(&theta) {
            return Err(format!("theta {theta} out of [0, 1]"));
        }
        thetas.push(theta);
    }
    Ok(thetas)
}

fn anonymize(args: &Args) -> Result<(), String> {
    let graph = load(args, "in")?;
    let out_path = args.get("out").ok_or("missing --out FILE")?;
    let l: u8 = args.get_or("l", 1)?;
    let thetas = parse_thetas(args)?;
    // The strictest θ decides the exit status and names the written graph.
    let theta = thetas.iter().copied().fold(f64::INFINITY, f64::min);
    let lookahead: usize = args.get_or("lookahead", 1)?;
    let seed: u64 = args.get_or("seed", lopacity::config::DEFAULT_SEED)?;
    let method = args.get("method").unwrap_or("rem");
    if l == 0 {
        return Err("L must be at least 1".into());
    }
    let session_method = matches!(method, "rem" | "rem-ins" | "exact");
    // The rival models run through the session but never read distances,
    // so any L is fine; baselines are pinned to L = 1.
    let model_method = matches!(method, "k-degree" | "kl-adjacency");
    if !session_method && !model_method && l != 1 {
        return Err("baseline methods support only --l 1".into());
    }
    if !session_method && thetas.len() > 1 {
        return Err("theta sweeps support only the rem, rem-ins and exact methods".into());
    }
    let exact_cap = ExactMinRemovals::default().max_edges;
    if method == "exact" && graph.num_edges() > exact_cap {
        return Err(format!(
            "the exact method is exponential; it accepts at most {exact_cap} edges \
             (graph has {})",
            graph.num_edges()
        ));
    }
    // Parsed by hand (not `get_or`) so the valid-values hint in the
    // `Parallelism` parse error reaches the user.
    let parallelism: Parallelism = match args.get("parallelism") {
        None => Parallelism::Auto,
        Some(raw) => raw.parse().map_err(|e| format!("--parallelism: {e}"))?,
    };
    let store: StoreBackend = match args.get("store") {
        None => StoreBackend::Auto,
        Some(raw) => raw.parse().map_err(|e| format!("--store: {e}"))?,
    };
    let sweep_mode = match args.get("sweep-mode") {
        // The exact strategy's search depends on θ, so resuming yields
        // increment-minimal (not globally minimal) sets; exact sweeps
        // therefore default to independent per-θ runs. The greedy
        // trajectories are θ-independent and default to resume.
        None => {
            if method == "exact" {
                SweepMode::Independent
            } else {
                SweepMode::Resume
            }
        }
        Some("resume") => SweepMode::Resume,
        Some("independent") => SweepMode::Independent,
        Some(other) => {
            return Err(format!("--sweep-mode: unknown mode {other:?} (resume, independent)"))
        }
    };
    let mut config = AnonymizeConfig::new(l, theta)
        .with_lookahead(lookahead)
        .with_seed(seed)
        .with_parallelism(parallelism)
        .with_store(store);
    let cap: usize = args.get_or("max-steps", 0)?;
    if cap > 0 {
        config = config.with_max_steps(cap);
    }
    let edit_cap: usize = args.get_or("max-edits", 0)?;
    if edit_cap > 0 {
        config = config.with_max_edits(edit_cap);
    }

    let spec = TypeSpec::DegreePairs;
    let mut session =
        Anonymizer::new(&graph, &spec).config(config).sweep_mode(sweep_mode);
    let outcome = if thetas.len() > 1 {
        // Multi-θ sweep: one shared evaluator build, one CSV row per θ on
        // stdout (descending), the strictest θ's graph to --out.
        let runs = match method {
            "rem" => session.sweep(&thetas, Removal),
            "rem-ins" => session.sweep(&thetas, RemovalInsertion::default()),
            "exact" => session.sweep(&thetas, ExactMinRemovals::default()),
            other => return Err(format!("unknown method {other:?}")),
        };
        println!("theta,achieved,steps,trials,new_trials,removed,inserted,max_lo,distortion");
        for run in &runs {
            println!(
                "{},{},{},{},{},{},{},{:.6},{:.6}",
                run.theta,
                run.outcome.achieved,
                run.outcome.steps,
                run.outcome.trials,
                run.new_trials,
                run.outcome.removed.len(),
                run.outcome.inserted.len(),
                run.outcome.final_lo,
                run.outcome.distortion(&graph),
            );
        }
        runs.into_iter().last().expect("sweep returns one run per theta").outcome
    } else {
        // One-shot: consume the session (`run_once`) — no defensive
        // evaluator clone, the historical free-function cost profile.
        match method {
            "rem" => session.run_once(Removal),
            "rem-ins" => session.run_once(RemovalInsertion::default()),
            "exact" => session.run_once(ExactMinRemovals::default()),
            "gaded-rand" => gaded_rand(&graph, theta, seed),
            "gaded-max" => gaded_max(&graph, theta),
            "gades" => gades(&graph, theta),
            "k-degree" => session.run_once(KDegreeAnonymity::new(parse_k(args)?)),
            "kl-adjacency" => {
                session.run_once(KLAdjacencyAnonymity::new(parse_k(args)?, parse_ell(args)?))
            }
            other => return Err(format!("unknown method {other:?}")),
        }
    };
    gio::write_edge_list_file(&outcome.graph, out_path)
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!("{outcome}");
    eprintln!("distortion: {:.2}%", 100.0 * outcome.distortion(&graph));
    let utility = UtilityReport::compute(&graph, &outcome.graph);
    eprintln!("utility: {utility}");
    if !outcome.achieved {
        if model_method {
            eprintln!("warning: {method} anonymity was NOT reached");
        } else {
            eprintln!("warning: θ = {theta} was NOT reached (maxLO = {:.4})", outcome.final_lo);
        }
        std::process::exit(3);
    }
    Ok(())
}

/// `--k` for the k-degree / (k,ℓ)-adjacency methods (default 2).
fn parse_k(args: &Args) -> Result<usize, String> {
    let k: usize = args.get_or("k", 2)?;
    if k == 0 {
        return Err("--k must be at least 1".into());
    }
    Ok(k)
}

/// `--ell` for the (k,ℓ)-adjacency method (default 1; patterns are
/// tracked as 64-bit masks, and certification is O(|V|^ell)).
fn parse_ell(args: &Args) -> Result<usize, String> {
    let ell: usize = args.get_or("ell", 1)?;
    if !(1..=64).contains(&ell) {
        return Err("--ell must be in 1..=64".into());
    }
    Ok(ell)
}

/// `lopacify compare` — every privacy model on one graph at a matched
/// edit budget; COMPARE.json (+ optional CSV) out, summary table on
/// stdout. A comparison is a report, so it exits 0 even when some model
/// fails to certify within the budget.
fn compare(args: &Args) -> Result<(), CliError> {
    let graph = load_classified(args, "in")?;
    let l: u8 = args.get_or("l", 2)?;
    if l == 0 {
        return Err("L must be at least 1".into());
    }
    let theta: f64 = args.get_or("theta", 0.5)?;
    if !(0.0..=1.0).contains(&theta) {
        return Err(format!("theta {theta} out of [0, 1]").into());
    }
    let seed: u64 = args.get_or("seed", lopacity::config::DEFAULT_SEED)?;
    let store: StoreBackend = match args.get("store") {
        None => StoreBackend::Auto,
        Some(raw) => raw.parse().map_err(|e| format!("--store: {e}"))?,
    };
    let mut spec = CompareSpec::new(l, theta, parse_k(args)?, parse_ell(args)?)
        .with_seed(seed)
        .with_store(store);
    let budget: usize = args.get_or("budget", 0)?;
    if budget > 0 {
        spec = spec.with_budget(budget);
    }
    if let Some(raw) = args.get("ls") {
        let mut ls = Vec::new();
        for part in raw.split(',') {
            let lx: u8 = part
                .trim()
                .parse()
                .map_err(|_| format!("--ls: {part:?} is not an L value"))?;
            if lx == 0 {
                return Err("--ls: L values must be at least 1".into());
            }
            ls.push(lx);
        }
        spec = spec.with_ls(&ls);
    }

    let report = run_comparison(&graph, &spec);

    let json_path = args.get("json").unwrap_or("COMPARE.json");
    std::fs::write(json_path, report.to_json())
        .map_err(|e| format!("writing {json_path}: {e}"))?;
    let mut written = json_path.to_string();
    if let Some(csv_path) = args.get("csv") {
        let mut csv = report.csv_header();
        csv.push('\n');
        for row in report.csv_rows() {
            csv.push_str(&row);
            csv.push('\n');
        }
        std::fs::write(csv_path, csv).map_err(|e| format!("writing {csv_path}: {e}"))?;
        written.push_str(", ");
        written.push_str(csv_path);
    }

    eprintln!(
        "compared {} models on |V| = {} |E| = {} at budget {} -> {written}",
        report.rows.len(),
        report.vertices,
        report.edges,
        report.budget,
    );
    let leak_cols: Vec<String> =
        report.certifiers.iter().map(|c| format!("leak[{c}]")).collect();
    println!("model,achieved,removed,inserted,distortion,{}", leak_cols.join(","));
    for row in &report.rows {
        let leaks: Vec<String> =
            row.cells.iter().map(|c| format!("{:.4}", c.leakage)).collect();
        println!(
            "{},{},{},{},{:.4},{}",
            row.model,
            row.achieved,
            row.removed,
            row.inserted,
            row.utility.distortion,
            leaks.join(","),
        );
    }
    Ok(())
}

/// Runs one repair under the named method. A match per call (rather than a
/// boxed strategy held across the loop) keeps `ChurnSession::repair`'s
/// fresh-per-repair semantics obvious: each repair builds its own strategy
/// value, RNG, and edit bookkeeping.
fn repair_with(session: &mut ChurnSession, method: &str) -> Result<RepairPatch, String> {
    Ok(match method {
        "rem" => session.repair(Removal),
        "rem-ins" => session.repair(RemovalInsertion::default()),
        "gaded-rand" => session.repair(GadedRand),
        "gaded-max" => session.repair(GadedMax),
        "gades" => session.repair(Gades::default()),
        other => return Err(format!("unknown method {other:?}")),
    })
}

fn churn(args: &Args) -> Result<(), CliError> {
    let graph = load_classified(args, "in")?;
    let out_path = args.get("out").ok_or("missing --out FILE")?;
    let events_path = args.get("events").ok_or("missing --events FILE")?;
    // I/O failure (exit 1) vs. malformed stream (exit 2) — the two files
    // are read and parsed as separate steps so the codes stay distinct.
    let text = std::fs::read_to_string(events_path)
        .map_err(|e| CliError { code: 1, message: format!("reading {events_path}: {e}") })?;
    let events = EdgeEvent::parse_stream(&text)
        .map_err(|e| CliError { code: 2, message: format!("{events_path}: {e}") })?;
    let l: u8 = args.get_or("l", 1)?;
    if l == 0 {
        return Err("L must be at least 1".into());
    }
    let thetas = parse_thetas(args)?;
    let [theta] = thetas[..] else {
        return Err("churn certifies one theta (no sweeps)".into());
    };
    let batch: usize = args.get_or("batch", 1)?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let seed: u64 = args.get_or("seed", lopacity::config::DEFAULT_SEED)?;
    let method = args.get("method").unwrap_or("rem");
    if !matches!(method, "rem" | "rem-ins") && l != 1 {
        return Err("baseline methods support only --l 1".into());
    }
    let parallelism: Parallelism = match args.get("parallelism") {
        None => Parallelism::Auto,
        Some(raw) => raw.parse().map_err(|e| format!("--parallelism: {e}"))?,
    };
    let store: StoreBackend = match args.get("store") {
        None => StoreBackend::Auto,
        Some(raw) => raw.parse().map_err(|e| format!("--store: {e}"))?,
    };
    let config = AnonymizeConfig::new(l, theta)
        .with_seed(seed)
        .with_parallelism(parallelism)
        .with_store(store);
    let spec = TypeSpec::DegreePairs;
    let mut session = ChurnSession::new(Anonymizer::new(&graph, &spec).config(config));

    // If the input graph is not yet (θ, L)-certified, repair before the
    // stream starts — the session then maintains that certificate.
    if !session.is_certified() {
        let initial = repair_with(&mut session, method)?;
        eprintln!(
            "initial repair: -{} +{} edges in {} steps, maxLO = {:.4}{}",
            initial.removed.len(),
            initial.inserted.len(),
            initial.steps,
            initial.max_lo,
            if initial.achieved { "" } else { " (NOT certified)" },
        );
    }

    println!("batch,applied,skipped,changed_cells,max_lo,violated,repair_removed,repair_inserted,repair_steps,repair_max_lo");
    for (b, window) in events.chunks(batch).enumerate() {
        let report = session.apply_batch(window);
        let repair = if report.violated {
            Some(repair_with(&mut session, method)?)
        } else {
            None
        };
        println!(
            "{},{},{},{},{:.6},{},{},{},{},{}",
            b,
            report.applied,
            report.skipped,
            report.changed_cells,
            report.max_lo,
            report.violated,
            repair.as_ref().map_or(0, |p| p.removed.len()),
            repair.as_ref().map_or(0, |p| p.inserted.len()),
            repair.as_ref().map_or(0, |p| p.steps),
            repair.as_ref().map_or_else(String::new, |p| format!("{:.6}", p.max_lo)),
        );
    }

    session.certify().map_err(|e| format!("incremental state failed certification: {e}"))?;
    let certified = session.is_certified();
    let final_a = session.assessment();
    eprintln!(
        "stream done: {} applied, {} skipped, {} repairs, maxLO = {:.4}",
        session.events_applied(),
        session.events_skipped(),
        session.repairs(),
        final_a.as_f64(),
    );
    let final_graph = session.into_graph();
    gio::write_edge_list_file(&final_graph, out_path)
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    if !certified {
        eprintln!("warning: θ = {theta} NOT held at end of stream");
        std::process::exit(3);
    }
    Ok(())
}

fn opacity(args: &Args) -> Result<(), String> {
    let graph = load(args, "in")?;
    let l: u8 = args.get_or("l", 1)?;
    if l == 0 {
        return Err("L must be at least 1".into());
    }
    let report = match args.get("original") {
        Some(path) => {
            let original =
                gio::read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))?;
            opacity_report_against_original(&original, &graph, &TypeSpec::DegreePairs, l)
        }
        None => opacity_report(&graph, &TypeSpec::DegreePairs, l),
    };
    println!("type\twithin_L\ttotal\tLO");
    for row in &report.per_type {
        println!("{}\t{}\t{}\t{:.4}", row.label, row.within_l, row.total, row.lo);
    }
    println!("maxLO = {} over {} non-empty types", report.max_lo, report.per_type.len());
    let theta: f64 = args.get_or("theta", f64::NAN)?;
    if !theta.is_nan() {
        let ok = report.max_lo.satisfies(theta);
        println!("{l}-opaque wrt θ = {theta}: {}", if ok { "YES" } else { "NO" });
    }
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let graph = load(args, "in")?;
    let stats = GraphStats::compute(&graph);
    println!("{stats}");
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let dataset: Dataset = args
        .get("dataset")
        .ok_or("missing --dataset NAME")?
        .parse()?;
    let n: usize = args.get_or("n", 100)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out_path = args.get("out").ok_or("missing --out FILE")?;
    let graph = dataset.generate(n, seed);
    gio::write_edge_list_file(&graph, out_path).map_err(|e| format!("writing {out_path}: {e}"))?;
    eprintln!(
        "generated {dataset} stand-in: n={} m={} -> {out_path}",
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(())
}

/// Boots `lopacityd` in-process and serves until killed. The daemon crate
/// also ships a standalone `lopacityd` binary with the same knobs.
fn serve(args: &Args) -> Result<(), String> {
    let defaults = DaemonConfig::default();
    let config = DaemonConfig {
        addr: args.get("addr").unwrap_or(&defaults.addr).to_string(),
        workers: args.get_or("workers", defaults.workers)?,
        queue_capacity: args.get_or("queue", defaults.queue_capacity)?,
        job_ttl_secs: match args.get("job-ttl") {
            None => None,
            Some(raw) => Some(
                raw.parse().map_err(|_| format!("--job-ttl: {raw:?} is not a seconds count"))?,
            ),
        },
        state_dir: args.get("state-dir").map(std::path::PathBuf::from),
        job_mem_budget: match args.get("job-mem-budget") {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| format!("--job-mem-budget: {raw:?} is not a byte count"))?,
            ),
        },
        mem_budget: match args.get("mem-budget") {
            None => None,
            Some(raw) => Some(
                raw.parse().map_err(|_| format!("--mem-budget: {raw:?} is not a byte count"))?,
            ),
        },
        job_deadline_secs: match args.get("job-deadline") {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| format!("--job-deadline: {raw:?} is not a seconds count"))?,
            ),
        },
        ..defaults
    };
    let daemon = Daemon::bind(&config).map_err(|e| format!("bind {}: {e}", config.addr))?;
    println!("lopacityd listening on {}", daemon.addr());
    println!("workers {} queue {}", config.workers.max(1), config.queue_capacity);
    if let Some(dir) = &config.state_dir {
        println!("state-dir {}", dir.display());
    }
    lopacity_daemon::server::serve_until_term(daemon);
    Ok(())
}

/// Remote submission through `lopacity-client`: retries `429`/`503` and
/// transport errors with capped seeded backoff, dedupes via `--ikey`, and
/// with `--wait` maps the finished job onto the standard exit codes.
fn submit(args: &Args) -> Result<(), CliError> {
    use lopacity_client::{Client, ClientConfig, ClientError};
    let io = |message: String| CliError { code: 1, message };
    let spec_path = args.get("spec").ok_or(CliError::from("missing --spec FILE"))?;
    let spec = std::fs::read_to_string(spec_path)
        .map_err(|e| io(format!("reading {spec_path}: {e}")))?;
    let defaults = ClientConfig::default();
    let config = ClientConfig {
        addr: args.get("addr").unwrap_or(&defaults.addr).to_string(),
        max_retries: args.get_or("retries", defaults.max_retries)?,
        seed: args.get_or("seed", defaults.seed)?,
        ..defaults
    };
    let mut client = Client::new(config);
    let submitted = match args.get("ikey") {
        Some(key) => client.submit_idempotent(&spec, key),
        None => client.submit(&spec),
    };
    let id = match submitted {
        Ok(id) => id,
        // 400 (spec did not parse) and 413 (predicted footprint refused)
        // are data problems — the daemon's reply names the line or the
        // estimate; retrying cannot help.
        Err(ClientError::Rejected { status: status @ (400 | 413), body }) => {
            return Err(CliError { code: 2, message: format!("{status}: {}", body.trim_end()) })
        }
        Err(e) => return Err(io(format!("submit to {}: {e}", client.addr()))),
    };
    println!("id {id}");
    if !args.has_flag("wait") {
        return Ok(());
    }
    let summary = client
        .wait(id, std::time::Duration::from_millis(200))
        .map_err(|e| io(format!("waiting on job {id}: {e}")))?;
    print!("{summary}");
    if let Some(out) = args.get("out") {
        let graph = client
            .get(&format!("/jobs/{id}/graph"))
            .map_err(|e| io(format!("fetching job {id} graph: {e}")))?;
        std::fs::write(out, graph.body_str().unwrap_or(""))
            .map_err(|e| io(format!("writing {out}: {e}")))?;
    }
    let failed = summary.lines().any(|l| l.starts_with("phase failed"));
    let lost = summary.lines().any(|l| l == "achieved false")
        || summary.lines().any(|l| l == "certified false");
    if failed {
        return Err(CliError { code: 1, message: format!("job {id} failed") });
    }
    if lost {
        return Err(CliError { code: 3, message: format!("job {id} finished with theta lost") });
    }
    Ok(())
}
