//! `trend`: cross-commit perf trend report assembled from `BENCH_*.json`
//! artifacts.
//!
//! Every perf job already writes a machine-readable `BENCH_*.json`; this
//! bin flattens the numeric leaves of each file into dotted-path metrics,
//! appends one labeled row per metric to a cumulative `TREND.csv`, and
//! regenerates `TREND.md` — a per-file table with one column per label
//! (newest last) so a regression shows up as a drifting row without
//! spelunking through artifact zips.
//!
//! ```text
//! trend --label $GITHUB_SHA --dir results results/BENCH_4.json ...
//! ```
//!
//! The CSV is the durable record (append-only, merged across runs when CI
//! restores a previous artifact); the markdown is derived from it on every
//! invocation. No JSON dependency: the parser below is a ~100-line
//! recursive-descent reader for the subset the bench writers emit.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
trend - cross-commit bench trend report from BENCH_*.json artifacts

USAGE:
    trend [--label LABEL] [--dir DIR] [--keep N] FILE.json...

OPTIONS:
    --label LABEL  column label for this run, e.g. a commit SHA (default 'local')
    --dir DIR      output directory for TREND.csv / TREND.md (default 'results')
    --keep N       newest labels to show per table in TREND.md (default 8)
";

// ---------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, numbers, bools, null).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' | b'f' | b'n' => self.keyword(),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(byte) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let len = match byte {
                        _ if byte < 0x80 => 1,
                        _ if byte >= 0xf0 => 4,
                        _ if byte >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("bad utf-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn keyword(&mut self) -> Result<Json, String> {
        for (word, value) in
            [("true", Json::Bool(true)), ("false", Json::Bool(false)), ("null", Json::Null)]
        {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(value);
            }
        }
        Err(self.error("unknown keyword"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut reader = Reader::new(text);
    let value = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(reader.error("trailing garbage"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Flattening: numeric leaves become dotted-path metrics.
// ---------------------------------------------------------------------

/// Walks a JSON tree and emits `(dotted.path, value)` for every numeric or
/// boolean leaf. Array elements are indexed (`rows[2].scan_secs`); string
/// leaves are skipped — they name things, they don't trend.
fn flatten(value: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Bool(b) => out.push((prefix.to_string(), if *b { 1.0 } else { 0.0 })),
        Json::Obj(fields) => {
            for (key, child) in fields {
                let path =
                    if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                flatten(child, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(child, &format!("{prefix}[{i}]"), out);
            }
        }
        Json::Str(_) | Json::Null => {}
    }
}

// ---------------------------------------------------------------------
// The cumulative CSV and the derived markdown.
// ---------------------------------------------------------------------

/// One `label,file,metric,value` row of TREND.csv.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    label: String,
    file: String,
    metric: String,
    value: f64,
}

const CSV_HEADER: &str = "label,file,metric,value";

fn csv_field(text: &str) -> String {
    text.replace(',', ";")
}

fn render_csv(rows: &[Row]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for row in rows {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            csv_field(&row.label),
            csv_field(&row.file),
            csv_field(&row.metric),
            row.value
        );
    }
    out
}

fn parse_csv(text: &str) -> Vec<Row> {
    text.lines()
        .filter(|line| !line.is_empty() && *line != CSV_HEADER)
        .filter_map(|line| {
            let mut parts = line.splitn(4, ',');
            Some(Row {
                label: parts.next()?.to_string(),
                file: parts.next()?.to_string(),
                metric: parts.next()?.to_string(),
                value: parts.next()?.parse().ok()?,
            })
        })
        .collect()
}

fn format_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value:.6}")
    }
}

/// Renders the per-file trend tables: one row per metric, one column per
/// label, labels in first-seen order with only the newest `keep` shown.
fn render_markdown(rows: &[Row], keep: usize) -> String {
    let mut labels: Vec<&str> = Vec::new();
    for row in rows {
        if !labels.contains(&row.label.as_str()) {
            labels.push(&row.label);
        }
    }
    let shown = &labels[labels.len().saturating_sub(keep.max(1))..];

    // file -> metric -> label -> value; BTreeMaps keep the report stable.
    let mut files: BTreeMap<&str, BTreeMap<&str, BTreeMap<&str, f64>>> = BTreeMap::new();
    for row in rows {
        files
            .entry(&row.file)
            .or_default()
            .entry(&row.metric)
            .or_default()
            .insert(&row.label, row.value);
    }

    let mut out = String::from("# Bench trend\n\nNumeric leaves of each BENCH_*.json, per label");
    let _ = writeln!(
        out,
        " (newest last; {} of {} labels shown).\n",
        shown.len(),
        labels.len()
    );
    for (file, metrics) in &files {
        let _ = writeln!(out, "## {file}\n");
        let _ = writeln!(out, "| metric | {} |", shown.join(" | "));
        let _ = writeln!(out, "|---|{}", "---|".repeat(shown.len()));
        for (metric, by_label) in metrics {
            let cells: Vec<String> = shown
                .iter()
                .map(|label| by_label.get(label).map(|v| format_value(*v)).unwrap_or_default())
                .collect();
            let _ = writeln!(out, "| {metric} | {} |", cells.join(" | "));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// CLI.
// ---------------------------------------------------------------------

struct Options {
    label: String,
    dir: PathBuf,
    keep: usize,
    files: Vec<PathBuf>,
}

fn parse_args(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        label: "local".to_string(),
        dir: PathBuf::from("results"),
        keep: 8,
        files: Vec::new(),
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut take = || iter.next().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--label" => opts.label = take()?.to_string(),
            "--dir" => opts.dir = PathBuf::from(take()?),
            "--keep" => {
                opts.keep = take()?.parse().map_err(|_| "--keep: not a number".to_string())?
            }
            _ if arg.starts_with("--") => return Err(format!("unknown option {arg}")),
            _ => opts.files.push(PathBuf::from(arg)),
        }
    }
    if opts.files.is_empty() {
        return Err("no input files (see --help)".to_string());
    }
    Ok(opts)
}

fn file_stem(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

fn run(opts: &Options) -> Result<(), String> {
    // New rows from this run's artifacts.
    let mut fresh = Vec::new();
    for path in &opts.files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let value = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut leaves = Vec::new();
        flatten(&value, "", &mut leaves);
        let file = file_stem(path);
        for (metric, value) in leaves {
            fresh.push(Row { label: opts.label.clone(), file: file.clone(), metric, value });
        }
    }

    // Merge with the cumulative CSV: previous labels stay, this label's
    // rows are replaced (re-running a commit must not duplicate columns).
    let csv_path = opts.dir.join("TREND.csv");
    let mut rows = match std::fs::read_to_string(&csv_path) {
        Ok(text) => parse_csv(&text),
        Err(_) => Vec::new(),
    };
    rows.retain(|row| row.label != opts.label);
    let fresh_count = fresh.len();
    rows.extend(fresh);

    std::fs::create_dir_all(&opts.dir).map_err(|e| format!("mkdir {}: {e}", opts.dir.display()))?;
    std::fs::write(&csv_path, render_csv(&rows))
        .map_err(|e| format!("write {}: {e}", csv_path.display()))?;
    let md_path = opts.dir.join("TREND.md");
    std::fs::write(&md_path, render_markdown(&rows, opts.keep))
        .map_err(|e| format!("write {}: {e}", md_path.display()))?;
    println!(
        "trend: {} metrics for label {:?} from {} file(s); {} total rows -> {}",
        fresh_count,
        opts.label,
        opts.files.len(),
        rows.len(),
        md_path.display()
    );
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = parse_args(&argv).and_then(|opts| run(&opts)) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_style_json() {
        let text = r#"{
            "schema": "lopacity-bench5/v1",
            "scale": "smoke",
            "ok": true,
            "rows": [
                {"n": 10000, "scan_secs": 0.25, "backend": "sparse"},
                {"n": 10000, "scan_secs": 2.5e0, "backend": "dense"}
            ]
        }"#;
        let value = parse_json(text).unwrap();
        let mut leaves = Vec::new();
        flatten(&value, "", &mut leaves);
        assert_eq!(
            leaves,
            vec![
                ("ok".to_string(), 1.0),
                ("rows[0].n".to_string(), 10000.0),
                ("rows[0].scan_secs".to_string(), 0.25),
                ("rows[1].n".to_string(), 10000.0),
                ("rows[1].scan_secs".to_string(), 2.5),
            ]
        );
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let value = parse_json(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(value, Json::Str("a\"b\\c\ndA".to_string()));
    }

    #[test]
    fn csv_round_trips_and_merges_by_label() {
        let old = vec![
            Row { label: "aaa".into(), file: "B.json".into(), metric: "x".into(), value: 1.0 },
            Row { label: "bbb".into(), file: "B.json".into(), metric: "x".into(), value: 2.0 },
        ];
        let parsed = parse_csv(&render_csv(&old));
        assert_eq!(parsed, old);

        // Re-running label bbb replaces its rows instead of duplicating.
        let mut rows = parsed;
        rows.retain(|r| r.label != "bbb");
        rows.push(Row { label: "bbb".into(), file: "B.json".into(), metric: "x".into(), value: 3.0 });
        let by_bbb: Vec<f64> =
            rows.iter().filter(|r| r.label == "bbb").map(|r| r.value).collect();
        assert_eq!(by_bbb, vec![3.0]);
    }

    #[test]
    fn markdown_shows_newest_labels_per_file() {
        let rows: Vec<Row> = (0..4)
            .map(|i| Row {
                label: format!("c{i}"),
                file: "BENCH_4.json".into(),
                metric: "scan_secs".into(),
                value: i as f64,
            })
            .collect();
        let md = render_markdown(&rows, 2);
        assert!(md.contains("## BENCH_4.json"));
        assert!(md.contains("| metric | c2 | c3 |"), "{md}");
        assert!(!md.contains("c0 |"), "oldest labels dropped:\n{md}");
        assert!(md.contains("| scan_secs | 2 | 3 |"), "{md}");
    }

    #[test]
    fn missing_label_cells_render_empty() {
        let rows = vec![
            Row { label: "a".into(), file: "F".into(), metric: "m1".into(), value: 1.5 },
            Row { label: "b".into(), file: "F".into(), metric: "m2".into(), value: 2.0 },
        ];
        let md = render_markdown(&rows, 8);
        assert!(md.contains("| m1 | 1.500000 |  |"), "{md}");
        assert!(md.contains("| m2 |  | 2 |"), "{md}");
    }
}
