//! `repro` — regenerates every table and figure of the EDBT 2014 L-opacity
//! paper on the synthetic dataset stand-ins.
//!
//! ```text
//! repro <experiment> [--scale smoke|default|paper] [--out results] [--seed N]
//!
//! experiments:
//!   table1 table2 table3   dataset descriptions / properties
//!   fig6                   distortion vs θ (8 panels)
//!   fig7                   EMD of degree/geodesic distributions vs θ
//!   fig8                   mean |ΔCC| vs θ (3 panels)
//!   fig9                   runtime vs θ (Google 100/500/1000)
//!   fig10                  runtime by size (Gnutella, L ∈ {1,2})
//!   fig11 | fig12          runtime & distortion vs size (ACM sweep)
//!   thm1                   3-SAT reduction demonstration
//!   optgap                 greedy-vs-exact ablation (tiny instances)
//!   sweep                  APSP-sharing multi-θ session sweep vs independent
//!   compare                privacy models head-to-head at a matched budget
//!                          (COMPARE.json + compare_models.csv)
//!   all                    everything above
//! ```

use lopacity_bench::experiments::{
    compare, fig10, fig11_12, fig6, fig7, fig8, fig9, optgap, session_sweep, tables, thm1,
};
use lopacity_bench::output::OutputSink;
use lopacity_bench::Scale;
use lopacity_util::{Args, Stopwatch};

fn main() {
    let args = Args::from_env();
    let unknown = args.unknown_keys(&["scale", "out", "seed"]);
    if !unknown.is_empty() {
        eprintln!("unknown options: {unknown:?}");
        std::process::exit(2);
    }
    let experiment = args.positional(0).unwrap_or("all").to_string();
    let scale: Scale = match args.get("scale").unwrap_or("default").parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let out_dir = args.get("out").unwrap_or("results").to_string();
    let seed: u64 = match args.get_or("seed", 42u64) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let sink = match OutputSink::new(&out_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create output directory {out_dir}: {e}");
            std::process::exit(1);
        }
    };

    let run = |name: &str| -> std::io::Result<()> {
        let sw = Stopwatch::started();
        let result = match name {
            "table1" => tables::table1(scale, &sink),
            "table2" => tables::table2(scale, &sink, seed),
            "table3" => tables::table3(scale, &sink, seed),
            "fig6" => fig6::run(scale, &sink, seed),
            "fig7" => fig7::run(scale, &sink, seed),
            "fig8" => fig8::run(scale, &sink, seed),
            "fig9" => fig9::run(scale, &sink, seed),
            "fig10" => fig10::run(scale, &sink, seed),
            "fig11" | "fig12" | "fig11_12" => fig11_12::run(scale, &sink, seed),
            "thm1" => thm1::run(scale, &sink, seed),
            "optgap" => optgap::run(scale, &sink, seed),
            "sweep" => session_sweep::run(scale, &sink, seed),
            "compare" => compare::run(scale, &sink, seed),
            other => {
                eprintln!("unknown experiment {other:?}; see --help text in the source header");
                std::process::exit(2);
            }
        };
        eprintln!("[{name}] finished in {:.1}s", sw.elapsed_secs());
        result
    };

    let outcome = if experiment == "all" {
        [
            "table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "thm1", "optgap", "sweep", "compare",
        ]
        .iter()
        .try_for_each(|name| run(name))
    } else {
        run(&experiment)
    };

    if let Err(e) = outcome {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
    eprintln!("artifacts written to {out_dir}/");
}
