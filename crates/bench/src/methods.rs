//! The seven methods of the paper's evaluation, behind one interface.
//!
//! Our heuristics run through the [`Anonymizer`] session API; the sweep
//! protocols ([`crate::sweep`]) hold one session per (graph, L) and route
//! every θ and repetition through [`Method::run_in`], so the APSP build is
//! paid once per sweep instead of once per run (its cost still lands in
//! the *first* run's wall-clock). [`Method::run`] keeps the historical
//! one-shot semantics: a fresh session per call, build time included.

use lopacity::{
    AnonymizationOutcome, AnonymizeConfig, Anonymizer, Removal, RemovalInsertion, TypeSpec,
};
use lopacity_baselines::{gaded_max, gaded_rand, gades};
use lopacity_graph::Graph;
use std::time::Instant;


/// An anonymization method as plotted in Figures 6–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Our Edge Removal (Algorithm 4) with the given look-ahead.
    Rem { la: usize },
    /// Our Edge Removal/Insertion (Algorithm 5) with the given look-ahead.
    RemIns { la: usize },
    /// Zhang & Zhang's random deletion (L = 1 only).
    GadedRand,
    /// Zhang & Zhang's informed deletion (L = 1 only).
    GadedMax,
    /// Zhang & Zhang's edge swapping (L = 1 only).
    Gades,
}

impl Method {
    /// The full comparison set of the L = 1 figures, in legend order.
    pub const PAPER_L1: [Method; 7] = [
        Method::Rem { la: 1 },
        Method::RemIns { la: 1 },
        Method::Rem { la: 2 },
        Method::RemIns { la: 2 },
        Method::GadedRand,
        Method::GadedMax,
        Method::Gades,
    ];

    /// Our four heuristics (valid at any L).
    pub const OURS: [Method; 4] = [
        Method::Rem { la: 1 },
        Method::RemIns { la: 1 },
        Method::Rem { la: 2 },
        Method::RemIns { la: 2 },
    ];

    /// Legend label matching the paper's figures.
    pub fn name(self) -> String {
        match self {
            Method::Rem { la } => format!("Rem la={la}"),
            Method::RemIns { la } => format!("Rem-Ins la={la}"),
            Method::GadedRand => "GADED-Rand".to_string(),
            Method::GadedMax => "GADED-Max".to_string(),
            Method::Gades => "GADES".to_string(),
        }
    }

    /// Whether the method supports thresholds beyond single-edge linkage.
    pub fn supports_l(self, l: u8) -> bool {
        match self {
            Method::Rem { .. } | Method::RemIns { .. } => true,
            // The baselines' disclosure model is single-edge only.
            _ => l == 1,
        }
    }

    /// Whether the method runs through the [`Anonymizer`] session (and so
    /// benefits from a primed evaluator build). The baselines' disclosure
    /// model has no APSP state to share.
    pub fn uses_session(self) -> bool {
        matches!(self, Method::Rem { .. } | Method::RemIns { .. })
    }

    /// Runs the method and wall-clocks it.
    ///
    /// # Panics
    /// Panics when `l` is unsupported (baselines demand `l == 1`).
    pub fn run(
        self,
        graph: &Graph,
        l: u8,
        theta: f64,
        seed: u64,
        max_steps: Option<usize>,
    ) -> MethodRun {
        self.run_with_budget(graph, l, theta, seed, max_steps, None)
    }

    /// The [`AnonymizeConfig`] this method runs under (session methods
    /// only): look-ahead and seed from the method, budgets from the caller,
    /// with a beam on budgeted multi-edge look-ahead so la >= 2 degrades
    /// gracefully instead of burning the whole budget on one plateau step
    /// (paper-faithful full search = unbudgeted).
    fn config(
        self,
        l: u8,
        theta: f64,
        seed: u64,
        max_steps: Option<usize>,
        max_trials: Option<u64>,
    ) -> AnonymizeConfig {
        let la = match self {
            Method::Rem { la } | Method::RemIns { la } => la,
            _ => 1,
        };
        let mut config = AnonymizeConfig::new(l, theta).with_lookahead(la).with_seed(seed);
        if let Some(cap) = max_steps {
            config = config.with_max_steps(cap);
        }
        if let Some(cap) = max_trials {
            config = config.with_max_trials(cap);
            if config.lookahead > 1 {
                config = config.with_beam(64);
            }
        }
        config
    }

    /// [`Method::run`] with an explicit candidate-evaluation budget for the
    /// look-ahead heuristics (see `AnonymizeConfig::max_trials`). One-shot:
    /// the evaluator build is on the clock, and the session is consumed
    /// (`run_once`) so no defensive clone is paid — the historical
    /// free-function cost profile, keeping Figure 10–12 timings comparable
    /// across releases.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_budget(
        self,
        graph: &Graph,
        l: u8,
        theta: f64,
        seed: u64,
        max_steps: Option<usize>,
        max_trials: Option<u64>,
    ) -> MethodRun {
        assert!(self.supports_l(l), "{} does not support L = {l}", self.name());
        let start = Instant::now();
        let outcome = match self {
            Method::Rem { .. } => Anonymizer::new(graph, &TypeSpec::DegreePairs)
                .config(self.config(l, theta, seed, max_steps, max_trials))
                .run_once(Removal),
            Method::RemIns { .. } => Anonymizer::new(graph, &TypeSpec::DegreePairs)
                .config(self.config(l, theta, seed, max_steps, max_trials))
                .run_once(RemovalInsertion::default()),
            Method::GadedRand => gaded_rand(graph, theta, seed),
            Method::GadedMax => gaded_max(graph, theta),
            Method::Gades => gades(graph, theta),
        };
        MethodRun { outcome, secs: start.elapsed().as_secs_f64(), method: self }
    }

    /// Runs the method inside an existing session, reusing its cached
    /// evaluator build when `l` is unchanged (prime it before timing to
    /// keep `secs` build-free). Baselines ignore the session beyond its
    /// graph (their disclosure model has no APSP to share).
    #[allow(clippy::too_many_arguments)]
    pub fn run_in(
        self,
        session: &mut Anonymizer<'_>,
        l: u8,
        theta: f64,
        seed: u64,
        max_steps: Option<usize>,
        max_trials: Option<u64>,
    ) -> MethodRun {
        assert!(self.supports_l(l), "{} does not support L = {l}", self.name());
        let graph = session.graph();
        let start = Instant::now();
        let outcome = match self {
            Method::Rem { .. } => {
                session.set_config(self.config(l, theta, seed, max_steps, max_trials));
                session.run(Removal)
            }
            Method::RemIns { .. } => {
                session.set_config(self.config(l, theta, seed, max_steps, max_trials));
                session.run(RemovalInsertion::default())
            }
            Method::GadedRand => gaded_rand(graph, theta, seed),
            Method::GadedMax => gaded_max(graph, theta),
            Method::Gades => gades(graph, theta),
        };
        MethodRun { outcome, secs: start.elapsed().as_secs_f64(), method: self }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A timed anonymization run.
pub struct MethodRun {
    /// What the method produced.
    pub outcome: AnonymizationOutcome,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Which method ran.
    pub method: Method,
}

impl MethodRun {
    /// Distortion for plotting, applying the paper's GADES convention: a
    /// stuck GADES "returns an empty graph", i.e. 100% distortion; other
    /// failures plot as gaps (`None`).
    pub fn plot_distortion(&self, original: &Graph) -> Option<f64> {
        if self.outcome.achieved {
            Some(self.outcome.distortion(original))
        } else if self.method == Method::Gades {
            Some(1.0)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity_gen::Dataset;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Method::Rem { la: 1 }.name(), "Rem la=1");
        assert_eq!(Method::RemIns { la: 2 }.name(), "Rem-Ins la=2");
        assert_eq!(Method::GadedRand.name(), "GADED-Rand");
    }

    #[test]
    fn baselines_only_support_l1() {
        assert!(Method::GadedMax.supports_l(1));
        assert!(!Method::GadedMax.supports_l(2));
        assert!(Method::Rem { la: 1 }.supports_l(4));
    }

    #[test]
    fn all_seven_methods_run_on_a_sample() {
        let g = Dataset::Gnutella.generate(60, 3);
        for method in Method::PAPER_L1 {
            let run = method.run(&g, 1, 0.6, 9, Some(200));
            assert!(run.secs >= 0.0);
            if run.outcome.achieved {
                assert!(run.outcome.final_lo <= 0.6 + 1e-9, "{method}: {}", run.outcome);
            }
        }
    }

    #[test]
    fn gades_failure_plots_as_full_distortion() {
        let g = Dataset::Wikipedia.generate(40, 5);
        let run = Method::Gades.run(&g, 1, 0.05, 1, Some(100));
        if !run.outcome.achieved {
            assert_eq!(run.plot_distortion(&g), Some(1.0));
        }
    }
}
