//! Experiment sizing presets.

/// How big the reproduction runs are.
///
/// The paper's largest single run took ~16 days on a cluster; the presets
/// trade sample sizes (never coverage — every figure runs at every scale)
/// against wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// CI-sized: tiny samples, 1 repeat. Minutes.
    Smoke,
    /// Laptop-sized (default): the paper's 100-node samples, reduced
    /// repeats, capped step budgets. Tens of minutes for `all`.
    #[default]
    Default,
    /// Paper-sized: 100/500/1000-node samples, 10 repeats, uncapped.
    Paper,
}

impl Scale {
    /// Independent repetitions per (θ, method); the paper uses 10 and keeps
    /// the minimum-distortion result.
    pub fn repeats(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Default => 3,
            Scale::Paper => 10,
        }
    }

    /// Sample size for the Figure 6/7/8 dataset samples.
    pub fn sample_n(self) -> usize {
        match self {
            Scale::Smoke => 60,
            Scale::Default | Scale::Paper => 100,
        }
    }

    /// Graph sizes for the Figure 9 runtime sweep (Google samples).
    pub fn fig9_sizes(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![60, 120],
            Scale::Default => vec![100, 500, 1000],
            Scale::Paper => vec![100, 500, 1000],
        }
    }

    /// Graph sizes for the Figure 10 runtime bars (Gnutella samples).
    pub fn fig10_sizes(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![60, 120],
            Scale::Default => vec![100, 500, 1000],
            Scale::Paper => vec![100, 500, 1000],
        }
    }

    /// Graph sizes for the Figure 11/12 scaling sweep (ACM-like graphs).
    /// The paper runs 1k–10k; `Default` stops at 4k to keep the sweep in
    /// minutes.
    pub fn fig11_sizes(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![200, 400],
            Scale::Default => vec![1000, 2000, 3000, 4000],
            Scale::Paper => (1..=10).map(|k| k * 1000).collect(),
        }
    }

    /// Vertex count for the scaled-down Table 2 full-graph property rows.
    pub fn table2_n(self) -> usize {
        match self {
            Scale::Smoke => 500,
            Scale::Default => 2000,
            Scale::Paper => 5000,
        }
    }

    /// Step budget per anonymization run (`None` = run to exhaustion, as
    /// the paper does). Caps only affect *infeasible* (θ, dataset) points,
    /// which are reported as failures either way.
    pub fn max_steps(self) -> Option<usize> {
        match self {
            Scale::Smoke => Some(300),
            Scale::Default => Some(3000),
            Scale::Paper => None,
        }
    }

    /// Candidate-evaluation budget per run (`None` = unbounded, as the
    /// paper runs). Only binds on infeasible look-ahead runs, which finish
    /// `achieved: false` either way (see `AnonymizeConfig::max_trials`).
    pub fn trial_budget(self) -> Option<u64> {
        match self {
            Scale::Smoke => Some(2_000_000),
            Scale::Default => Some(50_000_000),
            Scale::Paper => None,
        }
    }

    /// θ sweep of Section 6: 100% down to 0% in steps of 10.
    pub fn thetas(self) -> Vec<f64> {
        (0..=10).rev().map(|k| k as f64 / 10.0).collect()
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "default" => Ok(Scale::Default),
            "paper" => Ok(Scale::Paper),
            other => Err(format!("unknown scale {other:?} (expected smoke, default or paper)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thetas_descend_from_one_to_zero() {
        let t = Scale::Default.thetas();
        assert_eq!(t.len(), 11);
        assert_eq!(t[0], 1.0);
        assert_eq!(t[10], 0.0);
        assert!(t.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn paper_scale_is_uncapped() {
        assert_eq!(Scale::Paper.max_steps(), None);
        assert_eq!(Scale::Paper.repeats(), 10);
        assert_eq!(Scale::Paper.fig11_sizes().last(), Some(&10_000));
    }

    #[test]
    fn parse_round_trip() {
        for (s, v) in [("smoke", Scale::Smoke), ("default", Scale::Default), ("paper", Scale::Paper)] {
            assert_eq!(s.parse::<Scale>().unwrap(), v);
        }
        assert!("huge".parse::<Scale>().is_err());
    }
}
