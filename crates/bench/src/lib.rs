//! Reproduction harness for the EDBT 2014 L-opacity evaluation.
//!
//! Every table and figure of the paper's Section 6 maps to one module under
//! [`experiments`]; the `repro` binary dispatches to them and writes one CSV
//! per experiment plus a paper-style console table. See DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured notes.
//!
//! The harness measures the *shape* of the paper's results (who wins, by
//! how much, where methods fail), not the absolute runtimes of a 2014
//! Xeon cluster; datasets are the calibrated synthetic stand-ins of
//! `lopacity-gen` (DESIGN.md §6).

pub mod methods;
pub mod output;
pub mod scale;
pub mod sweep;

pub mod experiments {
    //! One module per paper table/figure.
    pub mod compare;
    pub mod fig10;
    pub mod fig11_12;
    pub mod fig6;
    pub mod fig7;
    pub mod optgap;
    pub mod fig8;
    pub mod fig9;
    pub mod session_sweep;
    pub mod tables;
    pub mod thm1;
}

pub use methods::{Method, MethodRun};
pub use scale::Scale;
