//! θ-sweep runner implementing the paper's experimental protocol.
//!
//! Section 6: *"We repeat each experiment 10 times for each θ value, and
//! select the graph of minimum distortion."* and (Section 6.6, for runtime)
//! *"As soon as an algorithm finds a solution with less θ than the previous
//! achieved θ, we record the time for all the θ values in between as the
//! same time."* — the carry-forward rule below.

use crate::methods::{Method, MethodRun};
use lopacity::{Anonymizer, TypeSpec};
use lopacity_graph::Graph;
use lopacity_metrics::UtilityReport;

/// One (θ, method) cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Requested confidence threshold.
    pub theta: f64,
    /// Whether any repetition achieved the threshold.
    pub achieved: bool,
    /// Plot distortion (GADES failure convention applied), `None` = gap.
    pub distortion: Option<f64>,
    /// Wall-clock seconds of the selected repetition (carry-forward rule
    /// applied).
    pub secs: f64,
    /// `maxLO` actually reached by the selected repetition.
    pub achieved_lo: f64,
    /// Utility metrics of the selected repetition's graph (when requested).
    pub utility: Option<UtilityReport>,
}

/// Options for [`theta_sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Path-length threshold L.
    pub l: u8,
    /// Repetitions per θ (minimum-distortion selection).
    pub repeats: usize,
    /// Base RNG seed; repetition `i` uses `seed + i`.
    pub seed: u64,
    /// Per-run step cap (see [`crate::Scale::max_steps`]).
    pub max_steps: Option<usize>,
    /// Per-run candidate-evaluation cap (see [`crate::Scale::trial_budget`]).
    pub max_trials: Option<u64>,
    /// Compute the full utility report per point (costs one APSP per point).
    pub with_utility: bool,
}

/// Runs `method` over a descending θ sweep on `graph`.
///
/// All repetitions and θ values share one [`Anonymizer`] session: the
/// evaluator build (APSP + counters) is paid once per sweep — the seed and
/// θ vary per run, neither invalidates the cache. The build is primed
/// *before* the first timed run, so every recorded `secs` measures
/// anonymization work under the same convention (the one-shot
/// `Method::run_with_budget` points of Figures 10–12 still include their
/// private build, as they always did). The paper's protocol
/// (repeat-and-select, carry-forward) stays on top of that.
pub fn theta_sweep(
    graph: &Graph,
    method: Method,
    thetas: &[f64],
    opts: &SweepOptions,
) -> Vec<SweepPoint> {
    debug_assert!(thetas.windows(2).all(|w| w[0] >= w[1]), "thetas must descend");
    let mut session = Anonymizer::new(graph, &TypeSpec::DegreePairs)
        .config(lopacity::AnonymizeConfig::new(opts.l, 1.0));
    if method.uses_session() {
        session.initial_assessment(); // prime the build outside the clocks
    }
    let mut points: Vec<SweepPoint> = Vec::with_capacity(thetas.len());
    let mut carry: Option<SweepPoint> = None;
    for &theta in thetas {
        if let Some(prev) = &carry {
            // Carry-forward (paper protocol): a previous run that already
            // achieved a maxLO at or below this θ answers this cell free.
            if prev.achieved && prev.achieved_lo <= theta + 1e-9 {
                let mut reused = prev.clone();
                reused.theta = theta;
                points.push(reused);
                continue;
            }
            // Failure carry-forward: the greedy trajectories do not depend
            // on θ (θ only stops the loop), so a run that could not get
            // below `achieved_lo` at a looser θ repeats identically at any
            // stricter one.
            if !prev.achieved && prev.achieved_lo > theta {
                let mut reused = prev.clone();
                reused.theta = theta;
                points.push(reused);
                continue;
            }
        }
        let point = run_point(&mut session, method, theta, opts);
        carry = Some(point.clone());
        points.push(point);
    }
    points
}

fn run_point(
    session: &mut Anonymizer<'_>,
    method: Method,
    theta: f64,
    opts: &SweepOptions,
) -> SweepPoint {
    let graph = session.graph();
    let mut best: Option<MethodRun> = None;
    for rep in 0..opts.repeats.max(1) {
        let run = method.run_in(session, opts.l, theta, opts.seed + rep as u64, opts.max_steps, opts.max_trials);
        let better = match &best {
            None => true,
            Some(b) => match (run.outcome.achieved, b.outcome.achieved) {
                (true, false) => true,
                (false, _) => false,
                (true, true) => run.outcome.edits() < b.outcome.edits(),
            },
        };
        if better {
            best = Some(run);
        }
        // Deterministic methods need no repetition.
        if matches!(method, Method::GadedMax | Method::Gades) {
            break;
        }
    }
    let best = best.expect("at least one repetition ran");
    let utility = opts
        .with_utility
        .then(|| UtilityReport::compute(graph, &best.outcome.graph));
    SweepPoint {
        theta,
        achieved: best.outcome.achieved,
        distortion: best.plot_distortion(graph),
        secs: best.secs,
        achieved_lo: best.outcome.final_lo,
        utility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity_gen::Dataset;

    fn opts() -> SweepOptions {
        SweepOptions {
            l: 1,
            repeats: 2,
            seed: 5,
            max_steps: Some(300),
            max_trials: Some(1_000_000),
            with_utility: false,
        }
    }

    #[test]
    fn sweep_covers_all_thetas_in_order() {
        let g = Dataset::Gnutella.generate(60, 1);
        let thetas = [1.0, 0.8, 0.6, 0.4];
        let points = theta_sweep(&g, Method::Rem { la: 1 }, &thetas, &opts());
        assert_eq!(points.len(), 4);
        for (p, &t) in points.iter().zip(&thetas) {
            assert_eq!(p.theta, t);
        }
    }

    #[test]
    fn distortion_is_monotone_in_privacy() {
        // Stricter θ can only require at least as many edits (per selected
        // repetition this is not a theorem, but with carry-forward the
        // recorded series is monotone except across feasibility cliffs).
        let g = Dataset::Google.generate(60, 2);
        let thetas: Vec<f64> = (0..=10).rev().map(|k| k as f64 / 10.0).collect();
        let points = theta_sweep(&g, Method::Rem { la: 1 }, &thetas, &opts());
        let distortions: Vec<f64> = points.iter().filter_map(|p| p.distortion).collect();
        for w in distortions.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "distortion dropped as θ fell: {distortions:?}");
        }
    }

    #[test]
    fn carry_forward_reuses_overshooting_runs() {
        let g = Dataset::Gnutella.generate(60, 3);
        let thetas = [1.0, 0.9, 0.8];
        let points = theta_sweep(&g, Method::Rem { la: 1 }, &thetas, &opts());
        // θ=1.0 is satisfied by the input graph (LO ≤ 1 always); if its
        // maxLO is already below 0.9 and 0.8 the cells must be identical.
        if points[0].achieved_lo <= 0.8 {
            assert_eq!(points[0].secs, points[1].secs);
            assert_eq!(points[0].distortion, points[2].distortion);
        }
    }

    #[test]
    fn utility_reports_attach_when_requested() {
        let g = Dataset::Gnutella.generate(50, 4);
        let mut o = opts();
        o.with_utility = true;
        let points = theta_sweep(&g, Method::Rem { la: 1 }, &[0.5], &o);
        assert!(points[0].utility.is_some());
    }
}
