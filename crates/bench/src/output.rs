//! CSV + console output helpers for the reproduction harness.

use lopacity_util::{CsvWriter, Table};
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// Where an experiment writes its artifacts.
pub struct OutputSink {
    dir: PathBuf,
}

impl OutputSink {
    /// Creates (if needed) the output directory.
    pub fn new<P: AsRef<Path>>(dir: P) -> std::io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(OutputSink { dir: dir.as_ref().to_path_buf() })
    }

    /// Opens `<dir>/<name>.csv` with the given header.
    pub fn csv(&self, name: &str, header: &[&str]) -> std::io::Result<CsvWriter<BufWriter<File>>> {
        CsvWriter::create(self.dir.join(format!("{name}.csv")), header)
    }

    /// Prints a titled console table (the paper-style series view).
    pub fn print_table(&self, title: &str, table: &Table) {
        println!("\n== {title} ==");
        print!("{}", table.render());
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Formats an optional distortion as a percentage cell (`-` = gap).
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:.1}%", 100.0 * x),
        None => "-".to_string(),
    }
}

/// Formats seconds with enough precision for sub-millisecond runs.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.4}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_gaps() {
        assert_eq!(pct(Some(0.125)), "12.5%");
        assert_eq!(pct(None), "-");
    }

    #[test]
    fn secs_switches_precision() {
        assert_eq!(secs(12.3456), "12.35");
        assert_eq!(secs(0.01234), "0.0123");
    }

    #[test]
    fn sink_writes_csv() {
        let dir = std::env::temp_dir().join("lopacity-bench-output-test");
        let sink = OutputSink::new(&dir).unwrap();
        let mut w = sink.csv("probe", &["a", "b"]).unwrap();
        w.write_record(&[1, 2]).unwrap();
        w.flush().unwrap();
        drop(w);
        let text = std::fs::read_to_string(dir.join("probe.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
