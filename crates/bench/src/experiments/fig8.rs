//! Figure 8: mean of the per-vertex clustering-coefficient differences
//! vs θ.
//!
//! Three panels: (a) Wikipedia at L = 1 with all methods; (b) Epinions
//! (Trust) at L = 2 with our heuristics; (c) Epinions(Distrust) at la = 1
//! sweeping L ∈ {1..4}. The distrust sub-network is not separable from the
//! published Epinions statistics, so panel (c) uses a second, independently
//! seeded draw of the Epinions generator (same degree law; documented in
//! DESIGN.md §6).

use crate::methods::Method;
use crate::output::OutputSink;
use crate::scale::Scale;
use crate::sweep::{theta_sweep, SweepOptions};
use lopacity_gen::Dataset;
use lopacity_util::Table;

/// Runs all three panels; one CSV row per (panel, series, θ).
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let thetas = scale.thetas();
    let mut csv = sink.csv(
        "fig8_cc_diff_vs_theta",
        &["panel", "dataset", "L", "method", "theta", "mean_cc_diff", "achieved"],
    )?;

    // Panel (a): Wikipedia, L = 1, all seven methods.
    let wiki = Dataset::Wikipedia.generate(scale.sample_n(), seed);
    let series_a: Vec<(u8, Method)> = Method::PAPER_L1.iter().map(|&m| (1, m)).collect();
    panel(&mut csv, sink, scale, "a", "Wikipedia, L=1", &wiki, &series_a, &thetas, seed)?;

    // Panel (b): Epinions(Trust), L = 2, our heuristics.
    let trust = Dataset::Epinions.generate(scale.sample_n(), seed);
    let series_b: Vec<(u8, Method)> = Method::OURS.iter().map(|&m| (2, m)).collect();
    panel(&mut csv, sink, scale, "b", "Epinions(Trust), L=2", &trust, &series_b, &thetas, seed)?;

    // Panel (c): Epinions(Distrust), la = 1, L ∈ 1..4.
    let distrust = Dataset::Epinions.generate(scale.sample_n(), seed ^ 0xD157_0457);
    let series_c: Vec<(u8, Method)> = (1..=4u8)
        .flat_map(|l| [(l, Method::Rem { la: 1 }), (l, Method::RemIns { la: 1 })])
        .collect();
    panel(&mut csv, sink, scale, "c", "Epinions(Distrust), la=1", &distrust, &series_c, &thetas, seed)?;

    csv.flush()
}

#[allow(clippy::too_many_arguments)]
fn panel<W: std::io::Write>(
    csv: &mut lopacity_util::CsvWriter<W>,
    sink: &OutputSink,
    scale: Scale,
    key: &str,
    title: &str,
    g: &lopacity_graph::Graph,
    series: &[(u8, Method)],
    thetas: &[f64],
    seed: u64,
) -> std::io::Result<()> {
    let mut table = Table::new(
        std::iter::once("theta".to_string())
            .chain(series.iter().map(|(l, m)| format!("{m} L={l}")))
            .collect::<Vec<_>>(),
    );
    let mut columns = Vec::new();
    for &(l, method) in series {
        let opts = SweepOptions {
            l,
            repeats: scale.repeats(),
            seed,
            max_steps: scale.max_steps(),
                max_trials: scale.trial_budget(),
            with_utility: true,
        };
        let points = theta_sweep(g, method, thetas, &opts);
        for p in &points {
            csv.write_row(&[
                key.to_string(),
                title.to_string(),
                l.to_string(),
                method.name(),
                format!("{:.2}", p.theta),
                p.utility
                    .as_ref()
                    .map(|u| format!("{:.6}", u.mean_cc_diff))
                    .unwrap_or_default(),
                p.achieved.to_string(),
            ])?;
        }
        columns.push(points);
    }
    for (row, &theta) in thetas.iter().enumerate() {
        let mut cells = vec![format!("{:.0}%", theta * 100.0)];
        for points in &columns {
            cells.push(
                points[row]
                    .utility
                    .as_ref()
                    .map(|u| format!("{:.4}", u.mean_cc_diff))
                    .unwrap_or("-".into()),
            );
        }
        table.add_row(cells);
    }
    sink.print_table(&format!("Figure 8({key}): mean |ΔCC| vs θ — {title}"), &table);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_covers_three_panels() {
        let dir = std::env::temp_dir().join(format!("lopacity-fig8-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 5).unwrap();
        let text = std::fs::read_to_string(dir.join("fig8_cc_diff_vs_theta.csv")).unwrap();
        for panel in ["a,", "b,", "c,"] {
            assert!(text.lines().any(|l| l.starts_with(panel)), "missing panel {panel}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
