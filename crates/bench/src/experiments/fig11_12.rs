//! Figures 11 and 12: runtime and distortion vs graph size on ACM-like
//! co-authorship graphs, Edge Removal at L = 1, θ ∈ {90..50}%.
//!
//! One run produces both figures (the paper's longest experiment — 16 days
//! at 10k/θ=50% on their testbed; the incremental evaluator brings the
//! default scale to minutes, and `--scale paper` still covers 1k–10k).

use crate::methods::Method;
use crate::output::{secs, OutputSink};
use crate::scale::Scale;
use lopacity_gen::Dataset;
use lopacity_util::Table;

/// The θ values of Figures 11/12.
pub const THETAS: [f64; 5] = [0.9, 0.8, 0.7, 0.6, 0.5];

/// Runs the sweep; one CSV row per (size, θ) carrying both metrics.
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let sizes = scale.fig11_sizes();
    let mut csv = sink.csv(
        "fig11_12_scaling",
        &["size", "edges", "theta", "secs", "distortion", "achieved"],
    )?;
    let mut runtime_table = Table::new(
        std::iter::once("|V|".to_string())
            .chain(THETAS.iter().map(|t| format!("θ={:.0}%", t * 100.0)))
            .collect::<Vec<_>>(),
    );
    let mut distortion_table = runtime_table.clone();
    for &n in &sizes {
        let g = Dataset::AcmDl.generate(n, seed);
        let mut time_cells = vec![n.to_string()];
        let mut dist_cells = vec![n.to_string()];
        for &theta in &THETAS {
            let run = Method::Rem { la: 1 }.run_with_budget(&g, 1, theta, seed, scale.max_steps(), scale.trial_budget());
            let distortion = run.outcome.distortion(&g);
            csv.write_row(&[
                n.to_string(),
                g.num_edges().to_string(),
                format!("{theta:.2}"),
                format!("{:.6}", run.secs),
                format!("{distortion:.6}"),
                run.outcome.achieved.to_string(),
            ])?;
            time_cells.push(secs(run.secs));
            dist_cells.push(format!("{:.2}%", distortion * 100.0));
        }
        runtime_table.add_row(time_cells);
        distortion_table.add_row(dist_cells);
    }
    sink.print_table("Figure 11: runtime (s) vs size — ACM, Rem la=1, L=1", &runtime_table);
    sink.print_table("Figure 12: distortion vs size — ACM, Rem la=1, L=1", &distortion_table);
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_covers_sizes_and_thetas() {
        let dir = std::env::temp_dir().join(format!("lopacity-fig11-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 11).unwrap();
        let text = std::fs::read_to_string(dir.join("fig11_12_scaling.csv")).unwrap();
        assert_eq!(text.lines().count(), 1 + 2 * THETAS.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
