//! Figure 9: runtime vs θ on Google samples of 100, 500 and 1000 vertices
//! (L = 1, all seven methods), with the paper's carry-forward recording
//! rule.

use crate::methods::Method;
use crate::output::{secs, OutputSink};
use crate::scale::Scale;
use crate::sweep::{theta_sweep, SweepOptions};
use lopacity_gen::Dataset;
use lopacity_util::Table;

/// Runs one panel per sample size; one CSV row per (size, method, θ).
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let thetas = scale.thetas();
    let mut csv = sink.csv(
        "fig9_runtime_vs_theta",
        &["size", "method", "theta", "secs", "achieved"],
    )?;
    for &n in &scale.fig9_sizes() {
        let g = Dataset::Google.generate(n, seed);
        let mut table = Table::new(
            std::iter::once("theta".to_string())
                .chain(Method::PAPER_L1.iter().map(|m| m.name()))
                .collect::<Vec<_>>(),
        );
        let mut columns = Vec::new();
        for method in Method::PAPER_L1 {
            let opts = SweepOptions {
                l: 1,
                repeats: scale.repeats().min(3), // runtime panels need medians, not minima
                seed,
                max_steps: scale.max_steps(),
                max_trials: scale.trial_budget(),
                with_utility: false,
            };
            let points = theta_sweep(&g, method, &thetas, &opts);
            for p in &points {
                csv.write_row(&[
                    n.to_string(),
                    method.name(),
                    format!("{:.2}", p.theta),
                    format!("{:.6}", p.secs),
                    p.achieved.to_string(),
                ])?;
            }
            columns.push(points);
        }
        for (row, &theta) in thetas.iter().enumerate() {
            let mut cells = vec![format!("{:.0}%", theta * 100.0)];
            for points in &columns {
                cells.push(secs(points[row].secs));
            }
            table.add_row(cells);
        }
        sink.print_table(&format!("Figure 9: runtime (s) vs θ — Google |V|={n}, L=1"), &table);
    }
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_times_all_methods() {
        let dir = std::env::temp_dir().join(format!("lopacity-fig9-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 7).unwrap();
        let text = std::fs::read_to_string(dir.join("fig9_runtime_vs_theta.csv")).unwrap();
        assert!(text.lines().count() > 2 * 7 * 11);
        std::fs::remove_dir_all(&dir).ok();
    }
}
