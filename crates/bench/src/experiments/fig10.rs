//! Figure 10: runtime comparison (log scale in the paper) of Rem and
//! Rem-Ins for L ∈ {1, 2} on Gnutella samples of 100/500/1000 vertices.
//!
//! The paper does not pin the θ for this chart; we use θ = 10% — strict
//! enough that every Gnutella stand-in needs real work (their initial
//! opacity is ≈ 0.35, so looser targets are satisfied by the input graph
//! and would measure nothing). Recorded in the CSV for transparency.

use crate::methods::Method;
use crate::output::{secs, OutputSink};
use crate::scale::Scale;
use lopacity_gen::Dataset;
use lopacity_util::Table;

/// θ used for the bar chart.
pub const FIG10_THETA: f64 = 0.1;

/// Runs the grid; one CSV row per (algorithm, L, size).
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let sizes = scale.fig10_sizes();
    let mut csv = sink.csv("fig10_runtime_by_size", &["method", "L", "size", "secs", "achieved"])?;
    let series: Vec<(Method, u8)> = vec![
        (Method::Rem { la: 1 }, 1),
        (Method::Rem { la: 1 }, 2),
        (Method::RemIns { la: 1 }, 1),
        (Method::RemIns { la: 1 }, 2),
    ];
    let mut table = Table::new(
        std::iter::once("algorithm".to_string())
            .chain(sizes.iter().map(|n| format!("|V|={n}")))
            .collect::<Vec<_>>(),
    );
    for &(method, l) in &series {
        let mut cells = vec![format!("{method} L={l}")];
        for &n in &sizes {
            let g = Dataset::Gnutella.generate(n, seed);
            let run = method.run_with_budget(&g, l, FIG10_THETA, seed, scale.max_steps(), scale.trial_budget());
            csv.write_row(&[
                method.name(),
                l.to_string(),
                n.to_string(),
                format!("{:.6}", run.secs),
                run.outcome.achieved.to_string(),
            ])?;
            cells.push(secs(run.secs));
        }
        table.add_row(cells);
    }
    sink.print_table(
        &format!("Figure 10: runtime (s) by size — Gnutella, θ={FIG10_THETA}"),
        &table,
    );
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_covers_the_grid() {
        let dir = std::env::temp_dir().join(format!("lopacity-fig10-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 9).unwrap();
        let text = std::fs::read_to_string(dir.join("fig10_runtime_by_size.csv")).unwrap();
        // 4 series x 2 smoke sizes + header.
        assert_eq!(text.lines().count(), 1 + 4 * 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
