//! Ablation (beyond the paper): how far from optimal is the greedy?
//!
//! Section 4 dismisses exhaustive search as intractable and Theorem 1 shows
//! why, but on tiny instances the exact minimum-removal solution *is*
//! computable — giving the greedy Edge Removal heuristic an optimality
//! yardstick the paper never had. Reports, per instance, the exact optimum,
//! the greedy removal count at la = 1 and la = 2, and the gap.

use crate::output::OutputSink;
use crate::scale::Scale;
use lopacity::{AnonymizeConfig, Anonymizer, ExactMinRemovals, Removal, TypeSpec};
use lopacity_gen::{er::gnm, Dataset};
use lopacity_util::Table;

/// Runs the ablation on a battery of tiny instances.
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let mut csv = sink.csv(
        "optgap_greedy_vs_exact",
        &["instance", "edges", "theta", "exact", "greedy_la1", "greedy_la2", "gap_la1"],
    )?;
    let mut table = Table::new(vec![
        "instance", "|E|", "theta", "exact", "Rem la=1", "Rem la=2", "gap",
    ]);
    let count = if scale == Scale::Smoke { 4 } else { 10 };
    let mut instances: Vec<(String, lopacity_graph::Graph)> = vec![(
        "figure-1".to_string(),
        lopacity_graph::Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .expect("simple"),
    )];
    for i in 0..count {
        instances.push((format!("er-{i}"), gnm(8, 12, seed + i as u64)));
        instances.push((
            format!("gnutella-{i}"),
            Dataset::Gnutella.generate(10, seed + 100 + i as u64),
        ));
    }
    for theta in [0.5, 0.3] {
        for (name, g) in &instances {
            if g.num_edges() > 16 {
                continue; // keep the exact search instant
            }
            // One session per instance: exact, la=1 and la=2 all reuse the
            // same evaluator build (θ/seed/look-ahead don't invalidate it).
            let mut session = Anonymizer::new(g, &TypeSpec::DegreePairs)
                .config(AnonymizeConfig::new(1, theta).with_seed(seed));
            let exact = session.run(ExactMinRemovals::default());
            let la1 = session.run(Removal);
            session.set_config(
                AnonymizeConfig::new(1, theta).with_lookahead(2).with_seed(seed),
            );
            let la2 = session.run(Removal);
            debug_assert!(exact.achieved && la1.achieved && la2.achieved);
            let gap = la1.removed.len() as i64 - exact.removed.len() as i64;
            csv.write_row(&[
                name.clone(),
                g.num_edges().to_string(),
                format!("{theta:.1}"),
                exact.removed.len().to_string(),
                la1.removed.len().to_string(),
                la2.removed.len().to_string(),
                gap.to_string(),
            ])?;
            table.add_row(vec![
                format!("{name} θ={theta:.1}"),
                g.num_edges().to_string(),
                format!("{theta:.1}"),
                exact.removed.len().to_string(),
                la1.removed.len().to_string(),
                la2.removed.len().to_string(),
                format!("+{gap}"),
            ]);
        }
    }
    sink.print_table("Ablation: greedy Edge Removal vs exact optimum (L=1)", &table);
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_reports_gaps() {
        let dir = std::env::temp_dir().join(format!("lopacity-optgap-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 3).unwrap();
        let text = std::fs::read_to_string(dir.join("optgap_greedy_vs_exact.csv")).unwrap();
        assert!(text.contains("figure-1"));
        // Greedy can never beat the optimum.
        for line in text.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let exact: usize = cells[3].parse().unwrap();
            let la1: usize = cells[4].parse().unwrap();
            assert!(la1 >= exact, "greedy {la1} below optimum {exact}: {line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
