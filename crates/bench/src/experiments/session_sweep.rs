//! Session-sweep benchmark: APSP-sharing multi-θ sweeps vs independent
//! runs (the ROADMAP's "multi-θ sweeps sharing APSP work" item, wired for
//! CI trend tracking).
//!
//! Runs `Anonymizer::sweep` over a descending θ ladder on the Gnutella
//! stand-in in both [`SweepMode`]s and records, per (mode, θ): steps,
//! cumulative and newly spent trials, edits, the reached `maxLO`, and the
//! per-θ segment wall-clock (`SweepRun::secs`; the shared build is outside
//! every per-θ clock). `resume` must spend strictly fewer total trials than
//! `independent` whenever more than one θ requires work, while reporting
//! identical per-θ outcomes — both facts are checked here at run time (and
//! property-tested in `tests/tests/session_api.rs`).

use crate::output::{secs, OutputSink};
use crate::scale::Scale;
use lopacity::{AnonymizeConfig, Anonymizer, Removal, SweepMode, SweepRun, TypeSpec};
use lopacity_gen::Dataset;
use lopacity_util::Table;
use std::time::Instant;

/// θ ladder as fractions of the instance's *initial* `maxLO` (descending,
/// as `sweep` runs them). Anchoring to the measured starting point keeps
/// every rung strictly below it, so each θ demands real scanning work at
/// any scale and seed — a fixed absolute ladder silently no-ops whenever
/// the stand-in starts below it.
const THETA_FRACTIONS: [f64; 5] = [0.8, 0.65, 0.5, 0.4, 0.3];

/// Graph size per scale; the CI job runs `--scale smoke` (n ≈ 500).
fn size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 500,
        Scale::Default => 1000,
        Scale::Paper => 2000,
    }
}

/// Runs both sweep modes and writes `sweep_session.csv`.
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let n = size(scale);
    let g = Dataset::Gnutella.generate(n, seed);
    // One session serves the whole experiment: the θ-ladder probe and both
    // sweep modes reuse a single evaluator build (the point of the bench).
    let mut session = Anonymizer::new(&g, &TypeSpec::DegreePairs)
        .config(AnonymizeConfig::new(1, 0.5).with_seed(seed));
    let initial = session.initial_assessment().as_f64();
    let thetas: Vec<f64> = THETA_FRACTIONS.iter().map(|f| f * initial).collect();
    session.set_config(
        AnonymizeConfig::new(1, *thetas.last().expect("non-empty ladder")).with_seed(seed),
    );
    let mut csv = sink.csv(
        "sweep_session",
        &[
            "mode", "n", "theta", "achieved", "steps", "trials", "new_trials", "removed",
            "inserted", "max_lo", "secs",
        ],
    )?;
    println!("initial maxLO = {initial:.4}; θ ladder = {thetas:.4?}");
    let mut table =
        Table::new(vec!["mode", "theta", "steps", "new_trials", "edits", "maxLO", "secs"]);
    let mut totals = Vec::new();
    let mut outcomes: Vec<Vec<SweepRun>> = Vec::new();
    for mode in [SweepMode::Resume, SweepMode::Independent] {
        let mode_name = match mode {
            SweepMode::Resume => "resume",
            SweepMode::Independent => "independent",
        };
        session.set_sweep_mode(mode);
        let start = Instant::now();
        let runs = session.sweep(&thetas, Removal);
        let elapsed = start.elapsed().as_secs_f64();
        for run in &runs {
            csv.write_row(&[
                mode_name.to_string(),
                n.to_string(),
                format!("{:.4}", run.theta),
                run.outcome.achieved.to_string(),
                run.outcome.steps.to_string(),
                run.outcome.trials.to_string(),
                run.new_trials.to_string(),
                run.outcome.removed.len().to_string(),
                run.outcome.inserted.len().to_string(),
                format!("{:.6}", run.outcome.final_lo),
                format!("{:.6}", run.secs),
            ])?;
            table.add_row(vec![
                mode_name.to_string(),
                format!("{:.3}", run.theta),
                run.outcome.steps.to_string(),
                run.new_trials.to_string(),
                run.outcome.edits().to_string(),
                format!("{:.4}", run.outcome.final_lo),
                secs(run.secs),
            ]);
        }
        totals.push((mode_name, runs.iter().map(|r| r.new_trials).sum::<u64>(), elapsed));
        outcomes.push(runs);
    }
    sink.print_table(
        &format!(
            "Session sweep: Rem la=1, Gnutella |V|={n}, θ {:.3}→{:.3}, L=1",
            thetas[0],
            thetas[thetas.len() - 1]
        ),
        &table,
    );
    let (resumed, independent) = (&totals[0], &totals[1]);
    println!(
        "total trials — {}: {} in {:.2}s, {}: {} in {:.2}s ({:.2}x trial ratio)",
        resumed.0,
        resumed.1,
        resumed.2,
        independent.0,
        independent.1,
        independent.2,
        independent.1 as f64 / resumed.1.max(1) as f64,
    );
    // Run-time sanity: the modes must agree on every per-θ outcome, and
    // resume must not spend more trials than independent.
    for (a, b) in outcomes[0].iter().zip(&outcomes[1]) {
        assert_eq!(a.outcome.removed, b.outcome.removed, "modes diverged at θ = {}", a.theta);
        assert_eq!(a.outcome.graph, b.outcome.graph, "graphs diverged at θ = {}", a.theta);
    }
    assert!(
        resumed.1 <= independent.1,
        "resumed sweep spent more trials ({}) than independent ({})",
        resumed.1,
        independent.1
    );
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_writes_both_modes() {
        let dir = std::env::temp_dir().join(format!("lopacity-sweep-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 11).unwrap();
        let text = std::fs::read_to_string(dir.join("sweep_session.csv")).unwrap();
        assert!(text.contains("resume"));
        assert!(text.contains("independent"));
        // Header + one row per (mode, θ).
        assert_eq!(text.lines().count(), 1 + 2 * THETA_FRACTIONS.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
