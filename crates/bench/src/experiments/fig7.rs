//! Figure 7: Earth-Mover's Distance of (a) degree and (b) geodesic
//! distributions vs θ, on the Enron sample at L = 1, all seven methods.

use crate::methods::Method;
use crate::output::OutputSink;
use crate::scale::Scale;
use crate::sweep::{theta_sweep, SweepOptions};
use lopacity_gen::Dataset;
use lopacity_util::Table;

/// Runs both panels; one CSV row per (method, θ).
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let thetas = scale.thetas();
    let g = Dataset::Enron.generate(scale.sample_n(), seed);
    let mut csv = sink.csv(
        "fig7_emd_vs_theta",
        &["method", "theta", "emd_degree", "emd_geodesic", "achieved"],
    )?;
    let mut degree_table = Table::new(
        std::iter::once("theta".to_string())
            .chain(Method::PAPER_L1.iter().map(|m| m.name()))
            .collect::<Vec<_>>(),
    );
    let mut geo_table = degree_table.clone();
    let mut columns = Vec::new();
    for method in Method::PAPER_L1 {
        let opts = SweepOptions {
            l: 1,
            repeats: scale.repeats(),
            seed,
            max_steps: scale.max_steps(),
                max_trials: scale.trial_budget(),
            with_utility: true,
        };
        let points = theta_sweep(&g, method, &thetas, &opts);
        for p in &points {
            let (deg, geo) = p
                .utility
                .as_ref()
                .map(|u| (u.emd_degree, u.emd_geodesic))
                .unwrap_or((f64::NAN, f64::NAN));
            csv.write_row(&[
                method.name(),
                format!("{:.2}", p.theta),
                format!("{deg:.6}"),
                format!("{geo:.6}"),
                p.achieved.to_string(),
            ])?;
        }
        columns.push(points);
    }
    for (row, &theta) in thetas.iter().enumerate() {
        let mut deg_cells = vec![format!("{:.0}%", theta * 100.0)];
        let mut geo_cells = deg_cells.clone();
        for points in &columns {
            let u = points[row].utility.as_ref();
            deg_cells.push(u.map(|u| format!("{:.4}", u.emd_degree)).unwrap_or("-".into()));
            geo_cells.push(u.map(|u| format!("{:.4}", u.emd_geodesic)).unwrap_or("-".into()));
        }
        degree_table.add_row(deg_cells);
        geo_table.add_row(geo_cells);
    }
    sink.print_table("Figure 7(a): EMD of degree distributions vs θ — Enron, L=1", &degree_table);
    sink.print_table("Figure 7(b): EMD of geodesic distributions vs θ — Enron, L=1", &geo_table);
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_produces_emd_columns() {
        let dir = std::env::temp_dir().join(format!("lopacity-fig7-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 3).unwrap();
        let text = std::fs::read_to_string(dir.join("fig7_emd_vs_theta.csv")).unwrap();
        assert!(text.starts_with("method,theta,emd_degree,emd_geodesic,achieved"));
        assert!(text.lines().count() >= 7 * 11);
        std::fs::remove_dir_all(&dir).ok();
    }
}
