//! Theorem 1 demonstration: solve the paper's 3-SAT example through
//! L-opacification.
//!
//! Not a table or figure, but the paper's hardness construction deserves an
//! executable witness: build the Figure 3 graph, anonymize it with Edge
//! Removal under the reduction parameters, decode the removals into a truth
//! assignment and check it against a brute-force SAT solve.

use crate::output::OutputSink;
use crate::scale::Scale;
use lopacity::{AnonymizeConfig, Anonymizer, Removal};
use lopacity_sat::{brute_force_sat, decode_assignment, Cnf3, Reduction, REDUCTION_L, REDUCTION_THETA};
use lopacity_util::Table;

/// Runs the demonstration on the paper's example plus random instances.
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let mut csv = sink.csv(
        "thm1_reduction",
        &["instance", "vars", "clauses", "sat", "greedy_removals", "decoded_ok", "assignment_satisfies"],
    )?;
    let mut table = Table::new(vec![
        "instance", "vars", "clauses", "SAT?", "removals", "decoded", "satisfies",
    ]);
    let instances: Vec<(String, Cnf3)> = std::iter::once(("paper-example".to_string(), Cnf3::paper_example()))
        .chain((0..if scale == Scale::Smoke { 2 } else { 4 }).map(|i| {
            (format!("random-{i}"), Cnf3::random(4, 5 + i, seed + i as u64))
        }))
        .collect();
    for (name, cnf) in instances {
        let reduction = Reduction::build(&cnf);
        let sat = brute_force_sat(&cnf);
        let config = AnonymizeConfig::new(REDUCTION_L, REDUCTION_THETA).with_seed(seed);
        let outcome =
            Anonymizer::new(&reduction.graph, &reduction.spec).config(config).run(Removal);
        let decoded = decode_assignment(&reduction, &outcome.removed);
        let satisfies = decoded.as_ref().map(|a| cnf.eval(a)).unwrap_or(false);
        csv.write_row(&[
            name.clone(),
            cnf.num_vars.to_string(),
            cnf.clauses.len().to_string(),
            sat.is_some().to_string(),
            outcome.removed.len().to_string(),
            decoded.is_ok().to_string(),
            satisfies.to_string(),
        ])?;
        table.add_row(vec![
            name,
            cnf.num_vars.to_string(),
            cnf.clauses.len().to_string(),
            if sat.is_some() { "yes" } else { "no" }.to_string(),
            outcome.removed.len().to_string(),
            if decoded.is_ok() { "ok" } else { "n/a" }.to_string(),
            if satisfies { "yes" } else { "-" }.to_string(),
        ]);
    }
    sink.print_table(
        "Theorem 1: greedy L-opacification as a 3-SAT oracle (L=3, θ=2/3)",
        &table,
    );
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn demonstration_runs() {
        let dir = std::env::temp_dir().join(format!("lopacity-thm1-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 1).unwrap();
        let text = std::fs::read_to_string(dir.join("thm1_reduction.csv")).unwrap();
        assert!(text.contains("paper-example"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
