//! Cross-model comparison experiment (`repro compare`): the paper's
//! rivals — degree-sequence k-anonymity and (k,ℓ)-adjacency anonymity —
//! against L-opacity removal and removal/insertion on the Gnutella
//! stand-in, at a matched edit budget.
//!
//! One [`lopacity_models::run_comparison`] call does the work: the
//! unbudgeted L-opacity removal run fixes the budget, every rival runs
//! under it through the same session, and every output is scored by every
//! model's certifier plus the utility suite. Extra L values add
//! budget-matched L-opacity rows (shared per-L evaluator builds via the
//! session's keyed cache) and per-L leakage columns, so the CSV doubles
//! as a leakage-versus-L curve for each rival's output.
//!
//! Artifacts: `COMPARE.json` (the full report) and `compare_models.csv`
//! (one row per model, fixed utility columns plus one
//! certified/violations/leakage triple per certifier column).

use crate::output::{secs, OutputSink};
use crate::scale::Scale;
use lopacity::opacity::opacity_report;
use lopacity::{StoreBackend, TypeSpec};
use lopacity_gen::Dataset;
use lopacity_models::CompareSpec;
use lopacity_util::Table;

/// Graph size per scale; the CI job runs `--scale smoke`. Sizes sit below
/// the other experiments' because the removal/insertion rival scans every
/// non-edge (Θ(|V|²) candidates) per inserted edge.
fn size(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 150,
        Scale::Default => 500,
        Scale::Paper => 1000,
    }
}

/// Runs the comparison and writes `COMPARE.json` + `compare_models.csv`.
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let n = size(scale);
    let g = Dataset::Gnutella.generate(n, seed);
    // θ anchored well below the measured initial maxLO (a fixed absolute
    // θ silently no-ops whenever the stand-in starts under it, and the
    // per-type LO fractions are coarsely quantized near the top, so a
    // timid fraction leaves a degenerate budget of 1 edit). L = 2
    // exercises real distance work; k = 5 is the paper literature's usual
    // anonymity level; ℓ stays 1 beyond toy sizes (certification is
    // O(|V|^ℓ)); the extra L values chart leakage on both sides of L = 2.
    let l = 2;
    let initial = opacity_report(&g, &TypeSpec::DegreePairs, l).max_lo.as_f64();
    let theta = 0.2 * initial;
    let spec = CompareSpec::new(l, theta, 5, 1)
        .with_seed(seed)
        .with_store(StoreBackend::Auto)
        .with_ls(&[1, 3]);
    println!(
        "comparing models on Gnutella |V|={} |E|={} (L={}, initial maxLO={:.4}, θ={:.4}, k={}, ℓ={})",
        g.num_vertices(),
        g.num_edges(),
        spec.l,
        initial,
        spec.theta,
        spec.k,
        spec.ell
    );
    let report = lopacity_models::run_comparison(&g, &spec);

    std::fs::write(sink.dir().join("COMPARE.json"), report.to_json())?;
    let mut csv = report.csv_header();
    csv.push('\n');
    for row in report.csv_rows() {
        csv.push_str(&row);
        csv.push('\n');
    }
    std::fs::write(sink.dir().join("compare_models.csv"), csv)?;

    let mut header = vec![
        "model".to_string(),
        "achieved".to_string(),
        "edits".to_string(),
        "distortion".to_string(),
        "secs".to_string(),
    ];
    header.extend(report.certifiers.iter().map(|c| format!("leak[{c}]")));
    let mut table = Table::new(header);
    for row in &report.rows {
        let mut cells = vec![
            row.model.clone(),
            row.achieved.to_string(),
            format!("-{} +{}", row.removed, row.inserted),
            format!("{:.1}%", 100.0 * row.utility.distortion),
            secs(row.secs),
        ];
        cells.extend(row.cells.iter().map(|c| format!("{:.4}", c.leakage)));
        table.add_row(cells);
    }
    sink.print_table(
        &format!("Model comparison: Gnutella |V|={n}, matched budget {}", report.budget),
        &table,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_writes_json_and_csv() {
        let dir = std::env::temp_dir().join(format!("lopacity-compare-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        run(Scale::Smoke, &sink, 13).unwrap();
        let json = std::fs::read_to_string(dir.join("COMPARE.json")).unwrap();
        for needle in ["\"l-opacity-rem\"", "\"k-degree\"", "\"kl-adjacency\"", "\"budget\""] {
            assert!(json.contains(needle), "COMPARE.json missing {needle}");
        }
        let csv = std::fs::read_to_string(dir.join("compare_models.csv")).unwrap();
        assert!(csv.starts_with("model,"));
        assert!(csv.lines().count() >= 1 + 4, "at least the four core model rows");
        std::fs::remove_dir_all(&dir).ok();
    }
}
