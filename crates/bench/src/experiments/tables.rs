//! Tables 1–3: dataset descriptions and properties.

use crate::output::OutputSink;
use crate::scale::Scale;
use lopacity_gen::Dataset;
use lopacity_metrics::GraphStats;
use lopacity_util::Table;

/// **Table 1** — the original datasets (published sizes and domains; these
/// are the registry's constants, printed for the record).
pub fn table1(_scale: Scale, sink: &OutputSink) -> std::io::Result<()> {
    let mut csv = sink.csv("table1", &["dataset", "nodes", "links", "node_desc", "link_desc"])?;
    let mut table = Table::new(vec!["Data Set", "Nodes", "Links", "Nodes are", "Links are"]);
    for d in Dataset::ALL {
        let s = d.spec();
        csv.write_row(&[
            s.name,
            &s.full_nodes.to_string(),
            &s.full_links.to_string(),
            s.node_desc,
            s.link_desc,
        ])?;
        table.add_row(vec![
            s.name.to_string(),
            s.full_nodes.to_string(),
            s.full_links.to_string(),
            s.node_desc.to_string(),
            s.link_desc.to_string(),
        ]);
    }
    csv.flush()?;
    sink.print_table("Table 1: original datasets (paper constants)", &table);
    Ok(())
}

/// **Table 2** — properties of the (scaled-down synthetic stand-ins for
/// the) original datasets, next to the paper's published values.
pub fn table2(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let n = scale.table2_n();
    let mut csv = sink.csv(
        "table2",
        &[
            "dataset", "scaled_n", "diameter", "avg_deg", "stdd", "acc", "paper_diameter",
            "paper_avg_deg", "paper_stdd", "paper_acc",
        ],
    )?;
    let mut table = Table::new(vec![
        "Data Set", "Diam", "AvgDeg", "STDD", "ACC", "| paper:", "Diam", "AvgDeg", "STDD", "ACC",
    ]);
    for d in Dataset::ALL {
        let s = d.spec();
        let g = d.scaled_full(n.min(s.full_nodes), seed);
        let stats = GraphStats::compute(&g);
        csv.write_row(&[
            s.name.to_string(),
            g.num_vertices().to_string(),
            stats.diameter.to_string(),
            format!("{:.2}", stats.avg_degree),
            format!("{:.2}", stats.degree_stdd),
            format!("{:.4}", stats.acc),
            s.full_diameter.to_string(),
            format!("{:.1}", s.full_avg_degree),
            format!("{:.2}", s.full_degree_stdd),
            format!("{:.4}", s.full_acc),
        ])?;
        table.add_row(vec![
            s.name.to_string(),
            stats.diameter.to_string(),
            format!("{:.2}", stats.avg_degree),
            format!("{:.2}", stats.degree_stdd),
            format!("{:.4}", stats.acc),
            "|".to_string(),
            s.full_diameter.to_string(),
            format!("{:.1}", s.full_avg_degree),
            format!("{:.2}", s.full_degree_stdd),
            format!("{:.4}", s.full_acc),
        ]);
    }
    csv.flush()?;
    sink.print_table(
        &format!("Table 2: dataset properties (synthetic stand-ins at n={n} vs paper)"),
        &table,
    );
    Ok(())
}

/// The (dataset, sample size) rows of Table 3.
pub const TABLE3_ROWS: [(Dataset, usize); 12] = [
    (Dataset::Google, 100),
    (Dataset::Google, 500),
    (Dataset::Google, 1000),
    (Dataset::BerkeleyStanford, 500),
    (Dataset::Epinions, 100),
    (Dataset::Enron, 100),
    (Dataset::Enron, 500),
    (Dataset::Gnutella, 100),
    (Dataset::Gnutella, 500),
    (Dataset::Gnutella, 1000),
    (Dataset::Wikipedia, 100),
    (Dataset::Wikipedia, 500),
];

/// **Table 3** — properties of the sampled experiment inputs.
pub fn table3(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let mut csv = sink.csv(
        "table3",
        &["dataset", "nodes", "links", "diameter", "avg_deg", "stdd", "acc", "paper_links", "paper_avg_deg", "paper_acc"],
    )?;
    let mut table = Table::new(vec![
        "Data Set", "Nodes", "Links", "Diam", "AvgDeg", "STDD", "ACC",
    ]);
    for (d, n) in TABLE3_ROWS {
        // Smoke scale shrinks every sample proportionally.
        let n = if scale == Scale::Smoke { n / 5 } else { n };
        let g = d.generate(n, seed);
        let stats = GraphStats::compute(&g);
        let spec = d.spec();
        let target_avg = spec.interpolate_avg_degree(n);
        csv.write_row(&[
            spec.name.to_string(),
            n.to_string(),
            stats.links.to_string(),
            stats.diameter.to_string(),
            format!("{:.2}", stats.avg_degree),
            format!("{:.2}", stats.degree_stdd),
            format!("{:.4}", stats.acc),
            format!("{:.0}", target_avg * n as f64 / 2.0),
            format!("{target_avg:.2}"),
            format!("{:.2}", spec.interpolate_acc(n)),
        ])?;
        table.add_row(vec![
            format!("{} {}", spec.name, n),
            n.to_string(),
            stats.links.to_string(),
            stats.diameter.to_string(),
            format!("{:.2}", stats.avg_degree),
            format!("{:.2}", stats.degree_stdd),
            format!("{:.4}", stats.acc),
        ]);
    }
    csv.flush()?;
    sink.print_table("Table 3: sampled graph properties (synthetic)", &table);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(test: &str) -> OutputSink {
        // One directory per test: parallel tests must not delete each
        // other's artifacts.
        let dir =
            std::env::temp_dir().join(format!("lopacity-tables-{test}-{}", std::process::id()));
        OutputSink::new(dir).unwrap()
    }

    #[test]
    fn table1_writes_all_seven_rows() {
        let s = sink("t1");
        table1(Scale::Smoke, &s).unwrap();
        let text = std::fs::read_to_string(s.dir().join("table1.csv")).unwrap();
        assert_eq!(text.lines().count(), 8); // header + 7 datasets
        assert!(text.contains("Google"));
        std::fs::remove_dir_all(s.dir()).ok();
    }

    #[test]
    fn table3_covers_every_paper_row() {
        let s = sink("t3");
        table3(Scale::Smoke, &s, 1).unwrap();
        let text = std::fs::read_to_string(s.dir().join("table3.csv")).unwrap();
        assert_eq!(text.lines().count(), 1 + TABLE3_ROWS.len());
        std::fs::remove_dir_all(s.dir()).ok();
    }
}
