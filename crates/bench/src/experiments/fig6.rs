//! Figure 6: graph edit-distance ratio (distortion) vs θ.
//!
//! Eight panels: (a–d) the full seven-method comparison at L = 1 on the
//! Google, Wikipedia, Enron and Berkeley-Stanford samples; (e, f) our
//! heuristics at L = 2 on Epinions(Trust) and Gnutella; (g, h) the effect
//! of L ∈ {1..4} at la = 1 on the same two datasets.

use crate::methods::Method;
use crate::output::{pct, OutputSink};
use crate::scale::Scale;
use crate::sweep::{theta_sweep, SweepOptions};
use lopacity_gen::Dataset;
use lopacity_util::Table;

/// The eight panels of Figure 6.
pub struct Panel {
    /// Panel key as in the paper ("a" .. "h").
    pub key: &'static str,
    /// Dataset sampled for the panel.
    pub dataset: Dataset,
    /// `(L, methods)` series to draw.
    pub series: Vec<(u8, Method)>,
}

/// Builds the paper's panel list.
pub fn panels() -> Vec<Panel> {
    let l1_methods: Vec<(u8, Method)> = Method::PAPER_L1.iter().map(|&m| (1, m)).collect();
    let l2_ours: Vec<(u8, Method)> = Method::OURS.iter().map(|&m| (2, m)).collect();
    let l_sweep = |_d: Dataset| -> Vec<(u8, Method)> {
        (1..=4u8)
            .flat_map(|l| [(l, Method::Rem { la: 1 }), (l, Method::RemIns { la: 1 })])
            .collect()
    };
    vec![
        Panel { key: "a", dataset: Dataset::Google, series: l1_methods.clone() },
        Panel { key: "b", dataset: Dataset::Wikipedia, series: l1_methods.clone() },
        Panel { key: "c", dataset: Dataset::Enron, series: l1_methods.clone() },
        Panel { key: "d", dataset: Dataset::BerkeleyStanford, series: l1_methods },
        Panel { key: "e", dataset: Dataset::Epinions, series: l2_ours.clone() },
        Panel { key: "f", dataset: Dataset::Gnutella, series: l2_ours },
        Panel { key: "g", dataset: Dataset::Epinions, series: l_sweep(Dataset::Epinions) },
        Panel { key: "h", dataset: Dataset::Gnutella, series: l_sweep(Dataset::Gnutella) },
    ]
}

/// Runs the full figure; one CSV row per (panel, series, θ).
pub fn run(scale: Scale, sink: &OutputSink, seed: u64) -> std::io::Result<()> {
    let thetas = scale.thetas();
    let mut csv = sink.csv(
        "fig6_distortion_vs_theta",
        &["panel", "dataset", "L", "method", "theta", "distortion", "achieved", "secs"],
    )?;
    for panel in panels() {
        let g = panel.dataset.generate(scale.sample_n(), seed);
        let mut table = Table::new(
            std::iter::once("theta".to_string())
                .chain(panel.series.iter().map(|(l, m)| format!("{m} L={l}")))
                .collect::<Vec<_>>(),
        );
        let mut columns = Vec::new();
        for &(l, method) in &panel.series {
            let opts = SweepOptions {
                l,
                repeats: scale.repeats(),
                seed,
                max_steps: scale.max_steps(),
                max_trials: scale.trial_budget(),
                with_utility: false,
            };
            let points = theta_sweep(&g, method, &thetas, &opts);
            for p in &points {
                csv.write_row(&[
                    panel.key.to_string(),
                    panel.dataset.key().to_string(),
                    l.to_string(),
                    method.name(),
                    format!("{:.2}", p.theta),
                    p.distortion.map(|d| format!("{d:.6}")).unwrap_or_default(),
                    p.achieved.to_string(),
                    format!("{:.6}", p.secs),
                ])?;
            }
            columns.push(points);
        }
        for (row, &theta) in thetas.iter().enumerate() {
            let mut cells = vec![format!("{:.0}%", theta * 100.0)];
            for points in &columns {
                cells.push(pct(points[row].distortion));
            }
            table.add_row(cells);
        }
        sink.print_table(
            &format!("Figure 6({}): distortion vs θ — {}", panel.key, panel.dataset),
            &table,
        );
    }
    csv.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_list_matches_paper_layout() {
        let ps = panels();
        assert_eq!(ps.len(), 8);
        assert_eq!(ps[0].series.len(), 7, "(a) compares all seven methods");
        assert_eq!(ps[4].series.len(), 4, "(e) is ours-only at L=2");
        assert_eq!(ps[6].series.len(), 8, "(g) sweeps L=1..4 for Rem and Rem-Ins");
        assert!(ps[4].series.iter().all(|&(l, _)| l == 2));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke tests run in release only (cargo test --release)")]
    fn smoke_run_writes_csv() {
        let dir = std::env::temp_dir().join(format!("lopacity-fig6-{}", std::process::id()));
        let sink = OutputSink::new(&dir).unwrap();
        // Single tiny panel worth of work: run the real entry point at smoke
        // scale, which uses 60-vertex samples.
        run(Scale::Smoke, &sink, 17).unwrap();
        let text = std::fs::read_to_string(dir.join("fig6_distortion_vs_theta.csv")).unwrap();
        assert!(text.lines().count() > 8 * 11, "expected a row per panel/series/theta");
        std::fs::remove_dir_all(&dir).ok();
    }
}
