//! The machine-readable churn trajectory of issue 6 — incremental
//! re-certification. On an ER graph (mean degree 6, L = 2), certified at
//! θ = 95% of its initial maxLO by an untimed setup repair:
//!
//! * **violation-detect latency** — external edge inserts (benign random
//!   ones, then re-inserts of the edges the setup repair removed — the
//!   deterministic way to break certification at any scale) stream
//!   through a [`ChurnSession`] one event per batch until certification
//!   breaks; the per-event cost (delta apply + fork replay + (maxLO, N)
//!   re-read) is reported raw and normalized by the same synthetic
//!   calibration kernel as `bench4`/`bench5`, so the number gates across
//!   machines;
//! * **incremental loop vs from-scratch re-certification** — the
//!   incremental cost of the whole stream (every detect step plus the
//!   in-place `repair(Removal)` on the warm evaluator) against what a
//!   deployment without the churn layer pays for the same stream: one
//!   full truncated-APSP rebuild + assessment per event just to *detect*,
//!   plus a fresh `Anonymizer::run_once(Removal)` at the violation. The
//!   incremental loop must win **≥ 5×** at n = 10⁴ — the headline claim
//!   of the churn layer — and the repair patch must stay no more invasive
//!   than the full run's edit list.
//!
//! Writes `BENCH_6.json`. With `--check BASELINE.json` the run exits
//! non-zero when the calibrated per-event detect latency regresses more
//! than 20%.
//!
//! ```text
//! cargo bench -p lopacity-bench --bench bench6 -- \
//!     [--scale smoke|full] [--out DIR] [--check BASELINE.json]
//! ```

use lopacity::{
    AnonymizeConfig, Anonymizer, ChurnSession, EdgeEvent, Parallelism, Removal, StoreBackend,
    TypeSpec,
};
use lopacity_gen::er::gnm;
use lopacity_graph::Edge;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Tolerated slowdown of the calibrated gate metric vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// The headline gate at the full scale: detect-the-violation + repair it
/// incrementally must be at least this many times cheaper than a fresh
/// full re-anonymize of the violating graph.
const MIN_FULL_SPEEDUP: f64 = 5.0;

const L: u8 = 2;
const SEED: u64 = 11;
/// Mean degree 6: `m = 3n`.
const DEGREE_HALF: usize = 3;
/// θ as a fraction of the initial maxLO: low enough that the setup repair
/// does real work, close enough that re-inserting its removals violates.
const THETA_FRACTION: f64 = 0.95;

struct Row {
    n: usize,
    /// Benign random inserts streamed before the violating re-inserts —
    /// they amortize the per-event detect-latency measurement.
    random_events: usize,
    /// Gate the ≥ 5× speedup claim (full scale only: at smoke sizes the
    /// from-scratch build is too small for the ratio to be stable).
    gate_speedup: bool,
}

const FULL_ROWS: &[Row] = &[Row { n: 10_000, random_events: 500, gate_speedup: true }];
const SMOKE_ROWS: &[Row] = &[Row { n: 2_000, random_events: 300, gate_speedup: false }];

fn min_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Fixed synthetic kernel: 64 MB of xorshift-mixed u64 sums — the same
/// per-machine "speed unit" `bench4`/`bench5` normalize by.
fn calibration_unit_secs() -> f64 {
    min_secs(7, || {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut acc = 0u64;
        let mut buf = vec![0u64; 1 << 20];
        for round in 0..8u64 {
            for slot in buf.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *slot = slot.wrapping_add(x ^ round);
                acc = acc.wrapping_add(*slot);
            }
        }
        black_box(acc);
    })
}

struct Measurement {
    naive_detect_secs: f64,
    theta: f64,
    events_to_violation: usize,
    events_skipped: usize,
    detect_secs: f64,
    per_event_secs: f64,
    repair_secs: f64,
    repair_edits: usize,
    repair_steps: usize,
    full_secs: f64,
    full_edits: usize,
    naive_stream_secs: f64,
    speedup: f64,
}

fn config_for(theta: f64) -> AnonymizeConfig {
    AnonymizeConfig::new(L, theta)
        .with_seed(7)
        .with_parallelism(Parallelism::Off)
        .with_store(StoreBackend::Sparse)
}

fn measure(row: &Row) -> Measurement {
    let n = row.n;
    let g = gnm(n, DEGREE_HALF * n, SEED);
    let spec = TypeSpec::DegreePairs;

    // From-scratch certification cost (truncated-APSP build + assessment):
    // what a deployment without the churn layer pays *per event* just to
    // learn whether the event broke the guarantee.
    let mut probe = Anonymizer::new(&g, &spec).config(config_for(1.0));
    let naive_detect_secs = min_secs(1, || {
        probe.initial_assessment();
    });
    let theta = probe.initial_assessment().as_f64() * THETA_FRACTION;
    drop(probe);

    // The whole churn trajectory is deterministic, so the detect pass can
    // be repeated on a freshly prepared session and the minimum taken —
    // each pass replays identical work. Setup per pass (untimed): certify
    // the seed graph at θ; its removal list is the deterministic violation
    // trigger — re-inserting those edges restores the counts that exceeded
    // θ, at any graph scale.
    let mut detect_secs = f64::INFINITY;
    let mut last_pass = None;
    for _ in 0..3 {
        let mut session =
            ChurnSession::new(Anonymizer::new(&g, &spec).config(config_for(theta)));
        let setup = session.repair(Removal);
        assert!(setup.achieved, "setup repair must certify at θ = {theta}");
        assert!(!setup.removed.is_empty(), "θ < initial maxLO forces removals");

        // The event stream: benign random inserts first (the steady-state
        // detect workload), then the certification-breaking re-inserts.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut events = Vec::new();
        for _ in 0..row.random_events {
            let u = rng.random_range(0..n as u32);
            let mut v = rng.random_range(0..n as u32);
            if u == v {
                v = (v + 1) % n as u32;
            }
            events.push(EdgeEvent::Insert(Edge::new(u, v)));
        }
        events.extend(setup.removed.iter().map(|&e| EdgeEvent::Insert(e)));

        // One event per batch — the finest-grained (and most
        // detection-heavy) deployment cadence.
        let mut events_seen = 0usize;
        let mut violated = false;
        let start = Instant::now();
        for &event in &events {
            events_seen += 1;
            if session.apply_batch(&[event]).violated {
                violated = true;
                break;
            }
        }
        detect_secs = detect_secs.min(start.elapsed().as_secs_f64());
        assert!(violated, "re-inserting the setup repair's removals must violate θ");
        last_pass = Some((session, events_seen));
    }
    let (mut session, events_seen) = last_pass.expect("three passes ran");
    let per_event_secs = detect_secs / events_seen as f64;
    let events_skipped = session.events_skipped() as usize;

    // The violating graph, for the from-scratch comparator.
    let violating = session.evaluator().graph().clone();

    let repair_start = Instant::now();
    let patch = session.repair(Removal);
    let repair_secs = repair_start.elapsed().as_secs_f64();
    assert!(patch.achieved, "greedy removal must restore θ = {theta}");

    // Fresh full re-anonymize: rebuild types, truncated APSP, and run the
    // greedy loop from scratch on the violating graph.
    let full_start = Instant::now();
    let outcome = Anonymizer::new(&violating, &spec)
        .config(config_for(theta))
        .run_once(Removal);
    let full_secs = full_start.elapsed().as_secs_f64();
    assert!(outcome.achieved, "full re-anonymize must also restore θ");
    black_box(&outcome.graph);

    // The stream handled without the churn layer: a fresh build +
    // assessment per event to detect, plus the from-scratch repair once.
    let naive_stream_secs = events_seen as f64 * naive_detect_secs + full_secs;
    let incremental_secs = detect_secs + repair_secs;
    Measurement {
        naive_detect_secs,
        theta,
        events_to_violation: events_seen,
        events_skipped,
        detect_secs,
        per_event_secs,
        repair_secs,
        repair_edits: patch.edits(),
        repair_steps: patch.steps,
        full_secs,
        full_edits: outcome.removed.len() + outcome.inserted.len(),
        naive_stream_secs,
        speedup: naive_stream_secs / incremental_secs,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

/// Extracts `"key": <number>` from flat-enough JSON (no JSON dependency in
/// the workspace).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "full";
    let mut out_dir = std::path::PathBuf::from("results");
    let mut check: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some("smoke") => scale = "smoke",
                Some("full") => scale = "full",
                other => panic!("--scale takes smoke|full, got {other:?}"),
            },
            "--out" => out_dir = it.next().expect("--out takes a directory").into(),
            "--check" => check = Some(it.next().expect("--check takes a file").into()),
            // `cargo bench` forwards its own filter/flag arguments; ignore.
            _ => {}
        }
    }
    let rows: &[Row] = if scale == "smoke" { SMOKE_ROWS } else { FULL_ROWS };

    let calib = calibration_unit_secs();
    eprintln!("bench6: scale={scale}, calibration unit {:.1} ms", calib * 1e3);

    let mut row_json = Vec::new();
    let mut gate_metric: Option<f64> = None;
    for row in rows {
        let m = measure(row);
        let normalized_detect = m.per_event_secs / calib;
        eprintln!(
            "bench6: n={} θ={:.4}: from-scratch certify {:.0} ms; {} events to violation \
             ({:.1} µs/event detect, normalized {:.6}); incremental repair {:.1} ms \
             ({} edits, {} steps) vs full re-anonymize {:.0} ms ({} edits); \
             stream: incremental {:.0} ms vs from-scratch {:.0} ms — speedup {:.1}×",
            row.n,
            m.theta,
            m.naive_detect_secs * 1e3,
            m.events_to_violation,
            m.per_event_secs * 1e6,
            normalized_detect,
            m.repair_secs * 1e3,
            m.repair_edits,
            m.repair_steps,
            m.full_secs * 1e3,
            m.full_edits,
            (m.detect_secs + m.repair_secs) * 1e3,
            m.naive_stream_secs * 1e3,
            m.speedup,
        );
        if row.gate_speedup {
            assert!(
                m.speedup >= MIN_FULL_SPEEDUP,
                "incremental detect+repair was only {:.1}× faster than from-scratch \
                 re-certification at n={} (gate: ≥ {MIN_FULL_SPEEDUP}×) — the \
                 incremental path lost its advantage",
                m.speedup,
                row.n
            );
        } else {
            assert!(
                m.speedup > 1.0,
                "incremental detect+repair slower than from-scratch at n={}",
                row.n
            );
        }
        gate_metric = Some(normalized_detect);
        row_json.push(format!(
            "    {{\"n\": {}, \"m\": {}, \"theta\": {}, \"naive_detect_secs\": {}, \
             \"events_to_violation\": {}, \"events_skipped\": {}, \"detect_secs\": {}, \
             \"per_event_detect_secs\": {}, \"normalized_per_event_detect\": {}, \
             \"repair_secs\": {}, \"repair_edits\": {}, \"repair_steps\": {}, \
             \"full_reanonymize_secs\": {}, \"full_reanonymize_edits\": {}, \
             \"naive_stream_secs\": {}, \"detect_repair_speedup\": {}}}",
            row.n,
            DEGREE_HALF * row.n,
            json_f(m.theta),
            json_f(m.naive_detect_secs),
            m.events_to_violation,
            m.events_skipped,
            json_f(m.detect_secs),
            json_f(m.per_event_secs),
            json_f(normalized_detect),
            json_f(m.repair_secs),
            m.repair_edits,
            m.repair_steps,
            json_f(m.full_secs),
            m.full_edits,
            json_f(m.naive_stream_secs),
            json_f(m.speedup),
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"lopacity-bench6/v1\",\n  \"scale\": \"{scale}\",\n  \
         \"l\": {L},\n  \"calibration_unit_secs\": {},\n  \"rows\": [\n{}\n  ],\n  \
         \"normalized_detect_gate\": {}\n}}\n",
        json_f(calib),
        row_json.join(",\n"),
        gate_metric.map(json_f).unwrap_or_else(|| "null".into()),
    );
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_6.json");
    std::fs::write(&path, &json).expect("write BENCH_6.json");
    eprintln!("bench6: wrote {}", path.display());

    if let Some(baseline_path) = check {
        let gate = gate_metric.expect("--check needs at least one measured row");
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
        let expected = extract_number(&baseline, "normalized_detect_gate")
            .expect("baseline lacks normalized_detect_gate");
        let limit = expected * (1.0 + REGRESSION_TOLERANCE);
        eprintln!(
            "bench6: calibrated detect latency {gate:.6} vs baseline {expected:.6} \
             (limit {limit:.6})"
        );
        if gate > limit {
            eprintln!(
                "bench6: FAIL — violation-detect path regressed {:.0}% (> {:.0}% tolerated)",
                (gate / expected - 1.0) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("bench6: violation-detect path within tolerance");
    }
}
