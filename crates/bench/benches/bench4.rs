//! The machine-readable companion of the `par_scan` / `heuristics`
//! benches: measures the three quantities issue 4 changed — APSP build
//! time (sequential vs sharded), per-step candidate-scan time (with
//! trials/sec), and distance-matrix bytes (nibble-packed vs byte layout) —
//! and writes them as `BENCH_4.json` so the repo accumulates a perf
//! trajectory instead of scrollback folklore.
//!
//! ```text
//! cargo bench -p lopacity-bench --bench bench4 -- \
//!     [--scale smoke|full] [--out DIR] [--check BASELINE.json]
//! ```
//!
//! With `--check`, the run exits non-zero when the **calibrated** scan
//! cost regresses more than 20% against the checked-in baseline. Raw
//! wall-clock is useless as a cross-machine gate, so the gated metric is
//! `scan_per_trial / calibration_unit`: the sequential scan's per-trial
//! cost divided by the runtime of a fixed synthetic kernel (pure
//! arithmetic + pointer-free memory walk, no lopacity code) measured in
//! the same process. CPU speed cancels; algorithmic regressions — say, a
//! reintroduced per-step `O(|V|²)` clone — do not.

use lopacity::{AnonymizeConfig, Anonymizer, Parallelism, Removal, TypeSpec};
use lopacity_apsp::{ApspEngine, DistanceMatrix};
use lopacity_gen::er::gnm;
use lopacity_graph::Graph;
use std::hint::black_box;
use std::time::Instant;

/// Tolerated slowdown of the calibrated scan metric vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

struct Scale {
    name: &'static str,
    n: usize,
    m: usize,
    l: u8,
    steps: usize,
    repeats: usize,
}

const SMOKE: Scale = Scale { name: "smoke", n: 500, m: 1500, l: 2, steps: 2, repeats: 5 };
const FULL: Scale = Scale { name: "full", n: 2000, m: 6000, l: 2, steps: 2, repeats: 3 };

/// Minimum over `repeats` timed runs — the classical low-noise estimator
/// for a deterministic workload: every disturbance (scheduler, turbo,
/// noisy neighbors) only ever adds time, so the minimum is the best
/// available approximation of the undisturbed cost. This is what keeps
/// the CI regression gate from tripping on shared-runner jitter.
fn min_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Fixed synthetic kernel: 64 MB of xorshift-mixed u64 sums. Pure ALU +
/// streaming memory, no lopacity code, deterministic iteration count —
/// the per-machine "speed unit" the scan metric is normalized by.
fn calibration_unit_secs() -> f64 {
    min_secs(7, || {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut acc = 0u64;
        let mut buf = vec![0u64; 1 << 20];
        for round in 0..8u64 {
            for slot in buf.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *slot = slot.wrapping_add(x ^ round);
                acc = acc.wrapping_add(*slot);
            }
        }
        black_box(acc);
    })
}

struct ScanMeasurement {
    secs: f64,
    trials: u64,
    steps: usize,
    fork_clones: u64,
}

/// Runs `steps` greedy removal steps (θ pinned far below the instance's
/// maxLO so every step really scans) and reports wall-clock + counters.
/// The session build happens outside the timed region — this measures the
/// scan path, not the APSP build.
fn measure_scan(g: &Graph, scale: &Scale, parallelism: Parallelism) -> ScanMeasurement {
    let config = AnonymizeConfig::new(scale.l, 0.05)
        .with_seed(7)
        .with_max_steps(scale.steps)
        .with_parallelism(parallelism);
    let mut session = Anonymizer::new(g, &TypeSpec::DegreePairs).config(config);
    session.initial_assessment(); // force the cached build eagerly
    let mut out = None;
    let secs = min_secs(scale.repeats, || {
        out = Some(session.run(Removal));
    });
    let out = out.expect("at least one repeat ran");
    ScanMeasurement { secs, trials: out.trials, steps: out.steps, fork_clones: out.fork_clones }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

/// Extracts `"key": <number>` from a flat-enough JSON text (the check
/// path's only parsing need; the workspace has no JSON dependency).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = &SMOKE;
    let mut out_dir = std::path::PathBuf::from("results");
    let mut check: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some("smoke") => scale = &SMOKE,
                Some("full") => scale = &FULL,
                other => panic!("--scale takes smoke|full, got {other:?}"),
            },
            "--out" => out_dir = it.next().expect("--out takes a directory").into(),
            "--check" => check = Some(it.next().expect("--check takes a file").into()),
            // `cargo bench` forwards its own filter/flag arguments (e.g.
            // `--bench`) to every harness; ignore anything unknown.
            _ => {}
        }
    }

    let workers_detected = Parallelism::Auto.workers();
    eprintln!(
        "bench4: scale={} (n={}, m={}, L={}), {} detected core(s)",
        scale.name, scale.n, scale.m, scale.l, workers_detected
    );

    let g = gnm(scale.n, scale.m, 9);
    let calib = calibration_unit_secs();
    eprintln!("bench4: calibration unit {:.1} ms", calib * 1e3);

    // --- APSP build: sequential vs sharded --------------------------------
    let build_seq = min_secs(scale.repeats, || {
        black_box(ApspEngine::TruncatedBfs.compute_with(&g, scale.l, Parallelism::Off));
    });
    let build_par = min_secs(scale.repeats, || {
        black_box(ApspEngine::TruncatedBfs.compute_with(
            &g,
            scale.l,
            Parallelism::Fixed(workers_detected),
        ));
    });
    eprintln!(
        "bench4: build seq {:.1} ms, sharded({workers_detected}) {:.1} ms",
        build_seq * 1e3,
        build_par * 1e3
    );

    // --- Candidate scan: Off / Auto / Fixed(2) / Fixed(4) -----------------
    let seq = measure_scan(&g, scale, Parallelism::Off);
    assert!(seq.steps > 0 && seq.trials > 0, "scan instance must actually step");
    let per_trial_seq = seq.secs / seq.trials as f64;
    let mut scan_rows = vec![(
        "off".to_string(),
        seq.secs,
        seq.trials,
        seq.fork_clones,
    )];
    for parallelism in
        [Parallelism::Auto, Parallelism::Fixed(2), Parallelism::Fixed(4)]
    {
        let m = measure_scan(&g, scale, parallelism);
        assert_eq!(m.trials, seq.trials, "trial counts are parallelism-invariant");
        scan_rows.push((parallelism.to_string(), m.secs, m.trials, m.fork_clones));
    }
    for (label, secs, trials, clones) in &scan_rows {
        eprintln!(
            "bench4: scan {label}: {:.1} ms, {:.0} trials/s, {clones} fork clone(s)",
            secs * 1e3,
            *trials as f64 / secs
        );
    }

    // --- Matrix footprint -------------------------------------------------
    let packed = DistanceMatrix::new(scale.n, scale.l);
    let byte = DistanceMatrix::new_byte(scale.n);
    let ratio = packed.storage_bytes() as f64 / byte.storage_bytes() as f64;
    assert!(packed.is_packed() && ratio <= 0.55, "packed layout must stay under 0.55x");

    let normalized_scan = per_trial_seq / calib;
    let scan_json: Vec<String> = scan_rows
        .iter()
        .map(|(label, secs, trials, clones)| {
            format!(
                "    {{\"parallelism\": \"{label}\", \"secs\": {}, \"trials\": {trials}, \
                 \"trials_per_sec\": {}, \"fork_clones\": {clones}}}",
                json_f(*secs),
                json_f(*trials as f64 / secs)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"lopacity-bench4/v1\",\n  \"scale\": \"{}\",\n  \"n\": {},\n  \
         \"m\": {},\n  \"l\": {},\n  \"workers_detected\": {},\n  \"calibration_unit_secs\": {},\n  \
         \"build\": {{\"seq_secs\": {}, \"sharded_secs\": {}, \"speedup\": {}}},\n  \
         \"scan\": [\n{}\n  ],\n  \"scan_steps\": {},\n  \"scan_per_trial_secs_seq\": {},\n  \
         \"normalized_scan_per_trial\": {},\n  \
         \"matrix\": {{\"pairs\": {}, \"packed_bytes\": {}, \"byte_bytes\": {}, \"ratio\": {}}}\n}}\n",
        scale.name,
        scale.n,
        scale.m,
        scale.l,
        workers_detected,
        json_f(calib),
        json_f(build_seq),
        json_f(build_par),
        json_f(build_seq / build_par),
        scan_json.join(",\n"),
        seq.steps,
        json_f(per_trial_seq),
        json_f(normalized_scan),
        packed.num_pairs(),
        packed.storage_bytes(),
        byte.storage_bytes(),
        json_f(ratio),
    );

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_4.json");
    std::fs::write(&path, &json).expect("write BENCH_4.json");
    eprintln!("bench4: wrote {}", path.display());

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
        let expected = extract_number(&baseline, "normalized_scan_per_trial")
            .expect("baseline lacks normalized_scan_per_trial");
        let limit = expected * (1.0 + REGRESSION_TOLERANCE);
        eprintln!(
            "bench4: calibrated scan cost {normalized_scan:.4} vs baseline {expected:.4} \
             (limit {limit:.4})"
        );
        if normalized_scan > limit {
            eprintln!(
                "bench4: FAIL — scan path regressed {:.0}% (> {:.0}% tolerated)",
                (normalized_scan / expected - 1.0) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("bench4: scan path within tolerance");
    }
}
