//! Utility-metric costs: the per-point price of the Figure 7/8 sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use lopacity_gen::Dataset;
use lopacity_metrics::{
    clustering, emd_1d, geodesic_distribution, spectral, GraphStats, Histogram, UtilityReport,
};
use std::hint::black_box;

fn bench_metric_pieces(c: &mut Criterion) {
    let g = Dataset::Enron.generate(300, 21);
    let mut h = g.clone();
    // A realistic anonymized counterpart: strip 10% of edges.
    let edges = h.edge_vec();
    for e in edges.iter().step_by(10) {
        h.remove_edge(e.u(), e.v());
    }
    let mut group = c.benchmark_group("metrics");
    group.bench_function("degree_emd", |b| {
        let a = Histogram::from_values(g.degree_sequence());
        let bb = Histogram::from_values(h.degree_sequence());
        b.iter(|| black_box(emd_1d(&a, &bb)))
    });
    group.bench_function("geodesic_distribution", |b| {
        b.iter(|| black_box(geodesic_distribution(&g)))
    });
    group.bench_function("local_clustering", |b| {
        b.iter(|| black_box(clustering::local_clustering(&g)))
    });
    group.bench_function("mean_cc_difference", |b| {
        b.iter(|| black_box(clustering::mean_cc_difference(&g, &h)))
    });
    group.bench_function("spectral_summary", |b| {
        b.iter(|| black_box(spectral::spectral_summary(&g)))
    });
    group.bench_function("graph_stats", |b| b.iter(|| black_box(GraphStats::compute(&g))));
    group.bench_function("utility_report_full", |b| {
        b.iter(|| black_box(UtilityReport::compute(&g, &h)))
    });
    group.finish();
}

fn quick() -> Criterion {
    // Keep the workspace-wide capture fast: shape comparisons need
    // stable medians, not publication-grade confidence intervals.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_metric_pieces
}
criterion_main!(benches);
