//! The headline engineering ablation: incremental opacity evaluation
//! (DESIGN.md §5) vs the paper's full-recompute-per-candidate loop.
//!
//! Measures the cost of one greedy step's candidate scan — trying the
//! removal of every edge and assessing `(maxLO, N)` after each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopacity::opacity::count_within_l;
use lopacity::{LoAssessment, OpacityEvaluator, TypeSpec, TypeSystem};
use lopacity_apsp::ApspEngine;
use lopacity_gen::Dataset;
use lopacity_graph::Graph;
use std::hint::black_box;

/// The paper's baseline: re-run Algorithm 1 (full truncated APSP) per
/// candidate.
fn full_recompute_scan(g: &Graph, types: &TypeSystem, l: u8) -> LoAssessment {
    let mut worst = LoAssessment::ZERO;
    let mut g = g.clone();
    for e in g.edge_vec() {
        g.remove_edge(e.u(), e.v());
        let dist = ApspEngine::TruncatedBfs.compute(&g, l);
        let counts = count_within_l(&dist, types, l);
        let a = LoAssessment::from_counts(&counts, types.denominators());
        if worst.better_than(&a) {
            worst = a;
        }
        g.add_edge(e.u(), e.v());
    }
    worst
}

/// Ours: incremental trials over the shared evaluator.
fn incremental_scan(ev: &mut OpacityEvaluator) -> LoAssessment {
    let mut worst = LoAssessment::ZERO;
    for e in ev.graph().edge_vec() {
        let a = ev.trial_remove(e);
        if worst.better_than(&a) {
            worst = a;
        }
    }
    worst
}

fn bench_candidate_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_scan");
    for &n in &[60usize, 120] {
        for l in [1u8, 2] {
            let g = Dataset::Google.generate(n, 5);
            let types = TypeSystem::build(&g, &TypeSpec::DegreePairs);
            group.bench_with_input(
                BenchmarkId::new(format!("full-recompute/L{l}"), n),
                &g,
                |b, g| b.iter(|| black_box(full_recompute_scan(g, &types, l))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("incremental/L{l}"), n),
                &g,
                |b, g| {
                    let mut ev = OpacityEvaluator::new(g.clone(), &TypeSpec::DegreePairs, l);
                    b.iter(|| black_box(incremental_scan(&mut ev)))
                },
            );
        }
    }
    group.finish();
}

fn bench_maxlo(c: &mut Criterion) {
    // Algorithm 1 end-to-end at increasing sizes.
    let mut group = c.benchmark_group("maxLO");
    for &n in &[100usize, 500, 1000] {
        let g = Dataset::Gnutella.generate(n, 3);
        group.bench_with_input(BenchmarkId::new("L2", n), &g, |b, g| {
            b.iter(|| black_box(lopacity::opacity_report(g, &TypeSpec::DegreePairs, 2)))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    // Keep the workspace-wide capture fast: shape comparisons need
    // stable medians, not publication-grade confidence intervals.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_candidate_scan, bench_maxlo
}
criterion_main!(benches);
