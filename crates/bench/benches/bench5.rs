//! The machine-readable scale trajectory of issue 5 — the sparse distance
//! store. Measures, per graph size `n ∈ {10⁴, 5·10⁴, 10⁵}` (ER graphs,
//! mean degree 6, L = 2):
//!
//! * **within-L density** — live pairs, mean ball size, fraction of the
//!   `n(n−1)/2` triangle that is finite;
//! * **resident store bytes** — sparse CSR footprint vs the dense packed
//!   (`n²/4`) and byte (`n²/2`) layouts, asserted **< 10%** of the packed
//!   cost at every sparse row (the 10⁵ row is the scale the dense matrix
//!   cannot hold: 2.5 GB packed);
//! * **per-step scan time** — sequential greedy-removal trials through the
//!   session API, reported per trial and normalized by the same synthetic
//!   calibration kernel as `bench4`, so the numbers gate across machines.
//!
//! Writes `BENCH_5.json`. With `--check BASELINE.json` the run exits
//! non-zero when the calibrated per-trial scan cost at the gate row
//! (n = 10⁴, sparse) regresses more than 20%. The full scale additionally
//! asserts the *ball-bounded* claim structurally: per-trial cost at 10⁵
//! must stay within 6× the 10⁴ cost (mean balls are comparable, so an
//! O(|V|)-per-source regression would show up as ~10×).
//!
//! ```text
//! cargo bench -p lopacity-bench --bench bench5 -- \
//!     [--scale smoke|scale-smoke|full] [--out DIR] [--check BASELINE.json]
//! ```
//!
//! `--scale scale-smoke` is the CI scale job: the 5·10⁴ sparse row only,
//! with the sub-quadratic footprint assertion.

use lopacity::{AnonymizeConfig, Anonymizer, Parallelism, Removal, StoreBackend, TypeSpec};
use lopacity_gen::er::gnm;
use lopacity_graph::Graph;
use std::hint::black_box;
use std::time::Instant;

/// Tolerated slowdown of the calibrated gate metric vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Sparse rows must stay below this fraction of the dense *packed*
/// (`n²/4`-byte) footprint — the sub-quadratic scale gate. The acceptance
/// bar of issue 5 is 10% of the `n²/2`-pair cost; gating against the
/// packed layout is the stricter half of that.
const MAX_SPARSE_BYTES_RATIO: f64 = 0.10;

/// Per-trial cost at n = 10⁵ may be at most this multiple of the 10⁴
/// cost. Ball sizes are size-invariant on these ER graphs, so a truly
/// ball-bounded scan is ~flat; an O(|V|)-per-source scan would scale ~10×.
const MAX_BALL_SCALING_FACTOR: f64 = 6.0;

const L: u8 = 2;
const SEED: u64 = 9;
/// Mean degree 6: `m = 3n`.
const DEGREE_HALF: usize = 3;

struct Row {
    n: usize,
    backend: StoreBackend,
    /// Candidate-evaluation budget for the timed scan (bounds wall-clock;
    /// the per-trial metric is budget-invariant).
    max_trials: u64,
    repeats: usize,
}

const FULL_ROWS: &[Row] = &[
    Row { n: 10_000, backend: StoreBackend::Sparse, max_trials: 20_000, repeats: 3 },
    Row { n: 10_000, backend: StoreBackend::Dense, max_trials: 2_000, repeats: 3 },
    Row { n: 50_000, backend: StoreBackend::Sparse, max_trials: 20_000, repeats: 2 },
    Row { n: 100_000, backend: StoreBackend::Sparse, max_trials: 20_000, repeats: 2 },
];

const SMOKE_ROWS: &[Row] = &[
    Row { n: 10_000, backend: StoreBackend::Sparse, max_trials: 5_000, repeats: 2 },
    Row { n: 10_000, backend: StoreBackend::Dense, max_trials: 1_000, repeats: 2 },
];

const SCALE_SMOKE_ROWS: &[Row] =
    &[Row { n: 50_000, backend: StoreBackend::Sparse, max_trials: 10_000, repeats: 2 }];

/// Minimum over `repeats` timed runs — the classical low-noise estimator
/// for a deterministic workload (disturbances only ever add time).
fn min_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Fixed synthetic kernel: 64 MB of xorshift-mixed u64 sums — the same
/// per-machine "speed unit" `bench4` normalizes by.
fn calibration_unit_secs() -> f64 {
    min_secs(7, || {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut acc = 0u64;
        let mut buf = vec![0u64; 1 << 20];
        for round in 0..8u64 {
            for slot in buf.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *slot = slot.wrapping_add(x ^ round);
                acc = acc.wrapping_add(*slot);
            }
        }
        black_box(acc);
    })
}

struct Measurement {
    build_secs: f64,
    scan_secs: f64,
    trials: u64,
    live_pairs: usize,
    mean_ball: f64,
    store_bytes: usize,
    backend_resolved: &'static str,
}

/// One row: build the evaluator on the forced backend, snapshot density
/// and footprint, then time one truncated greedy-removal step.
fn measure(g: &Graph, row: &Row) -> Measurement {
    let n = g.num_vertices();
    // θ = 0 is unreachable without emptying the graph, so the single
    // budgeted step always scans — at ER scale the initial maxLO is
    // already tiny and any positive θ could end the run scan-less.
    let config = AnonymizeConfig::new(L, 0.0)
        .with_seed(7)
        .with_max_steps(1)
        .with_max_trials(row.max_trials)
        .with_parallelism(Parallelism::Off)
        .with_store(row.backend);
    let spec = TypeSpec::DegreePairs;

    let mut session = Anonymizer::new(g, &spec).config(config);
    let build_secs = min_secs(1, || {
        session.initial_assessment();
    });
    let (live_pairs, store_bytes, backend_resolved) = {
        let store = session.evaluator().dist_store();
        (store.live_pairs(), store.storage_bytes(), store.backend_name())
    };
    let mean_ball = 2.0 * live_pairs as f64 / n.max(1) as f64;

    let mut out = None;
    let scan_secs = min_secs(row.repeats, || {
        out = Some(session.run(Removal));
    });
    let out = out.expect("at least one repeat ran");
    assert!(out.steps == 1 && out.trials > 0, "scan row must perform one truncated step");
    Measurement {
        build_secs,
        scan_secs,
        trials: out.trials,
        live_pairs,
        mean_ball,
        store_bytes,
        backend_resolved,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

/// Extracts `"key": <number>` from flat-enough JSON (no JSON dependency in
/// the workspace).
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "full";
    let mut out_dir = std::path::PathBuf::from("results");
    let mut check: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some(s @ ("smoke" | "scale-smoke" | "full")) => scale = match s {
                    "smoke" => "smoke",
                    "scale-smoke" => "scale-smoke",
                    _ => "full",
                },
                other => panic!("--scale takes smoke|scale-smoke|full, got {other:?}"),
            },
            "--out" => out_dir = it.next().expect("--out takes a directory").into(),
            "--check" => check = Some(it.next().expect("--check takes a file").into()),
            // `cargo bench` forwards its own filter/flag arguments; ignore.
            _ => {}
        }
    }
    let rows: &[Row] = match scale {
        "smoke" => SMOKE_ROWS,
        "scale-smoke" => SCALE_SMOKE_ROWS,
        _ => FULL_ROWS,
    };

    let calib = calibration_unit_secs();
    eprintln!("bench5: scale={scale}, calibration unit {:.1} ms", calib * 1e3);

    let mut row_json = Vec::new();
    let mut gate_metric: Option<f64> = None;
    let mut sparse_10k: Option<f64> = None;
    let mut sparse_100k: Option<f64> = None;
    let mut graph_cache: Option<(usize, Graph)> = None;
    for row in rows {
        let m_edges = DEGREE_HALF * row.n;
        let g = match &graph_cache {
            Some((n, g)) if *n == row.n => g.clone(),
            _ => {
                let g = gnm(row.n, m_edges, SEED);
                graph_cache = Some((row.n, g.clone()));
                g
            }
        };
        let m = measure(&g, row);
        assert_eq!(
            m.backend_resolved,
            row.backend.name(),
            "forced backend must be the resolved one"
        );
        let pairs = row.n * (row.n - 1) / 2;
        let dense_packed_bytes = pairs.div_ceil(2);
        let density = m.live_pairs as f64 / pairs.max(1) as f64;
        let bytes_ratio = m.store_bytes as f64 / dense_packed_bytes.max(1) as f64;
        let per_trial = m.scan_secs / m.trials as f64;
        let normalized = per_trial / calib;
        eprintln!(
            "bench5: n={} {}: ball {:.1}, density {:.2e}, {} store bytes \
             ({:.2}% of packed dense), build {:.0} ms, scan {:.1} ms / {} trials \
             ({:.2} µs/trial, normalized {:.5})",
            row.n,
            row.backend.name(),
            m.mean_ball,
            density,
            m.store_bytes,
            bytes_ratio * 100.0,
            m.build_secs * 1e3,
            m.scan_secs * 1e3,
            m.trials,
            per_trial * 1e6,
            normalized,
        );
        if row.backend == StoreBackend::Sparse {
            assert!(
                bytes_ratio < MAX_SPARSE_BYTES_RATIO,
                "sparse store at n={} is {:.1}% of the packed dense footprint \
                 (gate: < {:.0}%) — sub-quadratic scaling lost",
                row.n,
                bytes_ratio * 100.0,
                MAX_SPARSE_BYTES_RATIO * 100.0
            );
            if row.n == 10_000 {
                gate_metric = Some(normalized);
                sparse_10k = Some(normalized);
            }
            if row.n == 100_000 {
                sparse_100k = Some(normalized);
            }
        }
        row_json.push(format!(
            "    {{\"n\": {}, \"m\": {}, \"backend\": \"{}\", \"build_secs\": {}, \
             \"live_pairs\": {}, \"mean_ball\": {}, \"within_l_density\": {}, \
             \"store_bytes\": {}, \"dense_packed_bytes\": {}, \"dense_byte_bytes\": {}, \
             \"bytes_ratio_vs_packed\": {}, \"scan_secs\": {}, \"trials\": {}, \
             \"per_trial_secs\": {}, \"normalized_per_trial\": {}}}",
            row.n,
            m_edges,
            row.backend.name(),
            json_f(m.build_secs),
            m.live_pairs,
            json_f(m.mean_ball),
            json_f(density),
            m.store_bytes,
            dense_packed_bytes,
            pairs,
            json_f(bytes_ratio),
            json_f(m.scan_secs),
            m.trials,
            json_f(per_trial),
            json_f(normalized),
        ));
    }

    // Ball-bounded structural gate: scans must scale with ball size, not n.
    let ball_scaling = match (sparse_10k, sparse_100k) {
        (Some(small), Some(large)) => {
            let factor = large / small;
            assert!(
                factor < MAX_BALL_SCALING_FACTOR,
                "per-trial scan cost grew {factor:.1}× from n=10⁴ to n=10⁵ \
                 (gate: < {MAX_BALL_SCALING_FACTOR}×) — the scan is no longer ball-bounded"
            );
            eprintln!("bench5: ball-scaling factor 10⁴→10⁵: {factor:.2}× (gate < 6×)");
            Some(factor)
        }
        _ => None,
    };

    let json = format!(
        "{{\n  \"schema\": \"lopacity-bench5/v1\",\n  \"scale\": \"{scale}\",\n  \
         \"l\": {L},\n  \"calibration_unit_secs\": {},\n  \"rows\": [\n{}\n  ],\n  \
         \"normalized_per_trial_gate\": {},\n  \"ball_scaling_factor\": {}\n}}\n",
        json_f(calib),
        row_json.join(",\n"),
        gate_metric.map(json_f).unwrap_or_else(|| "null".into()),
        ball_scaling.map(json_f).unwrap_or_else(|| "null".into()),
    );
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = out_dir.join("BENCH_5.json");
    std::fs::write(&path, &json).expect("write BENCH_5.json");
    eprintln!("bench5: wrote {}", path.display());

    if let Some(baseline_path) = check {
        let gate = gate_metric
            .expect("--check needs the n=10⁴ sparse gate row (scales smoke or full)");
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", baseline_path.display()));
        let expected = extract_number(&baseline, "normalized_per_trial_gate")
            .expect("baseline lacks normalized_per_trial_gate");
        let limit = expected * (1.0 + REGRESSION_TOLERANCE);
        eprintln!(
            "bench5: calibrated per-trial cost {gate:.5} vs baseline {expected:.5} \
             (limit {limit:.5})"
        );
        if gate > limit {
            eprintln!(
                "bench5: FAIL — sparse scan path regressed {:.0}% (> {:.0}% tolerated)",
                (gate / expected - 1.0) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("bench5: sparse scan path within tolerance");
    }
}
