//! Sharded candidate-scan speedup: the greedy removal step on a G(n, m)
//! instance with |V| >= 2000 at 1 / 2 / 4 / 8 workers, against the
//! sequential scan.
//!
//! The measured unit is two full greedy steps of Algorithm 4 at L = 2 —
//! dominated by the size-1 candidate scan (|E| incremental trials per
//! step, each a bundle of truncated BFS reruns), which is exactly the loop
//! `Parallelism` shards. Equivalence of the outputs is property-tested
//! elsewhere (`tests/tests/parallel_equivalence.rs`); this bench only
//! quantifies the wall-clock. Numbers are honest for the machine they run
//! on: on a single-core container the 2×/4×/8× rows show sharding
//! overhead, not speedup — see CHANGES.md for recorded runs. The
//! machine-readable companion is the `bench4` bench, which measures the
//! same scan path (plus APSP build time and matrix bytes) and writes
//! `BENCH_4.json` for the CI perf-trajectory artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopacity::{AnonymizeConfig, Anonymizer, Parallelism, Removal, TypeSpec};
use lopacity_gen::er::gnm;
use std::hint::black_box;

fn bench_par_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_scan_rem_l2_n2000");
    // θ = 0.05 is far below the instance's initial maxLO, so both capped
    // steps really scan (θ = 0.5 is already satisfied at L = 2 here and
    // would measure APSP construction only).
    let g = gnm(2000, 6000, 9);
    let base = AnonymizeConfig::new(2, 0.05).with_seed(7).with_max_steps(2);
    group.bench_with_input(BenchmarkId::new("off", 2000), &g, |b, g| {
        b.iter(|| {
            black_box(
                Anonymizer::new(g, &TypeSpec::DegreePairs)
                    .config(base.with_parallelism(Parallelism::Off))
                    .run_once(Removal),
            )
        })
    });
    for workers in [1usize, 2, 4, 8] {
        let config = base.with_parallelism(Parallelism::Fixed(workers));
        group.bench_with_input(BenchmarkId::new(format!("fixed-{workers}"), 2000), &g, |b, g| {
            b.iter(|| {
                black_box(
                    Anonymizer::new(g, &TypeSpec::DegreePairs).config(config).run_once(Removal),
                )
            })
        });
    }
    group.finish();
}

fn bench_par_scan_denser(c: &mut Criterion) {
    // A denser instance: more candidates per scan, bigger shards, better
    // clone-cost amortization.
    let mut group = c.benchmark_group("par_scan_rem_l2_n2000_m12000");
    let g = gnm(2000, 12_000, 9);
    let base = AnonymizeConfig::new(2, 0.05).with_seed(7).with_max_steps(1);
    for (label, parallelism) in [
        ("off", Parallelism::Off),
        ("fixed-4", Parallelism::Fixed(4)),
    ] {
        let config = base.with_parallelism(parallelism);
        group.bench_with_input(BenchmarkId::new(label, 2000), &g, |b, g| {
            b.iter(|| {
                black_box(
                    Anonymizer::new(g, &TypeSpec::DegreePairs).config(config).run_once(Removal),
                )
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_par_scan, bench_par_scan_denser
}
criterion_main!(benches);
