//! Generator throughput: every random-graph family at 1000 vertices, plus
//! the calibrated dataset stand-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopacity_gen::ba::{holme_kim, BaParams};
use lopacity_gen::config_model::configuration_model;
use lopacity_gen::er::{gnm, gnp};
use lopacity_gen::powerlaw::power_law_degrees;
use lopacity_gen::rmat::{rmat, RmatParams};
use lopacity_gen::ws::watts_strogatz;
use lopacity_gen::Dataset;
use std::hint::black_box;

fn bench_families(c: &mut Criterion) {
    let n = 1000usize;
    let m = 4000usize;
    let mut group = c.benchmark_group("generators");
    group.bench_function("gnm", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(gnm(n, m, seed))
        })
    });
    group.bench_function("gnp", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(gnp(n, 0.008, seed))
        })
    });
    group.bench_function("holme_kim", |b| {
        let params = BaParams::for_average_degree(8.0, 0.5);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(holme_kim(n, params, seed))
        })
    });
    group.bench_function("watts_strogatz", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(watts_strogatz(n, 8, 0.1, seed))
        })
    });
    group.bench_function("rmat", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(rmat(10, m, RmatParams::GRAPH500, seed))
        })
    });
    group.bench_function("configuration_model", |b| {
        let degrees = power_law_degrees(n, 2.3, 1, 80, 1);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(configuration_model(&degrees, seed))
        })
    });
    group.finish();
}

fn bench_dataset_standins(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_standins");
    for d in Dataset::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(d.key()), &d, |b, &d| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(d.generate(500, seed))
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    // Keep the workspace-wide capture fast: shape comparisons need
    // stable medians, not publication-grade confidence intervals.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_families, bench_dataset_standins
}
criterion_main!(benches);
