//! End-to-end anonymization cost: our heuristics vs the Zhang & Zhang
//! baselines (the per-method wall-clock behind Figures 9 and 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopacity_bench::Method;
use lopacity_gen::Dataset;
use std::hint::black_box;

fn bench_methods_l1(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymize_l1_theta0.5");
    let g = Dataset::Google.generate(100, 9);
    for method in Method::PAPER_L1 {
        group.bench_with_input(BenchmarkId::new(method.name(), 100), &g, |b, g| {
            b.iter(|| black_box(method.run(g, 1, 0.5, 1, Some(2000))))
        });
    }
    group.finish();
}

fn bench_ours_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymize_l2_theta0.5");
    let g = Dataset::Gnutella.generate(100, 9);
    for method in Method::OURS {
        group.bench_with_input(BenchmarkId::new(method.name(), 100), &g, |b, g| {
            b.iter(|| black_box(method.run(g, 2, 0.5, 1, Some(2000))))
        });
    }
    group.finish();
}

fn bench_rem_scaling(c: &mut Criterion) {
    // The Figure 11 growth curve in microcosm.
    let mut group = c.benchmark_group("rem_scaling_theta0.7");
    for &n in &[200usize, 400, 800] {
        let g = Dataset::AcmDl.generate(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(Method::Rem { la: 1 }.run(g, 1, 0.7, 1, None)))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    // Keep the workspace-wide capture fast: shape comparisons need
    // stable medians, not publication-grade confidence intervals.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_methods_l1, bench_ours_l2, bench_rem_scaling
}
criterion_main!(benches);
