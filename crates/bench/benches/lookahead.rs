//! Look-ahead ablation (DESIGN.md §3): the paper's two plausible readings
//! of the `la` mechanism — escalate only when stuck vs exhaustively
//! enumerate all combination sizes every step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopacity::{AnonymizeConfig, Anonymizer, LookaheadMode, Removal, TypeSpec};
use lopacity_gen::Dataset;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookahead_mode");
    let g = Dataset::Gnutella.generate(60, 13);
    for (label, mode) in
        [("escalating", LookaheadMode::Escalating), ("exhaustive", LookaheadMode::Exhaustive)]
    {
        for la in [1usize, 2] {
            let config = AnonymizeConfig::new(1, 0.4)
                .with_lookahead(la)
                .with_mode(mode)
                .with_seed(3);
            group.bench_with_input(
                BenchmarkId::new(label, format!("la{la}")),
                &g,
                |b, g| b.iter(|| {
                black_box(
                    Anonymizer::new(g, &TypeSpec::DegreePairs).config(config).run_once(Removal),
                )
            }),
            );
        }
    }
    group.finish();
}

fn bench_lookahead_depth(c: &mut Criterion) {
    // Runtime growth with la (Figure 9's la=2 blow-up in microcosm); the
    // exhaustive mode reproduces the paper's search-space expansion.
    let mut group = c.benchmark_group("lookahead_depth_exhaustive");
    let g = Dataset::Epinions.generate(50, 13);
    for la in [1usize, 2, 3] {
        let config = AnonymizeConfig::new(1, 0.5)
            .with_lookahead(la)
            .with_mode(LookaheadMode::Exhaustive)
            .with_seed(3);
        group.bench_with_input(BenchmarkId::from_parameter(la), &g, |b, g| {
            b.iter(|| {
                black_box(
                    Anonymizer::new(g, &TypeSpec::DegreePairs).config(config).run_once(Removal),
                )
            })
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    // Keep the workspace-wide capture fast: shape comparisons need
    // stable medians, not publication-grade confidence intervals.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_modes, bench_lookahead_depth
}
criterion_main!(benches);
