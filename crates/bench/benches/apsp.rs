//! APSP engine ablation (paper Section 5.1.2): classic Floyd–Warshall vs
//! Algorithm 2 (L-pruned) vs Algorithm 3 (pointer-based) vs truncated BFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopacity_apsp::ApspEngine;
use lopacity_gen::Dataset;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp");
    for &n in &[100usize, 300] {
        for l in [2u8, 4] {
            let g = Dataset::Gnutella.generate(n, 7);
            for engine in ApspEngine::ALL {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/L{l}", engine.name()), n),
                    &g,
                    |b, g| b.iter(|| black_box(engine.compute(g, l))),
                );
            }
        }
    }
    group.finish();
}

fn bench_density_sensitivity(c: &mut Criterion) {
    // The pointer variant's advantage grows as fewer cells stay below L;
    // compare sparse vs dense inputs at fixed n.
    let mut group = c.benchmark_group("apsp_density");
    let n = 200;
    for (label, avg_deg) in [("sparse", 3.0), ("dense", 20.0)] {
        let m = (avg_deg * n as f64 / 2.0) as usize;
        let g = lopacity_gen::er::gnm(n, m, 11);
        for engine in [ApspEngine::PrunedFloydWarshall, ApspEngine::PointerFloydWarshall] {
            group.bench_function(format!("{}/{label}", engine.name()), |b| {
                b.iter(|| black_box(engine.compute(&g, 2)))
            });
        }
    }
    group.finish();
}

fn quick() -> Criterion {
    // Keep the workspace-wide capture fast: shape comparisons need
    // stable medians, not publication-grade confidence intervals.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_engines, bench_density_sensitivity
}
criterion_main!(benches);
