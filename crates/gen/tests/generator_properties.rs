//! Property tests: every generator produces valid simple graphs with the
//! promised shape, deterministically per seed.

use lopacity_gen::ba::{holme_kim, BaParams};
use lopacity_gen::config_model::configuration_model;
use lopacity_gen::er::{gnm, gnp};
use lopacity_gen::powerlaw::power_law_degrees;
use lopacity_gen::rmat::{rmat, RmatParams};
use lopacity_gen::sample::{induced_sample, snowball_sample};
use lopacity_gen::ws::watts_strogatz;
use lopacity_gen::Dataset;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gnm_is_simple_and_exact(n in 2usize..40, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let pairs = n * (n - 1) / 2;
        let m = (frac * pairs as f64) as usize;
        let g = gnm(n, m, seed);
        prop_assert_eq!(g.num_edges(), m);
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn gnp_is_simple(n in 2usize..40, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = gnp(n, p, seed);
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
    }

    #[test]
    fn holme_kim_is_simple_and_connected_enough(
        n in 2usize..60,
        avg in 2.0f64..8.0,
        triad in 0.0f64..1.0,
        seed in any::<u64>()
    ) {
        let g = holme_kim(n, BaParams::for_average_degree(avg, triad), seed);
        prop_assert!(g.check_invariants().is_ok());
        prop_assert_eq!(g.num_vertices(), n);
        // Preferential attachment never leaves isolated vertices (each
        // arriving vertex attaches at least once).
        for v in 0..n as u32 {
            prop_assert!(g.degree(v) >= 1 || n == 1);
        }
    }

    #[test]
    fn watts_strogatz_preserves_degree_sum(
        n in 6usize..50,
        half_k in 1usize..3,
        beta in 0.0f64..1.0,
        seed in any::<u64>()
    ) {
        let k = 2 * half_k;
        prop_assume!(k < n);
        let g = watts_strogatz(n, k, beta, seed);
        prop_assert!(g.check_invariants().is_ok());
        prop_assert_eq!(g.num_edges(), n * k / 2);
    }

    #[test]
    fn rmat_respects_bounds(scale in 2u32..8, m in 0usize..300, seed in any::<u64>()) {
        let g = rmat(scale, m, RmatParams::GRAPH500, seed);
        prop_assert!(g.check_invariants().is_ok());
        prop_assert!(g.num_edges() <= m);
        prop_assert_eq!(g.num_vertices(), 1 << scale);
    }

    #[test]
    fn power_law_sequence_feeds_configuration_model(
        n in 4usize..60,
        gamma in 1.5f64..4.0,
        seed in any::<u64>()
    ) {
        let k_max = (n - 1).min(12);
        let degrees = power_law_degrees(n, gamma, 1, k_max, seed);
        prop_assert_eq!(degrees.iter().sum::<usize>() % 2, 0);
        let g = configuration_model(&degrees, seed ^ 1);
        prop_assert!(g.check_invariants().is_ok());
        // Erasure may drop stubs but never adds: realized <= requested.
        for (v, &want) in degrees.iter().enumerate() {
            prop_assert!(g.degree(v as u32) <= want);
        }
    }

    #[test]
    fn samples_are_induced_subgraphs(n in 10usize..50, k in 2usize..10, seed in any::<u64>()) {
        let g = gnm(n, n * 2, seed);
        for s in [induced_sample(&g, k, seed), snowball_sample(&g, k, seed)] {
            prop_assert_eq!(s.num_vertices(), k);
            prop_assert!(s.check_invariants().is_ok());
            // An induced subgraph can never be denser than complete.
            prop_assert!(s.num_edges() <= k * (k - 1) / 2);
        }
    }

    #[test]
    fn datasets_are_deterministic_and_sized(seed in any::<u64>(), n in 10usize..80) {
        for d in Dataset::ALL {
            let a = d.generate(n, seed);
            let b = d.generate(n, seed);
            prop_assert_eq!(&a, &b, "dataset {} not deterministic", d);
            prop_assert_eq!(a.num_vertices(), n);
            prop_assert!(a.check_invariants().is_ok());
        }
    }
}
