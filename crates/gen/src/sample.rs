//! Graph sampling (paper Section 6.1).
//!
//! The paper derives its experiment inputs by sampling 100–1000 vertices
//! from each dataset; "the edges in the sampled graph are the adjacent edges
//! of the sampled nodes", i.e. the induced subgraph. Uniform induced
//! sampling of a sparse million-vertex graph would be nearly edgeless, while
//! the paper's samples are *denser* than their parents (Table 3) — so their
//! vertex choice was locality-biased. Both flavours are provided:
//! [`induced_sample`] (uniform) and [`snowball_sample`] (BFS-ball, which
//! reproduces the density-preserving behaviour of Table 3).

use lopacity_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Uniformly samples `k` distinct vertices and returns their induced
/// subgraph (vertices re-numbered `0..k`).
///
/// # Panics
/// Panics when `k > n`.
pub fn induced_sample(graph: &Graph, k: usize, seed: u64) -> Graph {
    let n = graph.num_vertices();
    assert!(k <= n, "cannot sample {k} of {n} vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    ids.shuffle(&mut rng);
    ids.truncate(k);
    ids.sort_unstable();
    graph.induced_subgraph(&ids).0
}

/// Snowball (BFS-ball) sample: starts from a random vertex and grows a
/// breadth-first ball until `k` vertices are collected, restarting from a
/// fresh random vertex when a component is exhausted. Returns the induced
/// subgraph on the collected vertices.
///
/// # Panics
/// Panics when `k > n`.
pub fn snowball_sample(graph: &Graph, k: usize, seed: u64) -> Graph {
    let n = graph.num_vertices();
    assert!(k <= n, "cannot sample {k} of {n} vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked = vec![false; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(k);
    let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
    while order.len() < k {
        if queue.is_empty() {
            // Restart from an unpicked random vertex.
            let mut v = rng.random_range(0..n as VertexId);
            let mut guard = 0;
            while picked[v as usize] {
                v = rng.random_range(0..n as VertexId);
                guard += 1;
                if guard > 10 * n {
                    // Fall back to a linear scan (k close to n).
                    v = (0..n as VertexId).find(|&x| !picked[x as usize]).expect("k <= n");
                    break;
                }
            }
            picked[v as usize] = true;
            order.push(v);
            queue.push_back(v);
            continue;
        }
        let u = queue.pop_front().expect("non-empty");
        for &w in graph.neighbors(u) {
            if order.len() >= k {
                break;
            }
            if !picked[w as usize] {
                picked[w as usize] = true;
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    order.sort_unstable();
    graph.induced_subgraph(&order).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::gnm;

    #[test]
    fn induced_sample_has_requested_size() {
        let g = gnm(100, 300, 1);
        let s = induced_sample(&g, 30, 2);
        assert_eq!(s.num_vertices(), 30);
        s.check_invariants().unwrap();
    }

    #[test]
    fn sample_of_everything_is_the_graph() {
        let g = gnm(40, 100, 3);
        let s = induced_sample(&g, 40, 4);
        assert_eq!(s.num_edges(), g.num_edges());
        let s = snowball_sample(&g, 40, 4);
        assert_eq!(s.num_edges(), g.num_edges());
    }

    #[test]
    fn snowball_is_denser_than_uniform_on_sparse_graphs() {
        // On a large sparse clustered graph, a BFS ball keeps far more
        // adjacent edges than a uniform vertex choice — the Table 3 effect.
        let g = crate::ba::holme_kim(
            5000,
            crate::ba::BaParams::for_average_degree(6.0, 0.5),
            5,
        );
        let uniform = induced_sample(&g, 100, 7);
        let ball = snowball_sample(&g, 100, 7);
        assert!(
            ball.num_edges() > 2 * uniform.num_edges().max(1),
            "snowball {} vs uniform {}",
            ball.num_edges(),
            uniform.num_edges()
        );
    }

    #[test]
    fn snowball_handles_disconnected_graphs() {
        let mut g = Graph::new(20);
        for i in 0..9u32 {
            g.add_edge(i, i + 1); // one path component; vertices 10..20 isolated
        }
        let s = snowball_sample(&g, 15, 9);
        assert_eq!(s.num_vertices(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn rejects_oversized_sample() {
        induced_sample(&Graph::new(5), 6, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(200, 600, 11);
        assert_eq!(induced_sample(&g, 50, 1), induced_sample(&g, 50, 1));
        assert_eq!(snowball_sample(&g, 50, 1), snowball_sample(&g, 50, 1));
    }
}
