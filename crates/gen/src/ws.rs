//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice where every vertex connects to its `k/2` nearest
//! neighbours on each side, with each edge rewired to a uniform random
//! endpoint with probability `beta`. `beta = 0` is a maximally clustered
//! lattice, `beta = 1` approaches Erdős–Rényi; small `beta` gives the
//! high-clustering/short-path regime the paper's introduction invokes
//! (Milgram, Watts).

use lopacity_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a Watts–Strogatz graph on `n` vertices with even base degree
/// `k` and rewiring probability `beta`.
///
/// # Panics
/// Panics when `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k % 2 == 0, "base degree k must be even (got {k})");
    assert!(k < n, "base degree k = {k} must be below n = {n}");
    assert!((0.0..=1.0).contains(&beta), "beta = {beta} out of [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Ring lattice.
    for v in 0..n {
        for offset in 1..=k / 2 {
            let w = (v + offset) % n;
            g.add_edge(v as VertexId, w as VertexId);
        }
    }
    if beta == 0.0 || n < 3 {
        return g;
    }
    // Rewire each lattice edge (v, v+offset) with probability beta.
    for v in 0..n {
        for offset in 1..=k / 2 {
            let w = ((v + offset) % n) as VertexId;
            let v = v as VertexId;
            if rng.random::<f64>() >= beta || !g.has_edge(v, w) {
                continue;
            }
            // Find a fresh endpoint; skip when the vertex is saturated.
            if g.degree(v) >= n - 1 {
                continue;
            }
            let mut attempts = 0;
            loop {
                attempts += 1;
                if attempts > 50 {
                    break;
                }
                let t = rng.random_range(0..n as VertexId);
                if t != v && !g.has_edge(v, t) {
                    g.remove_edge(v, w);
                    g.add_edge(v, t);
                    break;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_zero_is_a_lattice() {
        let g = watts_strogatz(12, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 12 * 4 / 2);
        for v in 0..12u32 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 11));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        for beta in [0.1, 0.5, 1.0] {
            let g = watts_strogatz(40, 6, beta, 7);
            assert_eq!(g.num_edges(), 40 * 6 / 2, "beta = {beta}");
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn rewiring_changes_the_lattice() {
        let lattice = watts_strogatz(40, 6, 0.0, 7);
        let rewired = watts_strogatz(40, 6, 0.5, 7);
        assert_ne!(lattice, rewired);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(watts_strogatz(30, 4, 0.3, 9), watts_strogatz(30, 4, 0.3, 9));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_degree() {
        watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn rejects_degree_at_least_n() {
        watts_strogatz(4, 4, 0.1, 0);
    }
}
