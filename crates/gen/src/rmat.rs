//! R-MAT (recursive matrix) graphs.
//!
//! The classic Kronecker-style generator: each edge picks a quadrant of the
//! adjacency matrix recursively with probabilities `(a, b, c, d)`; skewed
//! probabilities produce power-law-ish degree distributions and community
//! structure. The first author's PhD thesis (reference \[18\] of the paper) concerns exactly this
//! family of data-parallel generators, making R-MAT a natural workload
//! source for the benchmark harness.

use lopacity_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Quadrant probabilities for [`rmat`]. Must sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// The ubiquitous Graph500-style skew.
    pub const GRAPH500: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 };

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-9, "quadrant probabilities sum to {sum}, expected 1");
        for p in [self.a, self.b, self.c, self.d] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
    }
}

/// Generates an undirected simple R-MAT graph with `2^scale` vertices and
/// (up to) `m` edges — duplicates and self-loops are re-drawn, with a
/// bounded retry budget so skewed parameter sets still terminate.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Graph {
    params.validate();
    assert!(scale <= 24, "scale {scale} would allocate 2^{scale} vertices");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut failures = 0usize;
    while g.num_edges() < target && failures < 50 * target + 100 {
        let (u, v) = draw_edge(scale, params, &mut rng);
        if u == v || !g.add_edge(u, v) {
            failures += 1;
        }
    }
    g
}

fn draw_edge(scale: u32, p: RmatParams, rng: &mut StdRng) -> (VertexId, VertexId) {
    let mut u = 0u32;
    let mut v = 0u32;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.random();
        if r < p.a {
            // top-left: no bits set
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = rmat(8, 500, RmatParams::GRAPH500, 3);
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 500);
        g.check_invariants().unwrap();
    }

    #[test]
    fn skewed_parameters_concentrate_degree() {
        let g = rmat(9, 1500, RmatParams::GRAPH500, 5);
        let avg = g.degree_sum() as f64 / g.num_vertices() as f64;
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "expected hub formation: max {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn uniform_parameters_resemble_er() {
        let uniform = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };
        let g = rmat(8, 600, uniform, 7);
        let avg = g.degree_sum() as f64 / g.num_vertices() as f64;
        assert!((g.max_degree() as f64) < 5.0 * avg.max(1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(rmat(7, 200, RmatParams::GRAPH500, 9), rmat(7, 200, RmatParams::GRAPH500, 9));
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_bad_probabilities() {
        rmat(4, 10, RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5 }, 0);
    }

    #[test]
    fn caps_at_complete_graph() {
        let g = rmat(2, 1000, RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 }, 1);
        assert!(g.num_edges() <= 6);
    }
}
