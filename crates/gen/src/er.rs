//! Erdős–Rényi random graphs.

use lopacity_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `G(n, m)`: exactly `m` distinct edges drawn uniformly among all pairs.
///
/// Uses rejection sampling, which is near-optimal while `m` is well below
/// the total pair count; for dense requests (`m > pairs/2`) it samples the
/// complement instead.
///
/// # Panics
/// Panics when `m` exceeds `n (n - 1) / 2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= pairs, "cannot place {m} edges among {pairs} pairs");
    let mut rng = StdRng::seed_from_u64(seed);
    if m > pairs / 2 {
        // Dense: pick the complement uniformly, then invert.
        let complement = sample_distinct_pairs(n, pairs - m, &mut rng);
        let mut g = Graph::new(n);
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                g.add_edge(i, j);
            }
        }
        for (a, b) in complement {
            g.remove_edge(a, b);
        }
        g
    } else {
        let edges = sample_distinct_pairs(n, m, &mut rng);
        let mut g = Graph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }
}

fn sample_distinct_pairs(n: usize, k: usize, rng: &mut StdRng) -> Vec<(VertexId, VertexId)> {
    let mut g = Graph::new(n);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let a = rng.random_range(0..n as VertexId);
        let b = rng.random_range(0..n as VertexId);
        if a != b && g.add_edge(a, b) {
            out.push((a.min(b), a.max(b)));
        }
    }
    out
}

/// `G(n, p)`: every pair is an edge independently with probability `p`.
/// Uses geometric skipping, so the cost is proportional to the output size.
///
/// # Panics
/// Panics unless `0 <= p <= 1`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
    let mut g = Graph::new(n);
    if p == 0.0 || n < 2 {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p == 1.0 {
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                g.add_edge(i, j);
            }
        }
        return g;
    }
    // Iterate pair ranks 0..C(n,2), skipping ahead geometrically.
    let total = n * (n - 1) / 2;
    let log1mp = (1.0 - p).ln();
    let mut rank = 0usize;
    loop {
        let u: f64 = rng.random();
        let skip = ((1.0 - u).ln() / log1mp).floor() as usize;
        rank = rank.saturating_add(skip);
        if rank >= total {
            break;
        }
        let (i, j) = pair_of_rank(n, rank);
        g.add_edge(i, j);
        rank += 1;
    }
    g
}

/// Inverse of the row-major triangular ranking used by `DistanceMatrix`.
fn pair_of_rank(n: usize, mut rank: usize) -> (VertexId, VertexId) {
    let mut i = 0usize;
    let mut row_len = n - 1;
    while rank >= row_len {
        rank -= row_len;
        i += 1;
        row_len -= 1;
    }
    (i as VertexId, (i + 1 + rank) as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count() {
        for &m in &[0usize, 1, 10, 50] {
            let g = gnm(20, m, 7);
            assert_eq!(g.num_edges(), m);
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn gnm_dense_path_works() {
        let pairs = 10 * 9 / 2;
        let g = gnm(10, pairs - 3, 11);
        assert_eq!(g.num_edges(), pairs - 3);
        let full = gnm(10, pairs, 11);
        assert_eq!(full.num_edges(), pairs);
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        assert_eq!(gnm(30, 60, 42), gnm(30, 60, 42));
        assert_ne!(gnm(30, 60, 42), gnm(30, 60, 43));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn gnm_rejects_overfull() {
        gnm(3, 4, 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn gnp_density_is_near_p() {
        let n = 200;
        let p = 0.1;
        let g = gnp(n, p, 5);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        // 5 sigma tolerance: sigma^2 = pairs * p * (1-p).
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!((got - expected).abs() < 5.0 * sigma, "got {got}, expected {expected}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn pair_of_rank_is_bijective() {
        let n = 9;
        let mut seen = std::collections::HashSet::new();
        for r in 0..n * (n - 1) / 2 {
            let (i, j) = pair_of_rank(n, r);
            assert!(i < j && (j as usize) < n);
            assert!(seen.insert((i, j)));
        }
    }
}
