//! Power-law degree sequences.
//!
//! Datasets like Epinions and Wikipedia have degree standard deviations far
//! above their means (Table 2: 32.7 vs 12.7; 60.4 vs 29.1), i.e. heavy
//! tails. This module samples `P(deg = k) ∝ k^(-gamma)` sequences with a
//! controllable mean, to feed the configuration model.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Samples `n` degrees from a truncated power law `k ∈ [k_min, k_max]`,
/// then adjusts the sequence to an even sum (the configuration model needs
/// an even number of half-edges).
///
/// # Panics
/// Panics unless `1 <= k_min <= k_max` and `gamma > 1`.
pub fn power_law_degrees(n: usize, gamma: f64, k_min: usize, k_max: usize, seed: u64) -> Vec<usize> {
    assert!(k_min >= 1, "k_min must be at least 1");
    assert!(k_min <= k_max, "k_min {k_min} > k_max {k_max}");
    assert!(gamma > 1.0, "gamma must exceed 1 for a normalizable tail");
    let mut rng = StdRng::seed_from_u64(seed);
    // Discrete inverse-CDF sampling over [k_min, k_max].
    let weights: Vec<f64> = (k_min..=k_max).map(|k| (k as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut degrees: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
            k_min + idx
        })
        .collect();
    // Degree sum must be even; bump one vertex if necessary.
    if degrees.iter().sum::<usize>() % 2 == 1 {
        if let Some(d) = degrees.iter_mut().find(|d| **d < k_max) {
            *d += 1;
        } else if let Some(d) = degrees.iter_mut().find(|d| **d > k_min) {
            *d -= 1;
        }
    }
    degrees
}

/// Chooses a `gamma` whose truncated power law on `[k_min, k_max]` has mean
/// close to `target_mean`, via bisection. Returns the clamped best effort
/// when the target lies outside the attainable range.
pub fn gamma_for_mean(target_mean: f64, k_min: usize, k_max: usize) -> f64 {
    let mean_of = |gamma: f64| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for k in k_min..=k_max {
            let w = (k as f64).powf(-gamma);
            num += k as f64 * w;
            den += w;
        }
        num / den
    };
    // Mean decreases monotonically in gamma.
    let (mut lo, mut hi) = (1.01f64, 6.0f64);
    if target_mean >= mean_of(lo) {
        return lo;
    }
    if target_mean <= mean_of(hi) {
        return hi;
    }
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if mean_of(mid) > target_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_in_range_and_even_sum() {
        let d = power_law_degrees(501, 2.5, 1, 50, 3);
        assert_eq!(d.len(), 501);
        assert!(d.iter().all(|&k| (1..=51).contains(&k)));
        assert_eq!(d.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn higher_gamma_means_lighter_tail() {
        let heavy = power_law_degrees(2000, 1.8, 1, 100, 5);
        let light = power_law_degrees(2000, 3.5, 1, 100, 5);
        let mean = |d: &[usize]| d.iter().sum::<usize>() as f64 / d.len() as f64;
        assert!(mean(&heavy) > 2.0 * mean(&light));
    }

    #[test]
    fn gamma_for_mean_hits_target() {
        for target in [2.0, 5.0, 12.0] {
            let gamma = gamma_for_mean(target, 1, 200);
            let d = power_law_degrees(20000, gamma, 1, 200, 11);
            let mean = d.iter().sum::<usize>() as f64 / d.len() as f64;
            assert!(
                (mean - target).abs() / target < 0.15,
                "target {target}: got mean {mean} at gamma {gamma}"
            );
        }
    }

    #[test]
    fn gamma_clamps_outside_attainable_range() {
        // Mean can never exceed k_max; ask for the impossible.
        let g = gamma_for_mean(1000.0, 1, 10);
        assert!((g - 1.01).abs() < 1e-9);
        let g = gamma_for_mean(0.5, 1, 10);
        assert!((g - 6.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(power_law_degrees(100, 2.2, 1, 30, 4), power_law_degrees(100, 2.2, 1, 30, 4));
    }
}
