//! Barabási–Albert preferential attachment with Holme–Kim triad formation.
//!
//! Plain preferential attachment reproduces the heavy-tailed degree
//! distributions of web/social graphs but produces vanishing clustering. The
//! Holme–Kim variant follows each preferential attachment with, with
//! probability `triad_p`, a *triad-formation* step that connects the new
//! vertex to a random neighbour of the vertex it just attached to — closing
//! a triangle. Sweeping `triad_p` calibrates the average clustering
//! coefficient to each dataset's published value (Google 0.60, Enron 0.50,
//! Epinions 0.11, ...).

use lopacity_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`holme_kim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaParams {
    /// Edges contributed by each arriving vertex (the classic BA `m`).
    pub edges_per_vertex: usize,
    /// Extra fractional edge probability: with probability `extra_edge_p`
    /// an arriving vertex contributes one additional edge, allowing
    /// non-integer target average degrees (`avg ≈ 2 (m + extra_edge_p)`).
    pub extra_edge_p: f64,
    /// Probability that an attachment is followed by triad formation.
    pub triad_p: f64,
}

impl BaParams {
    /// Parameters hitting a target average degree with a given clustering
    /// knob. `avg_degree` must be ≥ 2 for a connected-ish result.
    pub fn for_average_degree(avg_degree: f64, triad_p: f64) -> Self {
        let per_vertex = (avg_degree / 2.0).max(1.0);
        let m = per_vertex.floor() as usize;
        BaParams {
            edges_per_vertex: m.max(1),
            extra_edge_p: (per_vertex - m as f64).clamp(0.0, 1.0),
            triad_p: triad_p.clamp(0.0, 1.0),
        }
    }
}

/// Generates an `n`-vertex Holme–Kim graph. `triad_p = 0` is classic
/// Barabási–Albert.
///
/// # Panics
/// Panics when `n == 0` or `edges_per_vertex == 0`.
pub fn holme_kim(n: usize, params: BaParams, seed: u64) -> Graph {
    assert!(n > 0, "n must be positive");
    assert!(params.edges_per_vertex > 0, "edges_per_vertex must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let m0 = (params.edges_per_vertex + 1).min(n);
    // Seed clique keeps early attachment well-defined.
    for i in 0..m0 as VertexId {
        for j in (i + 1)..m0 as VertexId {
            g.add_edge(i, j);
        }
    }
    // Repeated-endpoints list: picking a uniform element implements
    // degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * params.edges_per_vertex);
    for e in g.edges() {
        endpoints.push(e.u());
        endpoints.push(e.v());
    }
    for v in m0..n {
        let v = v as VertexId;
        let mut budget = params.edges_per_vertex.min(v as usize);
        if params.extra_edge_p > 0.0 && rng.random::<f64>() < params.extra_edge_p {
            budget = (budget + 1).min(v as usize);
        }
        let mut last_attached: Option<VertexId> = None;
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < budget && attempts < budget * 50 {
            attempts += 1;
            let target = match last_attached {
                // Triad formation: a random neighbour of the last target.
                Some(prev) if params.triad_p > 0.0 && rng.random::<f64>() < params.triad_p => {
                    let nbrs = g.neighbors(prev);
                    nbrs[rng.random_range(0..nbrs.len())]
                }
                _ => endpoints[rng.random_range(0..endpoints.len())],
            };
            if target != v && g.add_edge(v, target) {
                endpoints.push(v);
                endpoints.push(target);
                last_attached = Some(target);
                added += 1;
            }
        }
        // Degenerate fallback (tiny graphs): attach to any non-neighbour.
        if added == 0 && v > 0 {
            for candidate in 0..v {
                if g.add_edge(v, candidate) {
                    endpoints.push(v);
                    endpoints.push(candidate);
                    break;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_expected_average_degree() {
        let params = BaParams::for_average_degree(6.0, 0.0);
        let g = holme_kim(500, params, 3);
        let avg = g.degree_sum() as f64 / g.num_vertices() as f64;
        assert!((avg - 6.0).abs() < 1.0, "avg degree {avg}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn triads_raise_clustering() {
        let flat = holme_kim(400, BaParams::for_average_degree(8.0, 0.0), 9);
        let clustered = holme_kim(400, BaParams::for_average_degree(8.0, 0.9), 9);
        let cc = |g: &Graph| {
            // Inline triangle density proxy: count closed wedges over wedges.
            let mut closed = 0usize;
            let mut wedges = 0usize;
            for v in 0..g.num_vertices() as VertexId {
                let nbrs = g.neighbors(v);
                for (i, &a) in nbrs.iter().enumerate() {
                    for &b in &nbrs[i + 1..] {
                        wedges += 1;
                        if g.has_edge(a, b) {
                            closed += 1;
                        }
                    }
                }
            }
            closed as f64 / wedges.max(1) as f64
        };
        assert!(
            cc(&clustered) > 2.0 * cc(&flat),
            "triad formation should raise clustering: {} vs {}",
            cc(&clustered),
            cc(&flat)
        );
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = holme_kim(1000, BaParams::for_average_degree(4.0, 0.0), 17);
        let max = g.max_degree();
        let avg = g.degree_sum() as f64 / g.num_vertices() as f64;
        assert!(max as f64 > 5.0 * avg, "max degree {max} vs avg {avg}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = BaParams::for_average_degree(5.0, 0.3);
        assert_eq!(holme_kim(200, p, 1), holme_kim(200, p, 1));
        assert_ne!(holme_kim(200, p, 1), holme_kim(200, p, 2));
    }

    #[test]
    fn tiny_graphs_are_valid() {
        for n in 1..6 {
            let g = holme_kim(n, BaParams::for_average_degree(4.0, 0.5), 1);
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn fractional_degree_interpolates() {
        let lo = holme_kim(800, BaParams::for_average_degree(4.0, 0.0), 5);
        let hi = holme_kim(800, BaParams::for_average_degree(5.0, 0.0), 5);
        let frac = holme_kim(800, BaParams::for_average_degree(4.5, 0.0), 5);
        assert!(lo.num_edges() < frac.num_edges());
        assert!(frac.num_edges() < hi.num_edges());
    }
}
