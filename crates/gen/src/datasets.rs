//! Calibrated synthetic stand-ins for the paper's seven datasets.
//!
//! Each [`Dataset`] carries the published statistics from Tables 1 and 2
//! (full-graph scale) and the sampled-graph anchors from Table 3, plus a
//! generator family chosen to match the dataset's character:
//!
//! | dataset | character (Table 2) | model |
//! |---|---|---|
//! | Google | heavy tail, ACC 0.60 | Holme–Kim |
//! | Berkeley-Stanford | heavy tail, ACC 0.61 | Holme–Kim |
//! | Epinions | very heavy tail, ACC 0.11 | power-law configuration model |
//! | Enron | heavy tail, ACC 0.50 | Holme–Kim |
//! | Gnutella | flat degrees, ACC 0.008 | Erdős–Rényi `G(n, m)` |
//! | ACM Digital Library | sparse co-authorship, ACC 0.53 | Holme–Kim |
//! | Wikipedia | very heavy tail, ACC 0.21 | Holme–Kim |
//!
//! `generate(n, seed)` targets the *sample* statistics (Table 3) because
//! those are what the experiments actually consume; `scaled_full(n, seed)`
//! targets the full-graph statistics (Table 2) at a reduced vertex count,
//! for regenerating the Table 2 property rows at laptop scale.

use crate::ba::{holme_kim, BaParams};
use crate::config_model::configuration_model;
use crate::er::gnm;
use crate::powerlaw::{gamma_for_mean, power_law_degrees};
use lopacity_graph::Graph;

/// The seven evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// `web-Google`: pages and hyperlinks.
    Google,
    /// `web-BerkStan`: pages and hyperlinks.
    BerkeleyStanford,
    /// `soc-Epinions`: users and trust statements.
    Epinions,
    /// `email-Enron`: addresses and transferred mails.
    Enron,
    /// `p2p-Gnutella`: hosts and overlay connections.
    Gnutella,
    /// ACM Digital Library co-authorship crawl.
    AcmDl,
    /// `wiki-Vote`: users/candidates and votes.
    Wikipedia,
}

/// Generator family backing a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Model {
    /// Preferential attachment + triad formation.
    HolmeKim,
    /// Uniform random edges.
    ErdosRenyi,
    /// Power-law degree sequence through the configuration model.
    PowerLawConfig,
}

/// Published statistics and calibration anchors for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Human-readable name as printed in the paper's tables.
    pub name: &'static str,
    /// Full-graph vertex count (Table 1).
    pub full_nodes: usize,
    /// Full-graph edge count (Table 1).
    pub full_links: usize,
    /// What a node models (Table 1).
    pub node_desc: &'static str,
    /// What a link models (Table 1).
    pub link_desc: &'static str,
    /// Full-graph diameter (Table 2).
    pub full_diameter: u32,
    /// Full-graph average degree (Table 2).
    pub full_avg_degree: f64,
    /// Full-graph degree standard deviation (Table 2).
    pub full_degree_stdd: f64,
    /// Full-graph average clustering coefficient (Table 2).
    pub full_acc: f64,
    model: Model,
    /// `(n, avg_degree, acc)` anchors from Table 3 samples.
    anchors: &'static [(usize, f64, f64)],
}

impl Dataset {
    /// All datasets in the paper's Table 1 order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Google,
        Dataset::BerkeleyStanford,
        Dataset::Epinions,
        Dataset::Enron,
        Dataset::Gnutella,
        Dataset::AcmDl,
        Dataset::Wikipedia,
    ];

    /// The dataset's published statistics and calibration data.
    pub fn spec(self) -> &'static DatasetSpec {
        match self {
            Dataset::Google => &GOOGLE,
            Dataset::BerkeleyStanford => &BERKELEY_STANFORD,
            Dataset::Epinions => &EPINIONS,
            Dataset::Enron => &ENRON,
            Dataset::Gnutella => &GNUTELLA,
            Dataset::AcmDl => &ACM_DL,
            Dataset::Wikipedia => &WIKIPEDIA,
        }
    }

    /// Short stable identifier (CSV columns, CLI values).
    pub fn key(self) -> &'static str {
        match self {
            Dataset::Google => "google",
            Dataset::BerkeleyStanford => "berkeley-stanford",
            Dataset::Epinions => "epinions",
            Dataset::Enron => "enron",
            Dataset::Gnutella => "gnutella",
            Dataset::AcmDl => "acm",
            Dataset::Wikipedia => "wikipedia",
        }
    }

    /// Synthesizes an `n`-vertex experiment input calibrated to the Table 3
    /// sample statistics (interpolating between anchors in log-`n`).
    pub fn generate(self, n: usize, seed: u64) -> Graph {
        let spec = self.spec();
        let avg = spec.interpolate_avg_degree(n);
        let acc = spec.interpolate_acc(n);
        spec.build(n, avg, acc, seed)
    }

    /// Synthesizes an `n`-vertex *scaled-down full graph* calibrated to the
    /// Table 2 full-dataset statistics (for regenerating Table 2 at laptop
    /// scale — the real datasets have up to 876 k vertices).
    pub fn scaled_full(self, n: usize, seed: u64) -> Graph {
        let spec = self.spec();
        spec.build(n, spec.full_avg_degree, spec.full_acc, seed)
    }
}

impl std::str::FromStr for Dataset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Dataset::ALL
            .iter()
            .copied()
            .find(|d| d.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = Dataset::ALL.iter().map(|d| d.key()).collect();
                format!("unknown dataset {s:?} (expected one of {keys:?})")
            })
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

impl DatasetSpec {
    /// Average-degree target for an `n`-vertex sample.
    pub fn interpolate_avg_degree(&self, n: usize) -> f64 {
        interpolate(self.anchors, (self.full_nodes, self.full_avg_degree), n, |a| a.1)
    }

    /// Clustering target for an `n`-vertex sample.
    pub fn interpolate_acc(&self, n: usize) -> f64 {
        interpolate(self.anchors, (self.full_nodes, self.full_acc), n, |a| a.2)
    }

    fn build(&self, n: usize, avg_degree: f64, acc: f64, seed: u64) -> Graph {
        // Degree targets can never exceed n - 1 in a simple graph.
        let avg_degree = avg_degree.min((n.saturating_sub(1)) as f64);
        match self.model {
            Model::ErdosRenyi => {
                let pairs = n * n.saturating_sub(1) / 2;
                let m = ((avg_degree * n as f64 / 2.0).round() as usize).min(pairs);
                gnm(n, m, seed)
            }
            Model::HolmeKim => {
                if n < 2 || avg_degree < f64::EPSILON {
                    return Graph::new(n);
                }
                // Triad probability tracks the clustering target; the 1.25
                // factor compensates for triads that fail to close on
                // already-adjacent pairs (empirical calibration).
                let triad_p = (acc * 1.25).clamp(0.0, 0.97);
                holme_kim(n, BaParams::for_average_degree(avg_degree, triad_p), seed)
            }
            Model::PowerLawConfig => {
                if n < 2 {
                    return Graph::new(n);
                }
                let k_max = (n - 1).min(((avg_degree + 1.0) * 12.0) as usize).max(2);
                let gamma = gamma_for_mean(avg_degree.max(1.0), 1, k_max);
                let degrees = power_law_degrees(n, gamma, 1, k_max, seed ^ 0xD15EA5E);
                configuration_model(&degrees, seed)
            }
        }
    }
}

/// Log-`n` piecewise-linear interpolation through the sample anchors,
/// extending to the full-graph point beyond the last anchor.
fn interpolate(
    anchors: &[(usize, f64, f64)],
    full: (usize, f64),
    n: usize,
    pick: impl Fn(&(usize, f64, f64)) -> f64,
) -> f64 {
    if anchors.is_empty() {
        return full.1;
    }
    if n <= anchors[0].0 {
        return pick(&anchors[0]);
    }
    for window in anchors.windows(2) {
        let (lo, hi) = (&window[0], &window[1]);
        if n <= hi.0 {
            return log_lerp(lo.0, pick(lo), hi.0, pick(hi), n);
        }
    }
    let last = anchors.last().expect("non-empty");
    if n >= full.0 {
        return full.1;
    }
    log_lerp(last.0, pick(last), full.0, full.1, n)
}

fn log_lerp(x0: usize, y0: f64, x1: usize, y1: f64, x: usize) -> f64 {
    if x0 == x1 {
        return y0;
    }
    let t = ((x as f64).ln() - (x0 as f64).ln()) / ((x1 as f64).ln() - (x0 as f64).ln());
    y0 + t * (y1 - y0)
}

static GOOGLE: DatasetSpec = DatasetSpec {
    name: "Google",
    full_nodes: 875_713,
    full_links: 5_105_039,
    node_desc: "Web pages",
    link_desc: "Hyperlinks",
    full_diameter: 22,
    full_avg_degree: 11.6,
    full_degree_stdd: 16.4,
    full_acc: 0.6047,
    model: Model::HolmeKim,
    anchors: &[(100, 14.92, 0.76), (500, 12.42, 0.70), (1000, 12.89, 0.70)],
};

static BERKELEY_STANFORD: DatasetSpec = DatasetSpec {
    name: "Berkeley-Stanford",
    full_nodes: 685_230,
    full_links: 7_600_595,
    node_desc: "Web pages",
    link_desc: "Hyperlinks",
    full_diameter: 669,
    full_avg_degree: 22.1,
    full_degree_stdd: 10.99,
    full_acc: 0.6149,
    model: Model::HolmeKim,
    anchors: &[(500, 17.82, 0.62)],
};

static EPINIONS: DatasetSpec = DatasetSpec {
    name: "Epinions",
    full_nodes: 132_000,
    full_links: 841_372,
    node_desc: "Users",
    link_desc: "Trust/distrust statements",
    full_diameter: 9,
    full_avg_degree: 12.7,
    full_degree_stdd: 32.68,
    full_acc: 0.1062,
    model: Model::PowerLawConfig,
    anchors: &[(100, 1.3, 0.04)],
};

static ENRON: DatasetSpec = DatasetSpec {
    name: "Enron",
    full_nodes: 36_692,
    full_links: 367_662,
    node_desc: "Email addresses",
    link_desc: "Transferred emails",
    full_diameter: 12,
    full_avg_degree: 20.0,
    full_degree_stdd: 18.58,
    full_acc: 0.4970,
    model: Model::HolmeKim,
    anchors: &[(100, 6.92, 0.31), (500, 22.74, 0.37)],
};

static GNUTELLA: DatasetSpec = DatasetSpec {
    name: "Gnutella",
    full_nodes: 10_876,
    full_links: 39_994,
    node_desc: "Hosts",
    link_desc: "Topology connections",
    full_diameter: 9,
    full_avg_degree: 7.4,
    full_degree_stdd: 3.01,
    full_acc: 0.0080,
    model: Model::ErdosRenyi,
    anchors: &[(100, 2.32, 0.05), (500, 2.88, 0.09), (1000, 3.71, 0.02)],
};

static ACM_DL: DatasetSpec = DatasetSpec {
    name: "ACM Digital Library",
    full_nodes: 10_000,
    full_links: 19_894,
    node_desc: "Authors",
    link_desc: "Co-authorships",
    full_diameter: 400,
    full_avg_degree: 3.97,
    full_degree_stdd: 6.23,
    full_acc: 0.5279,
    model: Model::HolmeKim,
    anchors: &[(1000, 3.97, 0.53)],
};

static WIKIPEDIA: DatasetSpec = DatasetSpec {
    name: "Wikipedia",
    full_nodes: 7_115,
    full_links: 103_689,
    node_desc: "Users and candidates",
    link_desc: "Votes",
    full_diameter: 7,
    full_avg_degree: 29.1,
    full_degree_stdd: 60.39,
    full_acc: 0.2089,
    model: Model::HolmeKim,
    anchors: &[(100, 18.38, 0.54), (500, 28.98, 0.39)],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_consistent_with_table_1() {
        for d in Dataset::ALL {
            let s = d.spec();
            assert!(s.full_nodes > 0 && s.full_links > 0);
            assert!(s.full_acc >= 0.0 && s.full_acc <= 1.0, "{d}");
            assert!(!s.anchors.is_empty() || s.full_avg_degree > 0.0);
            // Anchors are sorted by n.
            assert!(s.anchors.windows(2).all(|w| w[0].0 < w[1].0), "{d}");
        }
    }

    #[test]
    fn keys_round_trip() {
        for d in Dataset::ALL {
            let parsed: Dataset = d.key().parse().unwrap();
            assert_eq!(parsed, d);
        }
        assert!("not-a-dataset".parse::<Dataset>().is_err());
    }

    #[test]
    fn generated_average_degree_tracks_anchor() {
        for (d, n) in [
            (Dataset::Google, 100usize),
            (Dataset::Gnutella, 500),
            (Dataset::Enron, 100),
            (Dataset::Wikipedia, 100),
        ] {
            let g = d.generate(n, 42);
            assert_eq!(g.num_vertices(), n);
            let avg = g.degree_sum() as f64 / n as f64;
            let target = d.spec().interpolate_avg_degree(n);
            assert!(
                (avg - target).abs() / target < 0.35,
                "{d} @ {n}: avg {avg:.2} vs target {target:.2}"
            );
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn epinions_sample_is_very_sparse() {
        let g = Dataset::Epinions.generate(100, 7);
        let avg = g.degree_sum() as f64 / 100.0;
        assert!(avg < 3.0, "Epinions-100 should be near avg degree 1.3, got {avg}");
    }

    #[test]
    fn interpolation_is_monotone_between_anchor_and_full() {
        let spec = Dataset::Gnutella.spec();
        let at_100 = spec.interpolate_avg_degree(100);
        let at_1000 = spec.interpolate_avg_degree(1000);
        let at_5000 = spec.interpolate_avg_degree(5000);
        assert!((at_100 - 2.32).abs() < 1e-9);
        assert!((at_1000 - 3.71).abs() < 1e-9);
        assert!(at_5000 > at_1000 && at_5000 < spec.full_avg_degree);
    }

    #[test]
    fn clustered_datasets_beat_flat_ones() {
        use lopacity_graph::VertexId;
        let triangle_density = |g: &Graph| {
            let mut closed = 0usize;
            let mut wedges = 0usize;
            for v in 0..g.num_vertices() as VertexId {
                let nbrs = g.neighbors(v);
                for (i, &a) in nbrs.iter().enumerate() {
                    for &b in &nbrs[i + 1..] {
                        wedges += 1;
                        if g.has_edge(a, b) {
                            closed += 1;
                        }
                    }
                }
            }
            closed as f64 / wedges.max(1) as f64
        };
        let google = Dataset::Google.generate(300, 5);
        let gnutella = Dataset::Gnutella.generate(300, 5);
        assert!(
            triangle_density(&google) > triangle_density(&gnutella) + 0.1,
            "google {} vs gnutella {}",
            triangle_density(&google),
            triangle_density(&gnutella)
        );
    }

    #[test]
    fn scaled_full_targets_table_2_density() {
        let g = Dataset::Gnutella.scaled_full(1000, 3);
        let avg = g.degree_sum() as f64 / 1000.0;
        assert!((avg - 7.4).abs() < 0.5, "scaled Gnutella avg {avg} vs 7.4");
    }

    #[test]
    fn deterministic_per_seed() {
        for d in [Dataset::Google, Dataset::Epinions, Dataset::Gnutella] {
            assert_eq!(d.generate(80, 9), d.generate(80, 9));
        }
    }
}
