//! Random-graph generators and synthetic stand-ins for the paper's datasets.
//!
//! The EDBT 2014 evaluation samples seven real networks (six from the
//! Stanford SNAP collection plus an ACM Digital Library crawl). Those raw
//! files are not redistributable with this repository, so this crate
//! synthesizes graphs whose *published statistics* (Tables 1–3: vertex and
//! edge counts, degree mean/standard deviation, average clustering
//! coefficient) match each dataset. The L-opacification algorithms observe a
//! graph only through its degree multiset and its short-path structure, so
//! calibrated synthetic inputs exercise exactly the same code paths — see
//! DESIGN.md §6 for the substitution argument.
//!
//! Generator families:
//!
//! * [`er`] — Erdős–Rényi `G(n, m)` and `G(n, p)` (flat degrees, no
//!   clustering: the Gnutella-like regime);
//! * [`ba`] — Barabási–Albert preferential attachment with the Holme–Kim
//!   triad-formation step (heavy-tailed degrees with tunable clustering:
//!   web graphs, e-mail, co-authorship);
//! * [`ws`] — Watts–Strogatz small worlds (high clustering, flat degrees);
//! * [`rmat`] — R-MAT/Kronecker-style recursive quadrant sampling;
//! * [`config_model`] — the configuration model over an explicit degree
//!   sequence, plus power-law sequence sampling ([`powerlaw`]);
//! * [`sample`] — the paper's sampling step (Section 6.1) producing
//!   100–1000-vertex experiment inputs;
//! * [`datasets`] — the calibrated registry: one entry per paper dataset.
//!
//! Everything is deterministic given a `u64` seed.

pub mod ba;
pub mod config_model;
pub mod datasets;
pub mod er;
pub mod powerlaw;
pub mod rmat;
pub mod sample;
pub mod ws;

pub use datasets::{Dataset, DatasetSpec};
