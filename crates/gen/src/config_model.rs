//! Configuration model: a uniform-ish simple graph over a fixed degree
//! sequence.
//!
//! Half-edges are shuffled and paired; pairings that would create self-loops
//! or parallel edges are resolved by edge-swap repair, falling back to
//! dropping the offending stubs after a bounded number of attempts (the
//! usual "erased configuration model", which perturbs the target sequence
//! only marginally for graphical sequences).

use lopacity_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Builds a simple graph whose degree sequence approximates `degrees`.
///
/// # Panics
/// Panics when a degree exceeds `n - 1` (not realizable in a simple graph).
pub fn configuration_model(degrees: &[usize], seed: u64) -> Graph {
    let n = degrees.len();
    for (v, &d) in degrees.iter().enumerate() {
        assert!(d < n.max(1), "degree {d} of vertex {v} not realizable among {n} vertices");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<VertexId> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat(v as VertexId).take(d));
    }
    let mut g = Graph::new(n);
    stubs.shuffle(&mut rng);
    let mut leftovers: Vec<(VertexId, VertexId)> = Vec::new();
    for pair in stubs.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        if a == b || !g.add_edge(a, b) {
            leftovers.push((a, b));
        }
    }
    // Repair pass: try to place each leftover pair by swapping with an
    // existing random edge: (a,b)+(c,d) -> (a,c)+(b,d).
    let edges = g.edge_vec();
    if !edges.is_empty() {
        for &(a, b) in &leftovers {
            let mut placed = false;
            for _ in 0..200 {
                let e = edges[rng.random_range(0..edges.len())];
                let (c, d) = e.endpoints();
                if !g.has_edge(c, d) {
                    continue; // this edge was consumed by an earlier swap
                }
                if a != c && b != d && a != d && b != c && !g.has_edge(a, c) && !g.has_edge(b, d) {
                    g.remove_edge(c, d);
                    g.add_edge(a, c);
                    g.add_edge(b, d);
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Erased: drop the stub pair.
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_sequence_is_realized_exactly() {
        let degrees = vec![3usize; 20];
        let g = configuration_model(&degrees, 5);
        g.check_invariants().unwrap();
        let realized = g.degree_sequence();
        let exact = realized.iter().filter(|&&d| d == 3).count();
        assert!(exact >= 18, "only {exact}/20 vertices kept degree 3");
    }

    #[test]
    fn heavy_sequence_is_approximated() {
        let mut degrees = vec![2usize; 50];
        degrees[0] = 20;
        degrees[1] = 19;
        degrees[2] = 1; // make the sum even: 100 - 4 + 39 + ... compute below
        let sum: usize = degrees.iter().sum();
        if sum % 2 == 1 {
            degrees[3] += 1;
        }
        let g = configuration_model(&degrees, 7);
        g.check_invariants().unwrap();
        assert!(g.degree(0) >= 15, "hub degree {} too low", g.degree(0));
    }

    #[test]
    fn empty_and_zero_degrees() {
        let g = configuration_model(&[], 1);
        assert_eq!(g.num_vertices(), 0);
        let g = configuration_model(&[0, 0, 0], 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    #[should_panic(expected = "not realizable")]
    fn rejects_impossible_degree() {
        configuration_model(&[5, 1, 1, 1], 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = vec![2usize; 30];
        assert_eq!(configuration_model(&d, 9), configuration_model(&d, 9));
    }

    #[test]
    fn total_degree_is_close_to_requested() {
        let degrees: Vec<usize> = (0..100).map(|i| 1 + i % 5).collect();
        let requested: usize = degrees.iter().sum();
        let g = configuration_model(&degrees, 13);
        let realized = g.degree_sum();
        assert!(
            realized + realized / 10 >= requested - requested / 10,
            "realized {realized} too far below requested {requested}"
        );
    }
}
