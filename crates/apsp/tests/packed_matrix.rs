//! Property tests: the nibble-packed [`DistanceMatrix`] is observationally
//! equivalent to the byte layout, across every engine, every worker count
//! of the sharded BFS build, and across the `L > NIBBLE_MAX_L` fallback
//! boundary where construction silently switches representation.

use lopacity_apsp::{ApspEngine, DistanceMatrix, INF, NIBBLE_MAX_L};
use lopacity_graph::Graph;
use lopacity_util::Parallelism;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..n * 3).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

/// Copies a matrix pair-by-pair into the opposite layout.
fn transcoded(m: &DistanceMatrix) -> DistanceMatrix {
    let mut out = if m.is_packed() {
        DistanceMatrix::new_byte(m.num_vertices())
    } else {
        DistanceMatrix::new_packed(m.num_vertices())
    };
    for idx in 0..m.num_pairs() {
        out.set_flat(idx, m.get_flat(idx));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Straddling the packing boundary: `L` in 13..=16 covers packed,
    /// boundary-packed (14), and the two first byte-fallback values. Every
    /// engine must agree with the Floyd–Warshall reference regardless of
    /// which representation `DistanceMatrix::new` picked.
    #[test]
    fn engines_agree_across_the_packing_boundary(
        g in arb_graph(14),
        l in (NIBBLE_MAX_L - 1)..=(NIBBLE_MAX_L + 2),
    ) {
        let reference = ApspEngine::FloydWarshall.compute(&g, l);
        prop_assert_eq!(reference.is_packed(), l <= NIBBLE_MAX_L);
        for engine in ApspEngine::ALL {
            let m = engine.compute(&g, l);
            prop_assert_eq!(m.is_packed(), l <= NIBBLE_MAX_L, "engine {}", engine.name());
            prop_assert_eq!(&m, &reference, "engine {} at L={}", engine.name(), l);
        }
    }

    /// A matrix transcoded into the opposite layout is equal (cross-layout
    /// PartialEq), reads back identically through every accessor, and
    /// counts the same within-L pairs.
    #[test]
    fn layouts_are_observationally_identical(g in arb_graph(16), l in 0u8..6) {
        let m = ApspEngine::TruncatedBfs.compute(&g, l);
        let other = transcoded(&m);
        prop_assert_ne!(m.is_packed(), other.is_packed());
        prop_assert_eq!(&m, &other);
        prop_assert_eq!(&other, &m);
        for idx in 0..m.num_pairs() {
            prop_assert_eq!(m.get_flat(idx), other.get_flat(idx));
            let (i, j) = m.pair_of(idx);
            prop_assert_eq!(other.pair_of(idx), (i, j));
            prop_assert_eq!(m.get(i, j), other.get(j, i));
        }
        prop_assert!(m.iter_pairs().eq(other.iter_pairs()));
        for cutoff in 0..=l.saturating_add(1) {
            prop_assert_eq!(m.count_within(cutoff), other.count_within(cutoff));
        }
        prop_assert_eq!(m.count_within(254), other.count_within(254));
    }

    /// The sharded BFS build equals the sequential one for any worker
    /// count, including counts above the vertex count.
    #[test]
    fn sharded_build_is_worker_count_invariant(
        g in arb_graph(24),
        l in 0u8..6,
        workers in 1usize..9,
    ) {
        let sequential = ApspEngine::TruncatedBfs.compute(&g, l);
        let sharded =
            ApspEngine::TruncatedBfs.compute_with(&g, l, Parallelism::Fixed(workers));
        prop_assert_eq!(&sharded, &sequential, "workers={}", workers);
    }

    /// Writing arbitrary legal values through `set` reads back exactly, in
    /// both layouts, with no bleed into the co-packed neighbor.
    #[test]
    fn random_writes_round_trip(
        n in 2usize..12,
        writes in proptest::collection::vec((0u32..12, 0u32..12, 0u8..15), 0..40),
    ) {
        let mut packed = DistanceMatrix::new_packed(n);
        let mut byte = DistanceMatrix::new_byte(n);
        let mut reference = vec![INF; n * (n - 1) / 2];
        for (a, b, d) in writes {
            let (i, j) = (a % n as u32, b % n as u32);
            if i == j {
                continue;
            }
            let d = if d == 14 { INF } else { d }; // exercise INF round-trips too
            packed.set(i, j, d);
            byte.set(i, j, d);
            reference[packed.index(i, j)] = d;
        }
        for (idx, &d) in reference.iter().enumerate() {
            prop_assert_eq!(packed.get_flat(idx), d, "packed flat {}", idx);
            prop_assert_eq!(byte.get_flat(idx), d, "byte flat {}", idx);
        }
        prop_assert_eq!(&packed, &byte);
    }
}

/// The acceptance bound: packed storage is at most 0.55× the byte layout
/// for every L that packs (and exactly the byte size beyond).
#[test]
fn packed_storage_meets_the_memory_budget() {
    for n in [10usize, 101, 1000] {
        let pairs = n * (n - 1) / 2;
        for l in 1..=NIBBLE_MAX_L {
            let m = DistanceMatrix::new(n, l);
            assert!(m.is_packed());
            assert!(
                (m.storage_bytes() as f64) <= 0.55 * pairs as f64,
                "n={n} l={l}: {} bytes vs {} pairs",
                m.storage_bytes(),
                pairs
            );
        }
        let fallback = DistanceMatrix::new(n, NIBBLE_MAX_L + 1);
        assert!(!fallback.is_packed());
        assert_eq!(fallback.storage_bytes(), pairs);
    }
}
