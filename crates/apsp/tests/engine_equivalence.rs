//! Property tests: the four APSP engines are interchangeable.

use lopacity_apsp::{ApspEngine, INF};
use lopacity_graph::Graph;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..n * 3).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_on_random_graphs(g in arb_graph(20), l in 0u8..6) {
        let reference = ApspEngine::FloydWarshall.compute(&g, l);
        for engine in ApspEngine::ALL {
            prop_assert_eq!(
                &engine.compute(&g, l),
                &reference,
                "engine {} disagrees at L={}",
                engine.name(),
                l
            );
        }
    }

    #[test]
    fn truncated_entries_never_exceed_l(g in arb_graph(20), l in 0u8..6) {
        let m = ApspEngine::TruncatedBfs.compute(&g, l);
        for (_, _, d) in m.iter_pairs() {
            prop_assert!(d == INF || d <= l);
        }
    }

    #[test]
    fn adjacency_pairs_have_distance_one(g in arb_graph(16), l in 1u8..5) {
        let m = ApspEngine::PointerFloydWarshall.compute(&g, l);
        for e in g.edges() {
            prop_assert_eq!(m.get(e.u(), e.v()), 1);
        }
    }

    #[test]
    fn distances_are_monotone_in_l(g in arb_graph(16), l in 1u8..5) {
        // Raising the threshold can only reveal pairs, never change a value
        // below the old threshold.
        let lo = ApspEngine::TruncatedBfs.compute(&g, l);
        let hi = ApspEngine::TruncatedBfs.compute(&g, l + 1);
        for (i, j, d) in lo.iter_pairs() {
            if d != INF {
                prop_assert_eq!(hi.get(i, j), d);
            }
        }
        for (i, j, d) in hi.iter_pairs() {
            if d != INF && d <= l {
                prop_assert_eq!(lo.get(i, j), d);
            }
        }
    }
}
