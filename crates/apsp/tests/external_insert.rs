//! Unit tests for the sparse store's **external-insert** paths — the
//! mutation shapes a churn stream produces, which the greedy-scan suites
//! under-exercise: ball growth across the L boundary (brand-new pairs
//! landing in overflow), overflow-cap compactions driven by out-of-band
//! inserts, external inserts interleaved with greedy-style removals, and
//! tombstone revival on re-insert of a deleted edge.

use lopacity_apsp::{ApspEngine, DistanceMatrix, SparseStore, INF};
use lopacity_graph::{Graph, VertexId};
use lopacity_util::testkit;

/// A path 0 – 1 – … – (n-1).
fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
}

/// Applies to `store` the cell diff between the truncated distances of
/// `before` and `after` — exactly the set of writes an evaluator's
/// external edge event issues — and returns the number of changed pairs.
fn apply_external_diff(
    store: &mut SparseStore,
    before: &DistanceMatrix,
    after: &DistanceMatrix,
) -> usize {
    let n = before.num_vertices();
    let mut changed = 0;
    for i in 0..n as VertexId {
        for j in i + 1..n as VertexId {
            let (old, new) = (before.get(i, j), after.get(i, j));
            if old != new {
                store.set(i, j, new);
                changed += 1;
            }
        }
    }
    changed
}

fn assert_matches(store: &SparseStore, reference: &DistanceMatrix, context: &str) {
    let n = reference.num_vertices();
    testkit::cells_match(n, |i, j| store.get(i, j), |i, j| reference.get(i, j), context)
        .unwrap();
    for i in 0..n as VertexId {
        let mut seen = Vec::new();
        store.for_each_finite_in_row(i, |j, d| seen.push((j, d)));
        let expected = testkit::finite_row(n, i, INF, |i, j| reference.get(i, j));
        assert_eq!(seen, expected, "row {i} iteration: {context}");
    }
}

/// An external insert that shortcuts a long path makes pairs cross the
/// `<= L` boundary *into* the store: their ids were never in the CSR
/// arena (built when they were unreachable within L), so every one of
/// them must land in row overflow — and the result must equal a fresh
/// build over the mutated graph.
#[test]
fn external_insert_grows_balls_across_the_l_boundary() {
    let l = 3u8;
    let g = path(30);
    let before = ApspEngine::TruncatedBfs.compute(&g, l);
    let mut store = SparseStore::from_graph(&g, l, 1);

    let mut mutated = g.clone();
    assert!(mutated.add_edge(0, 29));
    let after = ApspEngine::TruncatedBfs.compute(&mutated, l);

    let changed = apply_external_diff(&mut store, &before, &after);
    // The new within-L pairs: i -- 29-k with i + 1 + k <= L, i.e.
    // (0,29) (0,28) (0,27) (1,29) (1,28) (2,29) — six pairs, all formerly
    // beyond L.
    assert_eq!(changed, 6);
    assert_eq!(store.compactions(), 0, "six overflow pairs are far below any trigger");
    assert_eq!(
        store.overflow_entries(),
        12,
        "every boundary-crossing pair is arena-absent: 6 pairs × 2 directed rows"
    );
    assert_matches(&store, &after, "post-insert vs fresh build");
    let fresh = SparseStore::from_graph(&mutated, l, 1);
    assert_eq!(store.live(), fresh.live(), "live directed entries");
}

/// Repeated external inserts into one hub row push that row's overflow
/// past the per-row cap and force a compaction; contents must stay equal
/// to a dense mirror maintained in lockstep, before and after.
#[test]
fn hub_insert_stream_triggers_row_compaction()
{
    let l = 1u8;
    let n = 200usize;
    let g = path(n);
    let mut store = SparseStore::from_graph(&g, l, 1);
    let mut mirror = ApspEngine::TruncatedBfs.compute(&g, l);

    // At L = 1 an inserted edge changes exactly its own pair: a pure
    // overflow insert into both endpoint rows, concentrated on hub 0.
    let mut compacted_at = None;
    for j in 2..n as VertexId - 1 {
        store.set(0, j, 1);
        mirror.set(0, j, 1);
        if store.compactions() > 0 && compacted_at.is_none() {
            compacted_at = Some(j);
        }
    }
    let at = compacted_at.expect("a hub row crossing the 64-entry overflow cap must compact");
    // Overflow cap is 64 entries in row 0 (plus the two arena neighbours
    // the row was born with): the 65th overflow insert compacts.
    assert_eq!(at, 2 + 65 - 1, "compaction point must be a pure function of the stream");
    assert!(
        store.overflow_entries() < 65,
        "compaction folded the hub overflow into the arena"
    );
    assert_matches(&store, &mirror, "post-compaction vs dense mirror");
    assert_eq!(store.tombstone_entries(), 0);
}

/// External inserts interleaved with greedy-style removals (tombstones):
/// both mutation debts accumulate and the eventual compaction folds both
/// away, at a point that is a pure function of the stream — two stores
/// replaying the identical stream compact identically (the structural
/// determinism the fork-replay protocol relies on).
#[test]
fn interleaved_external_inserts_and_greedy_removals_compact_deterministically() {
    let l = 2u8;
    let n = 400usize;
    let g = path(n);
    let reference = ApspEngine::TruncatedBfs.compute(&g, l);
    let mut a = SparseStore::from_graph(&g, l, 1);
    let mut b = SparseStore::from_graph(&g, l, 1);
    let mut mirror = reference.clone();

    // Alternate: a greedy-style removal (tombstone an existing within-L
    // pair) and an external insert (a brand-new overflow pair). Spread
    // over many rows so the *global* ratio triggers, not the per-row cap.
    let mut step = 0u32;
    for i in 0..n as VertexId - 20 {
        // Tombstone the (i, i+1) pair.
        a.set(i, i + 1, INF);
        b.set(i, i + 1, INF);
        mirror.set(i, i + 1, INF);
        // External insert: pair (i, i+10) enters at a fake distance 1
        // (content is irrelevant to layout mechanics; equality is what we
        // assert).
        a.set(i, i + 10, 1);
        b.set(i, i + 10, 1);
        mirror.set(i, i + 10, 1);
        step += 1;
        assert_eq!(a.compactions(), b.compactions(), "step {step}: divergent compaction");
    }
    assert!(
        a.compactions() > 0,
        "the interleaved stream must cross the global debt threshold \
         (tombstones {} overflow {} live {})",
        a.tombstone_entries(),
        a.overflow_entries(),
        a.live()
    );
    assert_eq!(a.compactions(), b.compactions());
    assert_matches(&a, &mirror, "store A vs dense mirror");
    assert_matches(&b, &mirror, "store B vs dense mirror");
}

/// Deleting an edge's pairs and then re-inserting them (a churn stream
/// reviving a tombstoned edge) must revive the arena slots in place: no
/// overflow growth, no leftover tombstones, contents equal to the
/// original build.
#[test]
fn tombstone_revival_keeps_the_arena_in_place() {
    let l = 2u8;
    let g = path(50);
    let reference = ApspEngine::TruncatedBfs.compute(&g, l);
    let mut store = SparseStore::from_graph(&g, l, 1);

    // Tombstone every pair touching vertices 10..20, then restore.
    let mut killed: Vec<(VertexId, VertexId, u8)> = Vec::new();
    for i in 10..20 as VertexId {
        store.for_each_finite_in_row(i, |j, d| {
            if j > i || !(10..20).contains(&j) {
                killed.push((i, j, d));
            }
        });
    }
    for &(i, j, _) in &killed {
        store.set(i, j, INF);
    }
    assert!(store.tombstone_entries() > 0);
    let overflow_before = store.overflow_entries();
    for &(i, j, d) in &killed {
        store.set(i, j, d);
    }
    assert_eq!(store.tombstone_entries(), 0, "every revived slot left the tombstone set");
    assert_eq!(
        store.overflow_entries(),
        overflow_before,
        "revival must reuse arena slots, never the overflow"
    );
    assert_matches(&store, &reference, "after kill/revive round trip");
}
