//! Property tests: the two [`DistStore`] backends are interchangeable —
//! same truncated distances from every APSP engine, same behavior under
//! arbitrary mutation streams (including tombstone/compaction churn and
//! the `L = 14/15` packing boundary on the dense side).

use lopacity_apsp::{
    ApspEngine, DistStore, DistanceMatrix, SparseStore, StoreBackend, INF, NIBBLE_MAX_L,
};
use lopacity_graph::{Graph, VertexId};
use lopacity_util::{testkit, Parallelism};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..n * 3).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

/// All pairwise reads of a store against the reference matrix.
fn assert_matches_matrix(
    store: &DistStore,
    reference: &DistanceMatrix,
    context: &str,
) -> Result<(), TestCaseError> {
    let n = reference.num_vertices();
    prop_assert_eq!(store.num_vertices(), n, "vertex count: {}", context);
    let cells = testkit::cells_match(n, |i, j| store.get(i, j), |i, j| reference.get(i, j), context);
    prop_assert_eq!(cells, Ok(()));
    // Row iteration yields exactly the finite entries, ascending.
    for i in 0..n as VertexId {
        let mut seen = Vec::new();
        store.for_each_finite_in_row(i, |j, d| seen.push((j, d)));
        let expected = testkit::finite_row(n, i, INF, |i, j| reference.get(i, j));
        prop_assert_eq!(&seen, &expected, "row {} iteration: {}", i, context);
    }
    prop_assert_eq!(
        store.live_pairs(),
        reference.count_within(INF - 1),
        "live pairs: {}",
        context
    );
    prop_assert!(store == reference, "logical eq vs matrix: {}", context);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every engine × every backend × several worker counts produce the
    /// same truncated distances; the sparse direct-BFS build matches the
    /// dense-then-convert path.
    #[test]
    fn backends_agree_across_engines(g in arb_graph(18), l in 0u8..6) {
        let reference = ApspEngine::FloydWarshall.compute(&g, l);
        for engine in ApspEngine::ALL {
            for backend in [StoreBackend::Dense, StoreBackend::Sparse] {
                let store = engine.compute_store(&g, l, Parallelism::Off, backend);
                let context = format!("engine {} backend {}", engine.name(), backend);
                assert_matches_matrix(&store, &reference, &context)?;
            }
        }
        for workers in [1usize, 2, 3, 8] {
            let sparse = SparseStore::from_graph(&g, l, workers);
            assert_matches_matrix(
                &DistStore::Sparse(sparse),
                &reference,
                &format!("direct sparse build, workers={workers}"),
            )?;
        }
    }

    /// An arbitrary mutation stream (updates, removals, insertions —
    /// enough of them to cross compaction triggers on small stores) keeps
    /// the sparse store logically identical to a dense mirror, across the
    /// nibble/byte packing boundary.
    #[test]
    fn mutation_streams_keep_backends_identical(
        g in arb_graph(14),
        l_sel in 0usize..4,
        edits in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 1..200),
    ) {
        let l = [2, NIBBLE_MAX_L, NIBBLE_MAX_L + 1, 6][l_sel];
        let n = g.num_vertices();
        let mut sparse = DistStore::Sparse(SparseStore::from_graph(&g, l, 1));
        let mut dense = DistStore::Dense(ApspEngine::TruncatedBfs.compute(&g, l));
        for (a, b, raw_d) in edits {
            let i = (a as usize % n) as VertexId;
            let j = (b as usize % n) as VertexId;
            if i == j {
                continue;
            }
            // Legal values only: distances 1..=l (nibble-representable by
            // construction) or INF (removal).
            let d = if raw_d % 4 == 0 || l == 0 { INF } else { 1 + raw_d % l.max(1) };
            sparse.set(i, j, d);
            dense.set(i, j, d);
            prop_assert_eq!(sparse.get(i, j), dense.get(i, j));
        }
        prop_assert_eq!(&sparse, &dense, "post-stream logical equality");
        prop_assert_eq!(sparse.live_pairs(), dense.live_pairs());
        // Row iteration order and content agree row by row.
        for i in 0..n as VertexId {
            let mut from_sparse = Vec::new();
            sparse.for_each_finite_in_row(i, |j, d| from_sparse.push((j, d)));
            let mut from_dense = Vec::new();
            dense.for_each_finite_in_row(i, |j, d| from_dense.push((j, d)));
            prop_assert_eq!(&from_sparse, &from_dense, "row {}", i);
        }
    }

    /// Remove-then-restore round trips land the sparse store back on the
    /// original content regardless of how many tombstones, overflow
    /// entries, or compactions the excursion produced.
    #[test]
    fn remove_restore_round_trips(g in arb_graph(14), l in 1u8..5) {
        let reference = ApspEngine::TruncatedBfs.compute(&g, l);
        let mut store = DistStore::Sparse(SparseStore::from_graph(&g, l, 1));
        let finite: Vec<(VertexId, VertexId, u8)> = {
            let mut pairs = Vec::new();
            store.for_each_finite_pair(|i, j, d| pairs.push((i, j, d)));
            pairs
        };
        // Tombstone everything…
        for &(i, j, _) in &finite {
            store.set(i, j, INF);
        }
        prop_assert_eq!(store.live_pairs(), 0);
        // …then restore in reverse order (half lands in overflow).
        for &(i, j, d) in finite.iter().rev() {
            store.set(i, j, d);
        }
        prop_assert!(store == reference, "round trip lost content");
    }
}

/// `Auto` must resolve to *some* backend whose contents equal both forced
/// backends — on a graph large enough to clear the adaptive floor.
#[test]
fn auto_backend_is_consistent_at_scale() {
    // A ring of 5000 vertices: mean within-2 ball = 4, so Auto must pick
    // sparse; contents must still match the forced-dense build.
    let n = 5000usize;
    let g = Graph::from_edges(
        n,
        (0..n as u32).map(|i| (i, ((i + 1) % n as u32))),
    )
    .unwrap();
    let auto = ApspEngine::TruncatedBfs.compute_store(&g, 2, Parallelism::Off, StoreBackend::Auto);
    assert!(auto.is_sparse(), "a ring is maximally within-L-sparse");
    let dense = ApspEngine::TruncatedBfs.compute_store(&g, 2, Parallelism::Off, StoreBackend::Dense);
    assert_eq!(auto, dense);
    assert_eq!(auto.live_pairs(), 2 * n); // each vertex: 2 at d=1, 2 at d=2
    assert!(
        auto.storage_bytes() * 10 < dense.storage_bytes(),
        "sparse ring must be far below a tenth of the dense footprint \
         ({} vs {} bytes)",
        auto.storage_bytes(),
        dense.storage_bytes()
    );
}

/// The packing boundary on the dense side of the store: `L = 14` packs
/// two pairs per byte, `L = 15` falls back to bytes; the sparse backend is
/// unaffected and equal to both.
#[test]
fn packing_boundary_is_store_invisible() {
    let g = Graph::from_edges(40, (0..39u32).map(|i| (i, i + 1))).unwrap();
    for l in [NIBBLE_MAX_L, NIBBLE_MAX_L + 1] {
        let dense = ApspEngine::TruncatedBfs.compute_store(&g, l, Parallelism::Off, StoreBackend::Dense);
        let sparse = ApspEngine::TruncatedBfs.compute_store(&g, l, Parallelism::Off, StoreBackend::Sparse);
        let packed = match &dense {
            DistStore::Dense(m) => m.is_packed(),
            DistStore::Sparse(_) => unreachable!("forced dense"),
        };
        assert_eq!(packed, l <= NIBBLE_MAX_L, "L={l}");
        assert_eq!(dense, sparse, "L={l}");
    }
}
