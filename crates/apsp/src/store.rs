//! Output-sensitive distance storage: one interface, two representations.
//!
//! The greedy heuristics only ever care about vertex pairs within distance
//! `L`. The dense [`DistanceMatrix`] spends `Θ(|V|²)` bytes regardless —
//! ~25 MB nibble-packed at `|V| = 10⁴` and a hopeless 2.5 GB at `10⁵` —
//! while the number of *finite* truncated distances is `Σ_v |ball_L(v)|`,
//! which on the sparse graphs of the paper's evaluation is orders of
//! magnitude smaller. [`DistStore`] abstracts over both:
//!
//! * [`DistStore::Dense`] — the packed triangular matrix, still the right
//!   call for small or within-L-dense inputs (O(1) random access, no
//!   per-entry overhead);
//! * [`DistStore::Sparse`] — a [`SparseStore`]: per-source sorted within-L
//!   neighbor lists in a CSR-style arena, a small sorted per-source
//!   overflow vector for insertions, and tombstone-plus-compaction for
//!   removals. Memory is `O(Σ |ball_L(v)|)`, and row iteration — the
//!   evaluator's hot loop — is `O(|ball_L(v)|)` instead of `O(|V|)`.
//!
//! The backend is chosen once, at build time ([`DistStore::build`]):
//! [`StoreBackend::Auto`] samples a few within-L balls and picks whichever
//! representation is estimated smaller. The choice is invisible through
//! the accessor API and never affects results — both backends hold exactly
//! the same truncated distances (cross-backend [`PartialEq`] is logical,
//! and the equivalence is property-tested across every APSP engine in
//! `tests/store_equivalence.rs`).

use crate::bfs::{sampled_mean_ball, TruncatedBfs};
use crate::dist::{DistanceMatrix, INF, NIBBLE_MAX_L};
use crate::engine::ApspEngine;
use lopacity_graph::{Graph, VertexId};
use lopacity_util::{pool, Parallelism};

/// Which distance representation a build should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// Estimate the within-L density from a sample of BFS balls and pick
    /// whichever backend is predicted to occupy less memory (default).
    #[default]
    Auto,
    /// Always the packed triangular [`DistanceMatrix`].
    Dense,
    /// Always the [`SparseStore`].
    Sparse,
}

impl StoreBackend {
    /// Short stable name (CSV columns, bench ids).
    pub fn name(self) -> &'static str {
        match self {
            StoreBackend::Auto => "auto",
            StoreBackend::Dense => "dense",
            StoreBackend::Sparse => "sparse",
        }
    }
}

impl std::str::FromStr for StoreBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(StoreBackend::Auto),
            "dense" => Ok(StoreBackend::Dense),
            "sparse" => Ok(StoreBackend::Sparse),
            other => {
                Err(format!("unknown store backend {other:?} (expected auto, dense or sparse)"))
            }
        }
    }
}

impl std::fmt::Display for StoreBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fewest vertices for which [`StoreBackend::Auto`] even considers the
/// sparse representation: below this the dense matrix is at most a few
/// hundred KB and its O(1) access wins outright.
const AUTO_MIN_SPARSE_VERTICES: usize = 4096;

/// Ball samples drawn by the adaptive backend choice.
const AUTO_DENSITY_SAMPLES: usize = 64;

/// Bytes per directed sparse entry (`u32` neighbor + `u8` distance in the
/// parallel arena vectors).
const DIRECTED_ENTRY_BYTES: usize = 5;

/// The pure decision function behind [`StoreBackend::Auto`]: given the
/// vertex count, the measured (sampled) mean within-L ball size, and `l`,
/// would the sparse representation be smaller than the dense one?
///
/// Estimated sparse footprint: `n · ball · 5` bytes of arena entries (each
/// finite pair appears in both endpoint rows) plus the row-offset table;
/// dense footprint: `n (n−1) / 2` pairs at a nibble (`l ≤ 14`) or byte
/// each. Tiny graphs (under 4096 vertices) always stay dense. Exposed
/// (and unit-pinned) separately from the sampling so the policy is
/// testable without building 10⁵-vertex graphs.
pub fn auto_prefers_sparse(n: usize, mean_ball: f64, l: u8) -> bool {
    if n < AUTO_MIN_SPARSE_VERTICES {
        return false;
    }
    let dense = dense_bytes(n, l);
    let sparse =
        n as f64 * mean_ball * DIRECTED_ENTRY_BYTES as f64 + ((n + 1) as f64 * 8.0);
    sparse < dense as f64
}

/// Packed dense footprint for `n` vertices at threshold `l`, in bytes.
/// Overflow-safe for any `usize` n (the pair count is computed in `u128`
/// and saturated), so admission-control callers can feed it attacker-
/// declared vertex counts without wrapping.
fn dense_bytes(n: usize, l: u8) -> u128 {
    let pairs = n as u128 * n.saturating_sub(1) as u128 / 2;
    if l <= NIBBLE_MAX_L {
        pairs.div_ceil(2)
    } else {
        pairs
    }
}

/// Expected mean within-L ball size for a graph with `n` vertices and `m`
/// edges, from the branching-process approximation: mean degree
/// `d = 2m/n`, level `i` of a BFS tree holds ≈ `d (d−1)^(i−1)` vertices,
/// so `|ball_L| ≈ Σ_{i=1..L} d (d−1)^(i−1)`, capped at `n − 1`. This is
/// the spec-only stand-in for [`sampled_mean_ball`], which needs the built
/// graph; on G(n, m)-like inputs the two agree to within a small factor
/// (locally tree-like), and on clustered graphs it over-estimates —
/// conservative in the direction admission control wants.
pub fn expected_mean_ball(n: usize, m: usize, l: u8) -> f64 {
    if n < 2 || m == 0 || l == 0 {
        return 0.0;
    }
    let cap = (n - 1) as f64;
    let d = 2.0 * m as f64 / n as f64;
    let branch = (d - 1.0).max(1.0);
    let mut ball = 0.0f64;
    let mut level = d;
    for _ in 0..l {
        ball += level;
        if ball >= cap {
            return cap;
        }
        level *= branch;
    }
    ball.min(cap)
}

/// Predicted memory footprint, in bytes, of the [`DistStore`] a job with
/// `n` vertices, `m` edges and threshold `l` will occupy under `store` —
/// computable from a job spec alone, before any graph is materialized or
/// any APSP build starts. This hoists the per-backend estimate behind
/// [`StoreBackend::Auto`]'s prepare-time decision into a pure function the
/// daemon's admission control can ask first:
///
/// * `Dense` — `n (n−1) / 2` pairs at a nibble (`l ≤ 14`) or a byte each;
/// * `Sparse` — `n · ball̂ · 5` arena bytes plus the `(n+1) · 8`-byte row
///   offset table, with `ball̂ = `[`expected_mean_ball`]`(n, m, l)`;
/// * `Auto` — whichever of the two [`auto_prefers_sparse`] would pick for
///   that expected ball (dense below the 4096-vertex sparse floor).
///
/// All arithmetic is overflow-checked/saturating: a pathological declared
/// `n = 10⁹` yields a huge (rejectable) number, never a wrap-around small
/// one. Saturates at `u64::MAX`.
pub fn estimate_footprint(n: usize, m: usize, l: u8, store: StoreBackend) -> u64 {
    let dense = dense_bytes(n, l);
    let sparse = {
        let ball = expected_mean_ball(n, m, l);
        let arena = (n as f64 * ball * DIRECTED_ENTRY_BYTES as f64).ceil();
        let offsets = (n as u128).saturating_add(1).saturating_mul(8);
        if arena >= u128::MAX as f64 {
            u128::MAX
        } else {
            (arena as u128).saturating_add(offsets)
        }
    };
    let estimate = match store {
        StoreBackend::Dense => dense,
        StoreBackend::Sparse => sparse,
        StoreBackend::Auto => {
            if n >= AUTO_MIN_SPARSE_VERTICES && sparse < dense {
                sparse
            } else {
                dense
            }
        }
    };
    u64::try_from(estimate).unwrap_or(u64::MAX)
}

/// A truncated distance store: every finite entry is a geodesic distance
/// `<= L`; everything longer (or unreachable) reads as [`INF`].
///
/// Both variants expose the same accessor surface; see the [module
/// docs](self) for when each wins. [`PartialEq`] is *logical* — a dense
/// and a sparse store holding the same truncated distances are equal.
#[derive(Clone)]
pub enum DistStore {
    /// Packed triangular matrix: `Θ(n²)` bytes, O(1) access.
    Dense(DistanceMatrix),
    /// CSR-arena within-L rows: `O(Σ |ball|)` bytes, O(ball) row scans.
    Sparse(SparseStore),
}

impl DistStore {
    /// Builds the store for `graph` at threshold `l` using `engine`,
    /// resolving [`StoreBackend::Auto`] from `n` and a sampled within-L
    /// density. Only the truncated-BFS engine builds the sparse rows
    /// directly (never materializing `Θ(n²)` state); the Floyd–Warshall
    /// family computes its dense matrix first and converts — those engines
    /// are `Θ(n²)`-resident by nature anyway.
    pub fn build(
        graph: &Graph,
        l: u8,
        engine: ApspEngine,
        parallelism: Parallelism,
        backend: StoreBackend,
    ) -> DistStore {
        let sparse = match backend {
            StoreBackend::Dense => false,
            StoreBackend::Sparse => true,
            // Check the vertex floor before paying for the density
            // probes: small graphs discard the sample unconditionally.
            StoreBackend::Auto => {
                graph.num_vertices() >= AUTO_MIN_SPARSE_VERTICES
                    && auto_prefers_sparse(
                        graph.num_vertices(),
                        sampled_mean_ball(graph, l, AUTO_DENSITY_SAMPLES),
                        l,
                    )
            }
        };
        if sparse {
            match engine {
                ApspEngine::TruncatedBfs => DistStore::Sparse(SparseStore::from_graph(
                    graph,
                    l,
                    crate::engine::build_workers(parallelism, graph.num_vertices()),
                )),
                other => {
                    DistStore::Sparse(SparseStore::from_matrix(&other.compute(graph, l)))
                }
            }
        } else {
            DistStore::Dense(engine.compute_with(graph, l, parallelism))
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        match self {
            DistStore::Dense(m) => m.num_vertices(),
            DistStore::Sparse(s) => s.num_vertices(),
        }
    }

    /// Whether this is the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, DistStore::Sparse(_))
    }

    /// Short stable backend name (`"dense"` / `"sparse"`).
    pub fn backend_name(&self) -> &'static str {
        match self {
            DistStore::Dense(_) => "dense",
            DistStore::Sparse(_) => "sparse",
        }
    }

    /// Truncated distance between `i` and `j` (0 when `i == j`). O(1)
    /// dense, O(log ball) sparse.
    #[inline]
    pub fn get(&self, i: VertexId, j: VertexId) -> u8 {
        match self {
            DistStore::Dense(m) => m.get(i, j),
            DistStore::Sparse(s) => s.get(i, j),
        }
    }

    /// Sets the truncated distance of a pair; [`INF`] removes it.
    ///
    /// # Panics
    /// Panics when `i == j` or either id is out of range.
    #[inline]
    pub fn set(&mut self, i: VertexId, j: VertexId, d: u8) {
        match self {
            DistStore::Dense(m) => m.set(i, j, d),
            DistStore::Sparse(s) => s.set(i, j, d),
        }
    }

    /// Calls `f(j, d)` for every vertex `j != i` with a *finite* truncated
    /// distance `d` to `i`, in ascending `j`. This is the evaluator's hot
    /// row scan: O(n) dense, O(ball) sparse.
    #[inline]
    pub fn for_each_finite_in_row(&self, i: VertexId, mut f: impl FnMut(VertexId, u8)) {
        match self {
            DistStore::Dense(m) => {
                let n = m.num_vertices() as VertexId;
                for j in 0..n {
                    if j != i {
                        let d = m.get(i, j);
                        if d != INF {
                            f(j, d);
                        }
                    }
                }
            }
            DistStore::Sparse(s) => s.for_each_finite_in_row(i, f),
        }
    }

    /// Calls `f(i, j, d)` for every finite pair with `i < j`, rows
    /// ascending, `j` ascending within a row.
    pub fn for_each_finite_pair(&self, mut f: impl FnMut(VertexId, VertexId, u8)) {
        match self {
            DistStore::Dense(m) => {
                for (i, j, d) in m.iter_pairs() {
                    if d != INF {
                        f(i, j, d);
                    }
                }
            }
            DistStore::Sparse(s) => {
                for i in 0..s.num_vertices() as VertexId {
                    s.for_each_finite_in_row(i, |j, d| {
                        if j > i {
                            f(i, j, d);
                        }
                    });
                }
            }
        }
    }

    /// Number of unordered pairs currently within L. O(1) sparse, one
    /// triangle scan dense.
    pub fn live_pairs(&self) -> usize {
        match self {
            DistStore::Dense(m) => m.count_within(INF - 1),
            DistStore::Sparse(s) => s.live() / 2,
        }
    }

    /// Average finite entries per row (`2 · live_pairs / n`), at least 1 —
    /// the evaluator's per-trial cost estimate is denominated in this.
    pub fn mean_row(&self) -> usize {
        let n = self.num_vertices();
        if n == 0 {
            return 1;
        }
        (2 * self.live_pairs() / n).max(1)
    }

    /// Bytes of backing storage (arena + offsets + overflow for sparse;
    /// the packed triangle for dense).
    pub fn storage_bytes(&self) -> usize {
        match self {
            DistStore::Dense(m) => m.storage_bytes(),
            DistStore::Sparse(s) => s.storage_bytes(),
        }
    }

    /// Materializes the dense matrix holding the same truncated distances
    /// (`l` picks the packing, exactly like [`DistanceMatrix::new`]).
    pub fn to_dense(&self, l: u8) -> DistanceMatrix {
        match self {
            DistStore::Dense(m) => m.clone(),
            DistStore::Sparse(s) => {
                let mut m = DistanceMatrix::new(s.num_vertices(), l);
                self.for_each_finite_pair(|i, j, d| m.set(i, j, d));
                m
            }
        }
    }
}

impl PartialEq for DistStore {
    /// Logical equality: same vertex count, same truncated distance for
    /// every pair — regardless of backend, packing, tombstones, overflow,
    /// or compaction history.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DistStore::Dense(a), DistStore::Dense(b)) => a == b,
            (DistStore::Sparse(a), DistStore::Sparse(b)) => a.logical_eq(b),
            (DistStore::Dense(d), DistStore::Sparse(s))
            | (DistStore::Sparse(s), DistStore::Dense(d)) => s.eq_dense(d),
        }
    }
}

impl Eq for DistStore {}

impl PartialEq<DistanceMatrix> for DistStore {
    fn eq(&self, other: &DistanceMatrix) -> bool {
        match self {
            DistStore::Dense(m) => m == other,
            DistStore::Sparse(s) => s.eq_dense(other),
        }
    }
}

impl std::fmt::Debug for DistStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DistStore({}, n={}, live_pairs={}, {} bytes)",
            self.backend_name(),
            self.num_vertices(),
            self.live_pairs(),
            self.storage_bytes()
        )
    }
}

/// Arena tombstone / "no entry" marker: [`INF`] doubles as both because a
/// live entry is by definition finite.
const TOMBSTONE: u8 = INF;

/// Compaction slack: tombstone or overflow populations below this never
/// trigger a rebuild (tiny stores would otherwise compact on every churn).
const COMPACT_SLACK: usize = 64;

/// Per-row overflow cap: a single row's overflow beyond this triggers a
/// compaction regardless of global ratios (it linearizes that row's reads).
const ROW_OVERFLOW_MAX: usize = 64;

/// The sparse truncated-distance store: for every source `v`, the sorted
/// list of vertices within distance L of `v` (each finite pair appears in
/// both endpoint rows).
///
/// Layout: one CSR-style arena (`row_start` offsets into parallel
/// neighbor/distance vectors) built in one pass, plus two mutation
/// side-structures that keep edits cheap without moving the arena:
///
/// * **removals** write a tombstone ([`INF`]) over the arena slot — O(log
///   ball), no shifting;
/// * **insertions** go to a small sorted per-row overflow vector — arena
///   rows cannot grow in place;
/// * a **compaction** rebuilds the arena (merging overflow, dropping
///   tombstones) once tombstones or overflow exceed a quarter of the live
///   entries (plus slack), or any single row's overflow passes the
///   per-row cap (64) — amortized O(1) per mutation.
///
/// Re-inserting a tombstoned pair revives the arena slot in place (an id
/// never lives in a row's arena segment and its overflow simultaneously),
/// which is what keeps apply → undo churn from growing the store.
/// Compaction points are a pure function of the mutation sequence, so
/// evaluator forks replaying identical commit streams stay structurally
/// identical, not merely logically equal.
#[derive(Clone)]
pub struct SparseStore {
    n: usize,
    /// `n + 1` offsets into the arena vectors.
    row_start: Vec<usize>,
    /// Arena neighbor ids, ascending within each row.
    nbr: Vec<VertexId>,
    /// Arena distances; [`TOMBSTONE`] marks a dead slot.
    dval: Vec<u8>,
    /// Sorted per-row insertion overflow, disjoint from the arena ids.
    overflow: Vec<Vec<(VertexId, u8)>>,
    /// Live *directed* entries (arena live + overflow). Twice the number
    /// of finite pairs.
    live: usize,
    /// Dead arena slots awaiting compaction.
    tombstones: usize,
    /// Total overflow entries across rows.
    overflow_len: usize,
    /// Arena rebuilds performed (compaction-trigger tests read this).
    compactions: u64,
}

impl SparseStore {
    /// Builds the store with one depth-L BFS per source, sharded across up
    /// to `workers` scoped threads (sources are independent; each worker
    /// emits the rows of a contiguous source range and the caller
    /// concatenates, so the result is identical for every worker count).
    /// Peak memory is the finished store itself plus per-worker BFS
    /// scratch — no `Θ(n²)` intermediate.
    pub fn from_graph(graph: &Graph, l: u8, workers: usize) -> SparseStore {
        let n = graph.num_vertices();
        let sources: Vec<VertexId> = (0..n as VertexId).collect();
        let shards = pool::run_sharded(&sources, workers.max(1), |_offset, shard| {
            let mut bfs = TruncatedBfs::new(n);
            let mut nbr: Vec<VertexId> = Vec::new();
            let mut dval: Vec<u8> = Vec::new();
            let mut lens: Vec<usize> = Vec::with_capacity(shard.len());
            let mut row: Vec<(VertexId, u8)> = Vec::new();
            for &src in shard {
                bfs.run(graph, src, l);
                row.clear();
                row.extend(
                    bfs.reached().iter().filter(|&&v| v != src).map(|&v| (v, bfs.dist(v))),
                );
                row.sort_unstable_by_key(|&(v, _)| v);
                lens.push(row.len());
                nbr.extend(row.iter().map(|&(v, _)| v));
                dval.extend(row.iter().map(|&(_, d)| d));
            }
            (nbr, dval, lens)
        });
        let mut store = SparseStore {
            n,
            row_start: Vec::with_capacity(n + 1),
            nbr: Vec::new(),
            dval: Vec::new(),
            overflow: vec![Vec::new(); n],
            live: 0,
            tombstones: 0,
            overflow_len: 0,
            compactions: 0,
        };
        store.row_start.push(0);
        for (nbr, dval, lens) in shards {
            for len in lens {
                let last = *store.row_start.last().expect("row_start starts non-empty");
                store.row_start.push(last + len);
            }
            store.live += nbr.len();
            store.nbr.extend(nbr);
            store.dval.extend(dval);
        }
        debug_assert_eq!(store.row_start.len(), n + 1);
        store
    }

    /// Converts a dense matrix (row scans — `Θ(n²)` once; used for the
    /// inherently dense Floyd–Warshall engines and for tests).
    pub fn from_matrix(m: &DistanceMatrix) -> SparseStore {
        let n = m.num_vertices();
        let mut store = SparseStore {
            n,
            row_start: Vec::with_capacity(n + 1),
            nbr: Vec::new(),
            dval: Vec::new(),
            overflow: vec![Vec::new(); n],
            live: 0,
            tombstones: 0,
            overflow_len: 0,
            compactions: 0,
        };
        store.row_start.push(0);
        for i in 0..n as VertexId {
            for j in 0..n as VertexId {
                if j != i {
                    let d = m.get(i, j);
                    if d != INF {
                        store.nbr.push(j);
                        store.dval.push(d);
                    }
                }
            }
            store.row_start.push(store.nbr.len());
        }
        store.live = store.nbr.len();
        store
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Live *directed* entries (each finite pair counts twice).
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Dead arena slots awaiting compaction.
    pub fn tombstone_entries(&self) -> usize {
        self.tombstones
    }

    /// Entries currently parked in overflow vectors.
    pub fn overflow_entries(&self) -> usize {
        self.overflow_len
    }

    /// Arena rebuilds performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Bytes of backing storage: arena entries (live + tombstoned), the
    /// row-offset table, the per-row overflow `Vec` headers, and overflow
    /// entries (entries counted by length, not capacity — capacity is
    /// allocator-dependent; length is the stable, comparable figure the
    /// benches track).
    pub fn storage_bytes(&self) -> usize {
        self.nbr.len() * DIRECTED_ENTRY_BYTES
            + self.row_start.len() * std::mem::size_of::<usize>()
            + self.overflow.len() * std::mem::size_of::<Vec<(VertexId, u8)>>()
            + self.overflow_len * DIRECTED_ENTRY_BYTES
    }

    /// The arena segment of row `i`.
    #[inline]
    fn row(&self, i: VertexId) -> (usize, usize) {
        (self.row_start[i as usize], self.row_start[i as usize + 1])
    }

    /// Truncated distance between `i` and `j` (0 when `i == j`):
    /// binary-search the arena row, then the overflow.
    pub fn get(&self, i: VertexId, j: VertexId) -> u8 {
        if i == j {
            return 0;
        }
        debug_assert!((i as usize) < self.n && (j as usize) < self.n);
        let (start, end) = self.row(i);
        if let Ok(k) = self.nbr[start..end].binary_search(&j) {
            return self.dval[start + k]; // TOMBSTONE already reads as INF
        }
        match self.overflow[i as usize].binary_search_by_key(&j, |&(v, _)| v) {
            Ok(k) => self.overflow[i as usize][k].1,
            Err(_) => INF,
        }
    }

    /// Sets the truncated distance of the pair (both directed rows);
    /// [`INF`] removes it. May trigger a compaction.
    ///
    /// # Panics
    /// Panics when `i == j` or either id is out of range.
    pub fn set(&mut self, i: VertexId, j: VertexId, d: u8) {
        assert!(i != j, "no diagonal entries: ({i}, {j})");
        assert!(
            (i as usize) < self.n && (j as usize) < self.n,
            "pair ({i}, {j}) out of range (n={})",
            self.n
        );
        self.set_directed(i, j, d);
        self.set_directed(j, i, d);
        self.maybe_compact(i, j);
    }

    fn set_directed(&mut self, i: VertexId, j: VertexId, d: u8) {
        let (start, end) = self.row(i);
        if let Ok(k) = self.nbr[start..end].binary_search(&j) {
            let slot = &mut self.dval[start + k];
            if d == INF {
                if *slot != TOMBSTONE {
                    *slot = TOMBSTONE;
                    self.tombstones += 1;
                    self.live -= 1;
                }
            } else {
                if *slot == TOMBSTONE {
                    self.tombstones -= 1;
                    self.live += 1;
                }
                *slot = d;
            }
            return;
        }
        let over = &mut self.overflow[i as usize];
        match over.binary_search_by_key(&j, |&(v, _)| v) {
            Ok(k) => {
                if d == INF {
                    over.remove(k);
                    self.overflow_len -= 1;
                    self.live -= 1;
                } else {
                    over[k].1 = d;
                }
            }
            Err(k) => {
                if d != INF {
                    over.insert(k, (j, d));
                    self.overflow_len += 1;
                    self.live += 1;
                }
            }
        }
    }

    /// Rebuilds the arena when mutation debt crosses the thresholds; the
    /// decision reads only the store's own counters (plus the two rows the
    /// triggering [`SparseStore::set`] touched), so replaying an identical
    /// mutation stream compacts at identical points.
    fn maybe_compact(&mut self, i: VertexId, j: VertexId) {
        let global = self.tombstones > self.live / 4 + COMPACT_SLACK
            || self.overflow_len > self.live / 4 + COMPACT_SLACK;
        let row_hot = self.overflow[i as usize].len() > ROW_OVERFLOW_MAX
            || self.overflow[j as usize].len() > ROW_OVERFLOW_MAX;
        if global || row_hot {
            self.compact();
        }
    }

    /// Rebuilds the arena: merges each row's live arena entries with its
    /// overflow, drops tombstones, resets the offsets. O(live + dead).
    /// The merge itself is [`SparseStore::for_each_finite_in_row`] — the
    /// one definition of what a row logically contains.
    fn compact(&mut self) {
        let mut nbr: Vec<VertexId> = Vec::with_capacity(self.live);
        let mut dval: Vec<u8> = Vec::with_capacity(self.live);
        let mut row_start: Vec<usize> = Vec::with_capacity(self.n + 1);
        row_start.push(0);
        for i in 0..self.n as VertexId {
            self.for_each_finite_in_row(i, |j, d| {
                nbr.push(j);
                dval.push(d);
            });
            row_start.push(nbr.len());
        }
        debug_assert_eq!(nbr.len(), self.live, "compaction must keep every live entry");
        self.nbr = nbr;
        self.dval = dval;
        self.row_start = row_start;
        for over in &mut self.overflow {
            over.clear();
        }
        self.tombstones = 0;
        self.overflow_len = 0;
        self.compactions += 1;
    }

    /// Calls `f(j, d)` for every finite entry of row `i`, ascending `j`
    /// (arena and overflow merged, tombstones skipped). O(ball).
    pub fn for_each_finite_in_row(&self, i: VertexId, mut f: impl FnMut(VertexId, u8)) {
        let (start, end) = self.row(i);
        let over = &self.overflow[i as usize];
        let (mut a, mut b) = (start, 0usize);
        loop {
            while a < end && self.dval[a] == TOMBSTONE {
                a += 1;
            }
            match (a < end, b < over.len()) {
                (false, false) => break,
                (true, false) => {
                    f(self.nbr[a], self.dval[a]);
                    a += 1;
                }
                (false, true) => {
                    f(over[b].0, over[b].1);
                    b += 1;
                }
                (true, true) => {
                    if self.nbr[a] < over[b].0 {
                        f(self.nbr[a], self.dval[a]);
                        a += 1;
                    } else {
                        f(over[b].0, over[b].1);
                        b += 1;
                    }
                }
            }
        }
    }

    /// Logical equality with another sparse store (layouts may differ).
    fn logical_eq(&self, other: &SparseStore) -> bool {
        if self.n != other.n || self.live != other.live {
            return false;
        }
        for i in 0..self.n as VertexId {
            let mut equal = true;
            self.for_each_finite_in_row(i, |j, d| {
                if other.get(i, j) != d {
                    equal = false;
                }
            });
            if !equal {
                return false;
            }
        }
        true
    }

    /// Logical equality with a dense matrix.
    fn eq_dense(&self, m: &DistanceMatrix) -> bool {
        if self.n != m.num_vertices() {
            return false;
        }
        // Every finite pair counted by the matrix must be live here (same
        // count + every live entry matches ⇒ the sets coincide).
        if self.live != 2 * m.count_within(INF - 1) {
            return false;
        }
        for i in 0..self.n as VertexId {
            let mut equal = true;
            self.for_each_finite_in_row(i, |j, d| {
                if m.get(i, j) != d {
                    equal = false;
                }
            });
            if !equal {
                return false;
            }
        }
        true
    }
}

impl std::fmt::Debug for SparseStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SparseStore(n={}, live={}, tombstones={}, overflow={}, compactions={})",
            self.n, self.live, self.tombstones, self.overflow_len, self.compactions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::truncated_bfs_apsp;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn sparse_build_matches_dense_on_the_paper_graph() {
        let g = paper_graph();
        for l in 1..=4u8 {
            let dense = truncated_bfs_apsp(&g, l);
            for workers in [1usize, 2, 3, 8] {
                let sparse = SparseStore::from_graph(&g, l, workers);
                assert!(sparse.eq_dense(&dense), "L={l} workers={workers}");
                for i in 0..7 {
                    for j in 0..7 {
                        assert_eq!(sparse.get(i, j), dense.get(i, j), "({i},{j}) L={l}");
                    }
                }
            }
            let converted = SparseStore::from_matrix(&dense);
            assert!(converted.logical_eq(&SparseStore::from_graph(&g, l, 1)));
        }
    }

    #[test]
    fn row_iteration_is_sorted_and_finite() {
        let g = paper_graph();
        let s = SparseStore::from_graph(&g, 2, 1);
        for i in 0..7 {
            let mut prev: Option<VertexId> = None;
            s.for_each_finite_in_row(i, |j, d| {
                assert_ne!(j, i);
                assert!(d >= 1 && d <= 2, "row {i}: distance {d}");
                if let Some(p) = prev {
                    assert!(j > p, "row {i} not ascending: {p} then {j}");
                }
                prev = Some(j);
            });
        }
    }

    #[test]
    fn set_round_trips_against_a_dense_mirror() {
        let g = paper_graph();
        let mut sparse = DistStore::Sparse(SparseStore::from_graph(&g, 2, 1));
        let mut dense = DistStore::Dense(truncated_bfs_apsp(&g, 2));
        assert_eq!(sparse, dense);
        // Remove, insert, update — mirrored on both backends.
        let edits: [(VertexId, VertexId, u8); 6] =
            [(0, 1, INF), (0, 6, 2), (3, 5, 2), (0, 6, INF), (0, 1, 1), (2, 6, 2)];
        for (i, j, d) in edits {
            sparse.set(i, j, d);
            dense.set(i, j, d);
            assert_eq!(sparse.get(i, j), dense.get(i, j));
            assert_eq!(sparse, dense, "after set({i}, {j}, {d})");
        }
        assert_eq!(sparse.live_pairs(), dense.live_pairs());
    }

    #[test]
    fn tombstone_then_revive_reuses_the_arena_slot() {
        let g = paper_graph();
        let mut s = SparseStore::from_graph(&g, 2, 1);
        let live = s.live();
        s.set(0, 1, INF);
        assert_eq!(s.tombstone_entries(), 2, "both directed slots tombstoned");
        assert_eq!(s.live(), live - 2);
        assert_eq!(s.get(0, 1), INF);
        s.set(0, 1, 1);
        assert_eq!(s.tombstone_entries(), 0, "revival clears the tombstones in place");
        assert_eq!(s.overflow_entries(), 0, "revival must not route through overflow");
        assert_eq!(s.live(), live);
        assert_eq!(s.get(0, 1), 1);
    }

    #[test]
    fn inserting_an_absent_pair_lands_in_overflow() {
        let g = paper_graph();
        let mut s = SparseStore::from_graph(&g, 1, 1);
        assert_eq!(s.get(0, 6), INF);
        s.set(0, 6, 1);
        assert_eq!(s.get(0, 6), 1);
        assert_eq!(s.get(6, 0), 1);
        assert_eq!(s.overflow_entries(), 2);
        s.set(0, 6, INF);
        assert_eq!(s.get(0, 6), INF);
        assert_eq!(s.overflow_entries(), 0, "overflow removal drops the entry outright");
    }

    #[test]
    fn setting_an_absent_pair_to_inf_is_a_noop() {
        let g = paper_graph();
        let mut s = SparseStore::from_graph(&g, 1, 1);
        let (live, before) = (s.live(), s.overflow_entries());
        s.set(0, 6, INF);
        assert_eq!(s.live(), live);
        assert_eq!(s.overflow_entries(), before);
    }

    /// On a near-empty store, the *global* overflow ratio
    /// (`overflow > live/4 + SLACK`) is the first trigger: inserting k
    /// absent pairs puts 2k entries in overflow with live = 2k, so the
    /// ratio crosses at the first k with `2k > 2k/4 + 64`, i.e. k = 43.
    #[test]
    fn global_overflow_ratio_triggers_compaction() {
        let n = 100usize;
        let g = Graph::new(n); // edgeless: every pair starts absent
        let mut s = SparseStore::from_graph(&g, 2, 1);
        assert_eq!(s.live(), 0);
        let mut compacted_at = None;
        for j in 1..n as VertexId {
            s.set(0, j, 1);
            if s.compactions() > 0 && compacted_at.is_none() {
                compacted_at = Some(j);
            }
        }
        assert_eq!(
            compacted_at,
            Some((COMPACT_SLACK as u32 * 2 / 3) + 1),
            "global ratio trigger point is pinned"
        );
        // Logical content survives the rebuild(s).
        for j in 1..n as VertexId {
            assert_eq!(s.get(0, j), 1);
            assert_eq!(s.get(j, 0), 1);
        }
    }

    /// With a large live baseline the global ratio stays quiet and the
    /// per-row cap fires instead: one row absorbing insertions compacts as
    /// soon as its own overflow passes [`ROW_OVERFLOW_MAX`].
    #[test]
    fn row_overflow_triggers_compaction() {
        // A long path at L = 2 gives ~4 live entries per row — a baseline
        // of ~2400 directed entries, so the global overflow ratio would
        // need ~330 insertions while row 0 caps out at 65.
        let n = 600usize;
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
        let mut s = SparseStore::from_graph(&g, 2, 1);
        let mut compacted_at = None;
        for (k, j) in (10..n as VertexId).enumerate() {
            s.set(0, j, 2); // d(0, j) on the path is j: all absent at L = 2
            if s.compactions() > 0 && compacted_at.is_none() {
                compacted_at = Some(k + 1);
            }
        }
        assert_eq!(
            compacted_at,
            Some(ROW_OVERFLOW_MAX + 1),
            "per-row trigger point is pinned"
        );
        for j in 10..n as VertexId {
            assert_eq!(s.get(0, j), 2);
        }
    }

    /// Mass tombstoning crosses the global ratio and compacts; surviving
    /// entries keep their distances.
    #[test]
    fn tombstone_ratio_triggers_compaction() {
        // A long path at L = 2: 2n - 3 finite pairs.
        let n = 400usize;
        let g = Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap();
        let mut s = SparseStore::from_graph(&g, 2, 1);
        let reference = truncated_bfs_apsp(&g, 2);
        let finite: Vec<(u32, u32)> = {
            let mut pairs = Vec::new();
            reference.iter_pairs().for_each(|(a, b, d)| {
                if d != INF {
                    pairs.push((a, b));
                }
            });
            pairs
        };
        let mut removed = Vec::new();
        for &(a, b) in &finite {
            if s.compactions() > 0 {
                break;
            }
            s.set(a, b, INF); // arena entries: tombstones, no overflow
            removed.push((a, b));
        }
        assert!(s.compactions() > 0, "ratio trigger never fired over {} pairs", finite.len());
        assert_eq!(s.tombstone_entries(), 0);
        for &(a, b) in &removed {
            assert_eq!(s.get(a, b), INF);
        }
        // Every untouched pair still reads its original distance.
        let removed_set: std::collections::HashSet<(u32, u32)> =
            removed.into_iter().collect();
        for (a, b, d) in reference.iter_pairs() {
            if !removed_set.contains(&(a, b)) {
                assert_eq!(s.get(a, b), d, "pair ({a}, {b}) after compaction");
            }
        }
    }

    #[test]
    fn auto_decision_is_pinned() {
        // Below the vertex floor: always dense, however sparse the balls.
        assert!(!auto_prefers_sparse(100, 1.0, 2));
        assert!(!auto_prefers_sparse(AUTO_MIN_SPARSE_VERTICES - 1, 1.0, 2));
        // 10⁴ vertices, ball ≈ 40: sparse needs ~2 MB vs 25 MB packed.
        assert!(auto_prefers_sparse(10_000, 40.0, 2));
        // Within-L-dense graph: ball ~ n/2 ⇒ sparse would cost 5·n²/2
        // bytes vs n²/4 packed — dense wins.
        assert!(!auto_prefers_sparse(10_000, 5_000.0, 2));
        // Byte fallback (L > 14) doubles the dense cost; the break-even
        // ball roughly doubles with it.
        assert!(auto_prefers_sparse(10_000, 900.0, 20));
        assert!(!auto_prefers_sparse(10_000, 1_100.0, 14));
    }

    #[test]
    fn build_respects_forced_backends_and_engines() {
        let g = paper_graph();
        for engine in ApspEngine::ALL {
            let dense =
                DistStore::build(&g, 2, engine, Parallelism::Off, StoreBackend::Dense);
            let sparse =
                DistStore::build(&g, 2, engine, Parallelism::Off, StoreBackend::Sparse);
            assert!(!dense.is_sparse());
            assert!(sparse.is_sparse());
            assert_eq!(dense, sparse, "engine {}", engine.name());
        }
        // Auto on a tiny graph stays dense.
        let auto = DistStore::build(
            &g,
            2,
            ApspEngine::TruncatedBfs,
            Parallelism::Off,
            StoreBackend::Auto,
        );
        assert!(!auto.is_sparse());
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [StoreBackend::Auto, StoreBackend::Dense, StoreBackend::Sparse] {
            let parsed: StoreBackend = b.name().parse().unwrap();
            assert_eq!(parsed, b);
            assert_eq!(b.to_string(), b.name());
        }
        assert!("packed".parse::<StoreBackend>().is_err());
        assert_eq!(StoreBackend::default(), StoreBackend::Auto);
    }

    #[test]
    fn empty_and_single_vertex_stores_work() {
        for n in [0usize, 1] {
            let g = Graph::new(n);
            let s = SparseStore::from_graph(&g, 3, 4);
            assert_eq!(s.live(), 0);
            assert_eq!(s.num_vertices(), n);
            let store = DistStore::Sparse(s);
            assert_eq!(store.live_pairs(), 0);
            assert_eq!(store.mean_row(), 1);
        }
    }

    #[test]
    fn to_dense_round_trips() {
        let g = paper_graph();
        let dense = truncated_bfs_apsp(&g, 2);
        let sparse = DistStore::Sparse(SparseStore::from_graph(&g, 2, 1));
        assert_eq!(sparse.to_dense(2), dense);
        assert!(sparse.to_dense(2).is_packed());
        assert!(!sparse.to_dense(20).is_packed());
    }
}
