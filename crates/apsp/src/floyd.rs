//! Classic Floyd–Warshall on the triangular matrix (reference engine).
//!
//! Computes *exact* geodesic distances (no truncation), which Algorithm 1's
//! illustration (Figure 4a) and the geodesic-distribution utility metric
//! need. The truncated engines are validated against a clamped version of
//! this output.

use crate::dist::DistanceMatrix;
use lopacity_graph::{Graph, VertexId};

/// "Unreachable" marker in a [`FullDistanceMatrix`].
pub const INF_FULL: u16 = u16::MAX;

/// Untruncated symmetric distance matrix (`u16` entries; diameters beyond
/// 65534 do not occur in graphs this workspace targets).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FullDistanceMatrix {
    n: usize,
    data: Vec<u16>,
}

impl FullDistanceMatrix {
    /// All-[`INF_FULL`] matrix for `n` vertices.
    pub fn new(n: usize) -> Self {
        FullDistanceMatrix { n, data: vec![INF_FULL; n * n.saturating_sub(1) / 2] }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn index(&self, i: VertexId, j: VertexId) -> usize {
        let (i, j) = if i < j { (i as usize, j as usize) } else { (j as usize, i as usize) };
        debug_assert!(i != j && j < self.n);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Exact distance between a pair (0 on the diagonal).
    #[inline]
    pub fn get(&self, i: VertexId, j: VertexId) -> u16 {
        if i == j {
            0
        } else {
            self.data[self.index(i, j)]
        }
    }

    /// Sets the distance for a pair.
    #[inline]
    pub fn set(&mut self, i: VertexId, j: VertexId, d: u16) {
        let idx = self.index(i, j);
        self.data[idx] = d;
    }

    /// Iterates `(i, j, d)` over all pairs, `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (VertexId, VertexId, u16)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i as VertexId, j as VertexId)))
            .zip(self.data.iter().copied())
            .map(|((i, j), d)| (i, j, d))
    }

    /// Truncates to a [`DistanceMatrix`]: entries `> l` become
    /// [`crate::INF`] (storage layout chosen by `l`).
    pub fn truncate(&self, l: u8) -> DistanceMatrix {
        let mut out = DistanceMatrix::new(self.n, l);
        for (i, j, d) in self.iter_pairs() {
            if d <= l as u16 {
                out.set(i, j, d as u8);
            }
        }
        out
    }
}

/// Classic Floyd–Warshall over the triangular adjacency matrix, exactly as
/// invoked at the start of Section 5.1 (each edge has weight 1).
pub fn floyd_warshall(graph: &Graph) -> FullDistanceMatrix {
    let n = graph.num_vertices();
    let mut m = FullDistanceMatrix::new(n);
    for e in graph.edges() {
        m.set(e.u(), e.v(), 1);
    }
    for k in 0..n as VertexId {
        for i in 0..n as VertexId {
            if i == k {
                continue;
            }
            let dik = m.get(i, k);
            if dik == INF_FULL {
                continue;
            }
            for j in (i + 1)..n as VertexId {
                if j == k {
                    continue;
                }
                let dkj = m.get(k, j);
                if dkj == INF_FULL {
                    continue;
                }
                let through = dik + dkj;
                if through < m.get(i, j) {
                    m.set(i, j, through);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::INF;
    use lopacity_graph::Graph;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn reproduces_figure_4a_distance_matrix() {
        // Figure 4a of the paper (1-indexed there; 0-indexed here).
        let m = floyd_warshall(&paper_graph());
        let expected: [[u16; 7]; 7] = [
            [0, 1, 1, 2, 2, 2, 3],
            [1, 0, 1, 1, 1, 2, 3],
            [1, 1, 0, 2, 1, 1, 2],
            [2, 1, 2, 0, 1, 2, 3],
            [2, 1, 1, 1, 0, 1, 2],
            [2, 2, 1, 2, 1, 0, 1],
            [3, 3, 2, 3, 2, 1, 0],
        ];
        for i in 0..7u32 {
            for j in 0..7u32 {
                assert_eq!(m.get(i, j), expected[i as usize][j as usize], "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_inf() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        let m = floyd_warshall(&g);
        assert_eq!(m.get(0, 2), INF_FULL);
        assert_eq!(m.get(1, 3), INF_FULL);
        assert_eq!(m.get(0, 1), 1);
    }

    #[test]
    fn truncate_clamps_long_distances() {
        let m = floyd_warshall(&paper_graph());
        let t = m.truncate(1);
        assert_eq!(t.get(0, 1), 1);
        assert_eq!(t.get(0, 3), INF);
        assert_eq!(t.count_within(1), paper_graph().num_edges());
    }

    #[test]
    fn empty_graph_is_all_inf() {
        let m = floyd_warshall(&Graph::new(3));
        for (_, _, d) in m.iter_pairs() {
            assert_eq!(d, INF_FULL);
        }
    }
}
