//! Triangular truncated distance matrix.

use lopacity_graph::VertexId;

/// "Distance greater than L / unreachable" marker in a [`DistanceMatrix`].
pub const INF: u8 = u8::MAX;

/// A symmetric matrix of truncated geodesic distances, stored as the strict
/// upper triangle in row-major order (`(i, j)` with `i < j`).
///
/// Entry semantics: `d <= L` is stored exactly; anything longer (including
/// unreachable) is [`INF`]. This is the "distance matrix for path lengths
/// <= L" of the paper's Algorithms 2 and 3, packed into one byte per pair —
/// 50 MB for a 10,000-vertex graph, which is what makes the paper's largest
/// (ACM) experiment feasible in memory.
#[derive(Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u8>,
}

impl DistanceMatrix {
    /// A matrix for `n` vertices with every pair initialized to [`INF`].
    pub fn new(n: usize) -> Self {
        DistanceMatrix { n, data: vec![INF; n * n.saturating_sub(1) / 2] }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored (unordered) pairs: `n (n - 1) / 2`.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.data.len()
    }

    /// Flat index of the pair `(i, j)`; order-insensitive.
    ///
    /// # Panics
    /// Panics when `i == j` or either id is out of range.
    #[inline]
    pub fn index(&self, i: VertexId, j: VertexId) -> usize {
        let (i, j) = if i < j { (i as usize, j as usize) } else { (j as usize, i as usize) };
        debug_assert!(i != j, "no diagonal entries: ({i}, {j})");
        debug_assert!(j < self.n, "pair ({i}, {j}) out of range (n={})", self.n);
        // Row i occupies (n-1) + (n-2) + ... + (n-i) = i*(2n-i-1)/2 cells.
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Truncated distance between `i` and `j` (0 when `i == j`).
    #[inline]
    pub fn get(&self, i: VertexId, j: VertexId) -> u8 {
        if i == j {
            return 0;
        }
        self.data[self.index(i, j)]
    }

    /// Sets the truncated distance for a pair.
    #[inline]
    pub fn set(&mut self, i: VertexId, j: VertexId, d: u8) {
        let idx = self.index(i, j);
        self.data[idx] = d;
    }

    /// Raw triangle access by flat index.
    #[inline]
    pub fn get_flat(&self, idx: usize) -> u8 {
        self.data[idx]
    }

    /// Raw triangle mutation by flat index.
    #[inline]
    pub fn set_flat(&mut self, idx: usize, d: u8) {
        self.data[idx] = d;
    }

    /// Iterates `(i, j, d)` over all stored pairs in row-major order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (VertexId, VertexId, u8)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i as VertexId, j as VertexId)))
            .zip(self.data.iter().copied())
            .map(|((i, j), d)| (i, j, d))
    }

    /// Recovers the pair `(i, j)` (with `i < j`) for a flat index.
    pub fn pair_of(&self, mut idx: usize) -> (VertexId, VertexId) {
        debug_assert!(idx < self.data.len());
        let mut i = 0usize;
        let mut row_len = self.n - 1;
        while idx >= row_len {
            idx -= row_len;
            i += 1;
            row_len -= 1;
        }
        (i as VertexId, (i + 1 + idx) as VertexId)
    }

    /// Counts pairs with distance `<= l` (i.e., finite truncated entries no
    /// larger than `l`).
    pub fn count_within(&self, l: u8) -> usize {
        self.data.iter().filter(|&&d| d <= l).count()
    }
}

impl std::fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DistanceMatrix(n={})", self.n)?;
        for i in 0..self.n as VertexId {
            for j in (i + 1)..self.n as VertexId {
                let d = self.get(i, j);
                if d == INF {
                    write!(f, "  ∞")?;
                } else {
                    write!(f, " {d:2}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_bijective_for_small_n() {
        for n in 0..12usize {
            let m = DistanceMatrix::new(n);
            let mut seen = vec![false; m.num_pairs()];
            for i in 0..n as VertexId {
                for j in (i + 1)..n as VertexId {
                    let idx = m.index(i, j);
                    assert!(!seen[idx], "index collision at ({i}, {j})");
                    seen[idx] = true;
                    assert_eq!(m.pair_of(idx), (i, j));
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn get_set_is_order_insensitive() {
        let mut m = DistanceMatrix::new(5);
        m.set(3, 1, 2);
        assert_eq!(m.get(1, 3), 2);
        assert_eq!(m.get(3, 1), 2);
        assert_eq!(m.get(2, 2), 0);
        assert_eq!(m.get(0, 4), INF);
    }

    #[test]
    fn count_within_ignores_inf() {
        let mut m = DistanceMatrix::new(4);
        m.set(0, 1, 1);
        m.set(0, 2, 2);
        m.set(1, 2, 3);
        assert_eq!(m.count_within(1), 1);
        assert_eq!(m.count_within(2), 2);
        assert_eq!(m.count_within(3), 3);
        assert_eq!(m.count_within(254), 3);
    }

    #[test]
    fn iter_pairs_matches_get() {
        let mut m = DistanceMatrix::new(4);
        m.set(1, 2, 7);
        let collected: Vec<_> = m.iter_pairs().collect();
        assert_eq!(collected.len(), 6);
        assert!(collected.contains(&(1, 2, 7)));
        assert!(collected.contains(&(0, 3, INF)));
        for (i, j, d) in collected {
            assert_eq!(m.get(i, j), d);
        }
    }

    #[test]
    fn zero_and_one_vertex_matrices_are_empty() {
        assert_eq!(DistanceMatrix::new(0).num_pairs(), 0);
        assert_eq!(DistanceMatrix::new(1).num_pairs(), 0);
    }
}
