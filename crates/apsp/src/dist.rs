//! Triangular truncated distance matrix, nibble-packed when L allows.

use lopacity_graph::VertexId;

/// "Distance greater than L / unreachable" marker in a [`DistanceMatrix`].
pub const INF: u8 = u8::MAX;

/// Largest `L` the nibble-packed representation can store exactly.
///
/// A nibble holds 0..=15; 15 is reserved as the packed [`INF`], leaving
/// exact distances 0..=14. Every `L` the paper (and small-world reality)
/// cares about is far below this — the byte fallback exists for API
/// completeness, not practice.
pub const NIBBLE_MAX_L: u8 = 14;

/// Packed encoding of [`INF`] (all nibble bits set).
const NIBBLE_INF: u8 = 0xF;

/// A symmetric matrix of truncated geodesic distances, stored as the strict
/// upper triangle in row-major order (`(i, j)` with `i < j`).
///
/// Entry semantics: `d <= L` is stored exactly; anything longer (including
/// unreachable) is [`INF`]. This is the "distance matrix for path lengths
/// <= L" of the paper's Algorithms 2 and 3. Because exact entries never
/// exceed `L` — in practice a single digit — `L <= NIBBLE_MAX_L` packs
/// **two pairs per byte** (25 MB for a 10,000-vertex graph instead of the
/// 50 MB one-byte-per-pair layout), which halves both the resident
/// footprint of the paper's largest (ACM) experiment and the memcpy
/// traffic of every evaluator fork. `L > NIBBLE_MAX_L` falls back to one
/// byte per pair; the choice is made once at construction and is invisible
/// through the accessor API.
///
/// Equality ([`PartialEq`]) compares *logical* distances, so a packed and
/// a byte matrix holding the same truncated distances are equal.
#[derive(Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Number of logical pairs, `n (n - 1) / 2`.
    pairs: usize,
    /// Two pairs per storage byte when set (low nibble = even flat index).
    packed: bool,
    data: Vec<u8>,
}

impl DistanceMatrix {
    /// A matrix for `n` vertices with every pair initialized to [`INF`],
    /// using the densest storage that can represent distances up to `l`
    /// (nibble-packed for `l <= NIBBLE_MAX_L`, one byte per pair beyond).
    pub fn new(n: usize, l: u8) -> Self {
        if l <= NIBBLE_MAX_L {
            Self::new_packed(n)
        } else {
            Self::new_byte(n)
        }
    }

    /// A nibble-packed all-[`INF`] matrix (distances up to
    /// [`NIBBLE_MAX_L`]).
    pub fn new_packed(n: usize) -> Self {
        let pairs = n * n.saturating_sub(1) / 2;
        DistanceMatrix { n, pairs, packed: true, data: vec![0xFF; pairs.div_ceil(2)] }
    }

    /// A byte-per-pair all-[`INF`] matrix (distances up to 254).
    pub fn new_byte(n: usize) -> Self {
        let pairs = n * n.saturating_sub(1) / 2;
        DistanceMatrix { n, pairs, packed: false, data: vec![INF; pairs] }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored (unordered) pairs: `n (n - 1) / 2`.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.pairs
    }

    /// Whether two pairs share each storage byte.
    #[inline]
    pub fn is_packed(&self) -> bool {
        self.packed
    }

    /// Bytes of backing storage (the matrix's memory footprint modulo the
    /// three header words).
    #[inline]
    pub fn storage_bytes(&self) -> usize {
        self.data.len()
    }

    /// Flat index of the pair `(i, j)`; order-insensitive.
    ///
    /// # Panics
    /// Panics when `i == j` or either id is out of range.
    #[inline]
    pub fn index(&self, i: VertexId, j: VertexId) -> usize {
        let (i, j) = if i < j { (i as usize, j as usize) } else { (j as usize, i as usize) };
        debug_assert!(i != j, "no diagonal entries: ({i}, {j})");
        debug_assert!(j < self.n, "pair ({i}, {j}) out of range (n={})", self.n);
        // Row i occupies (n-1) + (n-2) + ... + (n-i) = i*(2n-i-1)/2 cells.
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// Truncated distance between `i` and `j` (0 when `i == j`).
    #[inline]
    pub fn get(&self, i: VertexId, j: VertexId) -> u8 {
        if i == j {
            return 0;
        }
        self.get_flat(self.index(i, j))
    }

    /// Sets the truncated distance for a pair.
    #[inline]
    pub fn set(&mut self, i: VertexId, j: VertexId, d: u8) {
        let idx = self.index(i, j);
        self.set_flat(idx, d);
    }

    /// Raw triangle access by flat *pair* index (packing-independent).
    #[inline]
    pub fn get_flat(&self, idx: usize) -> u8 {
        if self.packed {
            debug_assert!(idx < self.pairs);
            let nib = (self.data[idx >> 1] >> ((idx & 1) << 2)) & 0xF;
            if nib == NIBBLE_INF {
                INF
            } else {
                nib
            }
        } else {
            self.data[idx]
        }
    }

    /// Raw triangle mutation by flat *pair* index (packing-independent).
    ///
    /// # Panics
    /// A packed matrix accepts exact distances up to [`NIBBLE_MAX_L`] plus
    /// [`INF`]; anything else panics (a hard assert even in release — the
    /// engines never store past `L` by construction, but this is a public
    /// API and silent nibble truncation would corrupt distances, e.g. 31
    /// would read back as [`INF`] and 20 as 4).
    #[inline]
    pub fn set_flat(&mut self, idx: usize, d: u8) {
        if self.packed {
            debug_assert!(idx < self.pairs);
            assert!(
                d == INF || d <= NIBBLE_MAX_L,
                "distance {d} does not fit the nibble packing"
            );
            let nib = if d == INF { NIBBLE_INF } else { d };
            let shift = (idx & 1) << 2;
            let slot = &mut self.data[idx >> 1];
            *slot = (*slot & !(0xF << shift)) | (nib << shift);
        } else {
            self.data[idx] = d;
        }
    }

    /// Iterates `(i, j, d)` over all stored pairs in row-major order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (VertexId, VertexId, u8)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i as VertexId, j as VertexId)))
            .enumerate()
            .map(|(idx, (i, j))| (i, j, self.get_flat(idx)))
    }

    /// Recovers the pair `(i, j)` (with `i < j`) for a flat index.
    pub fn pair_of(&self, mut idx: usize) -> (VertexId, VertexId) {
        debug_assert!(idx < self.pairs);
        let mut i = 0usize;
        let mut row_len = self.n - 1;
        while idx >= row_len {
            idx -= row_len;
            i += 1;
            row_len -= 1;
        }
        (i as VertexId, (i + 1 + idx) as VertexId)
    }

    /// Counts pairs with distance `<= l` (i.e., finite truncated entries no
    /// larger than `l`).
    pub fn count_within(&self, l: u8) -> usize {
        (0..self.pairs).filter(|&idx| self.get_flat(idx) <= l).count()
    }
}

impl PartialEq for DistanceMatrix {
    /// Logical equality: same vertex count and same truncated distance for
    /// every pair, regardless of packing.
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n {
            return false;
        }
        if self.packed == other.packed {
            return self.data == other.data;
        }
        (0..self.pairs).all(|idx| self.get_flat(idx) == other.get_flat(idx))
    }
}

impl Eq for DistanceMatrix {}

impl std::fmt::Debug for DistanceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "DistanceMatrix(n={}, {})",
            self.n,
            if self.packed { "packed" } else { "byte" }
        )?;
        for i in 0..self.n as VertexId {
            for j in (i + 1)..self.n as VertexId {
                let d = self.get(i, j);
                if d == INF {
                    write!(f, "  ∞")?;
                } else {
                    write!(f, " {d:2}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both storage layouts, for layout-parametric tests.
    fn both(n: usize) -> [DistanceMatrix; 2] {
        [DistanceMatrix::new_packed(n), DistanceMatrix::new_byte(n)]
    }

    #[test]
    fn l_selects_the_storage() {
        assert!(DistanceMatrix::new(10, 1).is_packed());
        assert!(DistanceMatrix::new(10, NIBBLE_MAX_L).is_packed());
        assert!(!DistanceMatrix::new(10, NIBBLE_MAX_L + 1).is_packed());
        assert!(!DistanceMatrix::new(10, 254).is_packed());
    }

    #[test]
    fn packed_storage_is_half_the_bytes() {
        let packed = DistanceMatrix::new_packed(100);
        let byte = DistanceMatrix::new_byte(100);
        assert_eq!(byte.storage_bytes(), 100 * 99 / 2);
        assert_eq!(packed.storage_bytes(), (100 * 99 / 2usize).div_ceil(2));
        assert!(packed.storage_bytes() * 2 <= byte.storage_bytes() + 1);
    }

    #[test]
    fn index_is_bijective_for_small_n() {
        for n in 0..12usize {
            for m in both(n) {
                let mut seen = vec![false; m.num_pairs()];
                for i in 0..n as VertexId {
                    for j in (i + 1)..n as VertexId {
                        let idx = m.index(i, j);
                        assert!(!seen[idx], "index collision at ({i}, {j})");
                        seen[idx] = true;
                        assert_eq!(m.pair_of(idx), (i, j));
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn get_set_is_order_insensitive() {
        for mut m in both(5) {
            m.set(3, 1, 2);
            assert_eq!(m.get(1, 3), 2);
            assert_eq!(m.get(3, 1), 2);
            assert_eq!(m.get(2, 2), 0);
            assert_eq!(m.get(0, 4), INF);
        }
    }

    #[test]
    fn packed_neighbors_do_not_bleed() {
        // Writing one pair must never disturb the pair sharing its byte.
        let mut m = DistanceMatrix::new_packed(8);
        for idx in 0..m.num_pairs() {
            m.set_flat(idx, (idx % 15) as u8);
        }
        for idx in 0..m.num_pairs() {
            assert_eq!(m.get_flat(idx), (idx % 15) as u8, "flat index {idx}");
        }
        // Overwrite every even index; odd indices must keep their value.
        for idx in (0..m.num_pairs()).step_by(2) {
            m.set_flat(idx, INF);
        }
        for idx in 0..m.num_pairs() {
            if idx % 2 == 0 {
                assert_eq!(m.get_flat(idx), INF);
            } else {
                assert_eq!(m.get_flat(idx), (idx % 15) as u8);
            }
        }
    }

    #[test]
    fn packed_round_trips_every_legal_value() {
        let mut m = DistanceMatrix::new_packed(3);
        for d in (0..=NIBBLE_MAX_L).chain([INF]) {
            m.set(0, 1, d);
            assert_eq!(m.get(0, 1), d, "value {d}");
        }
    }

    #[test]
    fn cross_layout_equality_is_logical() {
        let mut packed = DistanceMatrix::new_packed(6);
        let mut byte = DistanceMatrix::new_byte(6);
        assert_eq!(packed, byte, "all-INF matrices are equal across layouts");
        packed.set(0, 3, 2);
        assert_ne!(packed, byte);
        byte.set(0, 3, 2);
        assert_eq!(packed, byte);
        assert_eq!(byte, packed, "equality is symmetric");
        assert_ne!(packed, DistanceMatrix::new_packed(7), "different n never equal");
    }

    #[test]
    fn count_within_ignores_inf() {
        for mut m in both(4) {
            m.set(0, 1, 1);
            m.set(0, 2, 2);
            m.set(1, 2, 3);
            assert_eq!(m.count_within(1), 1);
            assert_eq!(m.count_within(2), 2);
            assert_eq!(m.count_within(3), 3);
            assert_eq!(m.count_within(254), 3);
        }
    }

    #[test]
    fn iter_pairs_matches_get() {
        for mut m in both(4) {
            m.set(1, 2, 7);
            let collected: Vec<_> = m.iter_pairs().collect();
            assert_eq!(collected.len(), 6);
            assert!(collected.contains(&(1, 2, 7)));
            assert!(collected.contains(&(0, 3, INF)));
            for (i, j, d) in collected {
                assert_eq!(m.get(i, j), d);
            }
        }
    }

    #[test]
    fn zero_and_one_vertex_matrices_are_empty() {
        for l in [1u8, 200] {
            assert_eq!(DistanceMatrix::new(0, l).num_pairs(), 0);
            assert_eq!(DistanceMatrix::new(1, l).num_pairs(), 0);
            assert_eq!(DistanceMatrix::new(0, l).storage_bytes(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit the nibble packing")]
    fn packed_rejects_unrepresentable_distances() {
        // 31 has low nibble 0xF: silent truncation would read back as INF.
        DistanceMatrix::new_packed(4).set(0, 1, 31);
    }

    #[test]
    fn odd_pair_count_tail_nibble_works() {
        // n = 3 has 3 pairs: the last byte is half-used.
        let mut m = DistanceMatrix::new_packed(3);
        assert_eq!(m.storage_bytes(), 2);
        m.set_flat(2, 9);
        assert_eq!(m.get_flat(2), 9);
        assert_eq!(m.get_flat(0), INF);
        assert_eq!(m.get_flat(1), INF);
        assert_eq!(m.count_within(254), 1);
    }
}
