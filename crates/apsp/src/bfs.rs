//! Depth-truncated breadth-first search.
//!
//! On the sparse graphs of the paper's evaluation, running one BFS per
//! source limited to depth `L` costs `O(V (V + E))` in the worst case and far
//! less in practice (the frontier dies at depth `L`). This is the default
//! engine behind opacity evaluation and — via per-source reruns — the
//! incremental evaluator in the `lopacity` crate.

use crate::dist::{DistanceMatrix, INF};
use crate::MAX_L;
use lopacity_graph::{Graph, VertexId};
use lopacity_util::pool;

/// Reusable scratch for depth-truncated single-source BFS.
///
/// The incremental opacity evaluator re-runs thousands of tiny BFS sweeps
/// per greedy step; this struct keeps all buffers allocated across runs and
/// resets only the vertices the previous sweep touched. `Clone` duplicates
/// the scratch (buffers included) so evaluators can fork into worker
/// threads for sharded candidate scans.
#[derive(Clone)]
pub struct TruncatedBfs {
    dist: Vec<u8>,
    touched: Vec<VertexId>,
    queue: Vec<VertexId>,
}

impl TruncatedBfs {
    /// Scratch sized for graphs of `n` vertices.
    pub fn new(n: usize) -> Self {
        TruncatedBfs { dist: vec![INF; n], touched: Vec::new(), queue: Vec::new() }
    }

    /// Runs a BFS from `source` limited to depth `max_depth`, leaving the
    /// result readable through [`TruncatedBfs::dist`] until the next run.
    ///
    /// # Panics
    /// Panics when the scratch size does not match the graph, or
    /// `max_depth > MAX_L`.
    pub fn run(&mut self, graph: &Graph, source: VertexId, max_depth: u8) {
        assert!(max_depth <= MAX_L, "max_depth {max_depth} exceeds MAX_L");
        assert_eq!(self.dist.len(), graph.num_vertices(), "scratch sized for a different graph");
        // Reset only what the previous run touched.
        for &v in &self.touched {
            self.dist[v as usize] = INF;
        }
        self.touched.clear();
        self.queue.clear();

        self.dist[source as usize] = 0;
        self.touched.push(source);
        self.queue.push(source);
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            if du == max_depth {
                // Vertices at the depth limit have already been recorded;
                // their neighbours would exceed it.
                continue;
            }
            for &w in graph.neighbors(u) {
                if self.dist[w as usize] == INF {
                    self.dist[w as usize] = du + 1;
                    self.touched.push(w);
                    self.queue.push(w);
                }
            }
        }
    }

    /// Truncated distance of `v` from the last run's source.
    #[inline]
    pub fn dist(&self, v: VertexId) -> u8 {
        self.dist[v as usize]
    }

    /// Vertices reached by the last run (including the source), in
    /// non-decreasing distance order.
    #[inline]
    pub fn reached(&self) -> &[VertexId] {
        &self.touched
    }
}

/// Mean within-`l` ball size (vertices at distance `1..=l`, source
/// excluded) over up to `samples` evenly-strided sources — the density
/// probe behind the adaptive store-backend choice. Deterministic: sources
/// are `0, s, 2s, …` for stride `s = n / samples`, never random. Returns
/// 0.0 for an empty graph.
pub fn sampled_mean_ball(graph: &Graph, l: u8, samples: usize) -> f64 {
    let n = graph.num_vertices();
    if n == 0 || samples == 0 {
        return 0.0;
    }
    let count = samples.min(n);
    let stride = n / count;
    let mut bfs = TruncatedBfs::new(n);
    let mut total = 0usize;
    for k in 0..count {
        let src = (k * stride) as VertexId;
        bfs.run(graph, src, l);
        total += bfs.reached().len() - 1;
    }
    total as f64 / count as f64
}

/// Full truncated APSP: one bounded BFS per source.
pub fn truncated_bfs_apsp(graph: &Graph, l: u8) -> DistanceMatrix {
    truncated_bfs_apsp_sharded(graph, l, 1)
}

/// Like [`truncated_bfs_apsp`], sharding the sources across up to
/// `workers` scoped threads — each source's BFS is independent, so the
/// build is embarrassingly parallel. Source `src` owns exactly triangle
/// row `src` (the pairs `(src, v)` with `v > src`), and sources shard
/// contiguously, so each worker's output is one contiguous flat-index
/// range of the triangle: the worker fills a private one-byte-per-pair
/// row buffer (transient memory: `num_pairs` bytes total across all
/// workers) that the caller then stitches into the matrix. Every pair is
/// written by exactly one worker, so the result is identical to the
/// sequential build for every worker count.
///
/// `workers <= 1` (or a graph too small to shard) runs the classic
/// sequential loop with zero overhead.
pub fn truncated_bfs_apsp_sharded(graph: &Graph, l: u8, workers: usize) -> DistanceMatrix {
    let n = graph.num_vertices();
    let mut out = DistanceMatrix::new(n, l);
    if workers <= 1 || n < 2 {
        let mut bfs = TruncatedBfs::new(n);
        for src in 0..n as VertexId {
            bfs.run(graph, src, l);
            for &v in bfs.reached() {
                // Record each pair once, from its smaller endpoint.
                if v > src {
                    out.set(src, v, bfs.dist(v));
                }
            }
        }
        return out;
    }
    // Flat index of the first cell of triangle row `src` (see
    // `DistanceMatrix::index`): rows 0..src occupy (n-1) + … + (n-src).
    let row_start = |src: usize| src * (2 * n - src - 1) / 2;
    let sources: Vec<VertexId> = (0..n as VertexId).collect();
    let shards = pool::run_sharded(&sources, workers, |offset, shard| {
        let start = row_start(offset);
        let end = row_start(offset + shard.len());
        let mut rows = vec![INF; end - start];
        let mut bfs = TruncatedBfs::new(n);
        for &src in shard {
            bfs.run(graph, src, l);
            let row = row_start(src as usize) - start;
            for &v in bfs.reached() {
                if v > src {
                    rows[row + (v - src - 1) as usize] = bfs.dist(v);
                }
            }
        }
        (start, rows)
    });
    for (start, rows) in shards {
        for (k, d) in rows.into_iter().enumerate() {
            if d != INF {
                out.set_flat(start + k, d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity_graph::Graph;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn truncation_hides_longer_distances() {
        let g = path(6);
        let m = truncated_bfs_apsp(&g, 2);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(0, 2), 2);
        assert_eq!(m.get(0, 3), INF);
        assert_eq!(m.get(2, 4), 2);
    }

    #[test]
    fn depth_zero_reaches_nothing() {
        let g = path(4);
        let m = truncated_bfs_apsp(&g, 0);
        assert_eq!(m.count_within(254), 0);
    }

    #[test]
    fn scratch_reuse_resets_previous_run() {
        let g = Graph::from_edges(5, [(0u32, 1u32), (1, 2), (3, 4)]).unwrap();
        let mut bfs = TruncatedBfs::new(5);
        bfs.run(&g, 0, 4);
        assert_eq!(bfs.dist(2), 2);
        assert_eq!(bfs.dist(3), INF);
        bfs.run(&g, 3, 4);
        assert_eq!(bfs.dist(4), 1);
        assert_eq!(bfs.dist(0), INF, "stale distance from previous run");
        assert_eq!(bfs.dist(2), INF, "stale distance from previous run");
    }

    #[test]
    fn reached_is_sorted_by_distance() {
        let g = path(5);
        let mut bfs = TruncatedBfs::new(5);
        bfs.run(&g, 2, 3);
        let dists: Vec<u8> = bfs.reached().iter().map(|&v| bfs.dist(v)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(bfs.reached().len(), 5);
    }

    #[test]
    fn disconnected_pairs_stay_inf() {
        let g = Graph::from_edges(4, [(0u32, 1u32), (2, 3)]).unwrap();
        let m = truncated_bfs_apsp(&g, 3);
        assert_eq!(m.get(0, 2), INF);
        assert_eq!(m.get(1, 3), INF);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.get(2, 3), 1);
    }
}
