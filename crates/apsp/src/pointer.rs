//! Algorithm 3: the pointer-based L-pruned Floyd–Warshall.
//!
//! Algorithm 2 still scans entire rows/columns of the triangular matrix and
//! re-checks `< L` predicates on every pass. The paper's refinement threads
//! linked lists through the cells whose value is `< L` — one list per row
//! and one per column — so iteration `k` touches only the sub-threshold
//! cells of line `k` (column `k` up to the diagonal, then row `k`). When a
//! relaxation drives a cell's value below `L` for the first time, the cell
//! is spliced into its row and column lists ("update connections of cell
//! new" in the pseudo-code).

use crate::dist::{DistanceMatrix, INF};
use crate::MAX_L;
use lopacity_graph::Graph;

const NONE: u32 = u32::MAX;

/// Truncated APSP via the pointer-based L-pruned Floyd–Warshall
/// (paper Algorithm 3). Output is identical to
/// [`crate::l_pruned_floyd_warshall`]; only the traversal strategy differs.
///
/// # Panics
/// Panics when `l > MAX_L`.
pub fn pointer_floyd_warshall(graph: &Graph, l: u8) -> DistanceMatrix {
    assert!(l <= MAX_L, "l {l} exceeds MAX_L");
    let n = graph.num_vertices();
    let mut dist = DistanceMatrix::new(n, l);
    if l == 0 || n < 2 {
        return dist;
    }
    for e in graph.edges() {
        dist.set(e.u(), e.v(), 1);
    }

    let mut lists = CellLists::new(n);
    // Pre-processing: link every sub-threshold cell (initially the edges,
    // when 1 < L) along its row and column. Cells are visited in row-major
    // order, so appending keeps both lists sorted.
    if 1 < l {
        let mut row_tail = vec![NONE; n];
        let mut col_tail = vec![NONE; n];
        for e in graph.edges() {
            let idx = dist.index(e.u(), e.v()) as u32;
            lists.append_sorted(idx, e.u(), e.v(), &mut row_tail, &mut col_tail);
        }
    }

    for k in 0..n as u32 {
        let mut out = lists.first_of_line(k);
        while out != NONE {
            let d_out = dist.get_flat(out as usize);
            let a = lists.other_endpoint(out, k);
            let mut inn = lists.advance(out, k);
            while inn != NONE {
                let d_in = dist.get_flat(inn as usize);
                let sum = d_out + d_in;
                if sum <= l {
                    let b = lists.other_endpoint(inn, k);
                    debug_assert!(a != b && a != k && b != k);
                    let t = dist.index(a, b);
                    let current = dist.get_flat(t);
                    if sum < current {
                        if sum < l && current >= l {
                            lists.insert(t as u32, a.min(b), a.max(b));
                        }
                        dist.set_flat(t, sum);
                    }
                }
                inn = lists.advance(inn, k);
            }
            out = lists.advance(out, k);
        }
    }
    debug_assert!(dist.iter_pairs().all(|(_, _, d)| d == INF || d <= l));
    dist
}

/// Row/column linked lists over the triangular cell array.
struct CellLists {
    n: usize,
    /// Row index per cell (the column is recovered arithmetically).
    row_of: Vec<u32>,
    /// Start offset of each row in the flat triangle.
    row_start: Vec<usize>,
    /// Next sub-threshold cell in the same row (larger column), or NONE.
    next_row: Vec<u32>,
    /// Next sub-threshold cell in the same column (larger row), or NONE.
    next_col: Vec<u32>,
    row_head: Vec<u32>,
    col_head: Vec<u32>,
}

impl CellLists {
    fn new(n: usize) -> Self {
        let cells = n * (n - 1) / 2;
        let mut row_of = vec![0u32; cells];
        let mut row_start = vec![0usize; n];
        let mut offset = 0usize;
        for (i, start) in row_start.iter_mut().enumerate() {
            *start = offset;
            let row_len = n - 1 - i;
            row_of[offset..offset + row_len].fill(i as u32);
            offset += row_len;
        }
        CellLists {
            n,
            row_of,
            row_start,
            next_row: vec![NONE; cells],
            next_col: vec![NONE; cells],
            row_head: vec![NONE; n],
            col_head: vec![NONE; n],
        }
    }

    #[inline]
    fn cell_col(&self, idx: u32) -> u32 {
        let i = self.row_of[idx as usize] as usize;
        (idx as usize - self.row_start[i] + i + 1) as u32
    }

    /// For a cell on line `k`, the endpoint that is not `k`.
    #[inline]
    fn other_endpoint(&self, idx: u32, k: u32) -> u32 {
        let i = self.row_of[idx as usize];
        if i == k {
            self.cell_col(idx)
        } else {
            debug_assert_eq!(self.cell_col(idx), k);
            i
        }
    }

    /// First sub-threshold cell of line `k`: the column-`k` list (cells
    /// `(i, k)`, `i < k`), falling through to the row-`k` list.
    fn first_of_line(&self, k: u32) -> u32 {
        if self.col_head[k as usize] != NONE {
            self.col_head[k as usize]
        } else {
            self.row_head[k as usize]
        }
    }

    /// Next cell after `idx` along line `k`, switching from the column part
    /// to the row part at the diagonal (paper Algorithm 3, lines 17-24).
    fn advance(&self, idx: u32, k: u32) -> u32 {
        if self.row_of[idx as usize] == k {
            self.next_row[idx as usize]
        } else {
            let nxt = self.next_col[idx as usize];
            if nxt != NONE {
                nxt
            } else {
                self.row_head[k as usize]
            }
        }
    }

    /// Appends a cell during pre-processing (input arrives in row-major
    /// order, so plain tail appends keep lists sorted).
    fn append_sorted(&mut self, idx: u32, i: u32, j: u32, row_tail: &mut [u32], col_tail: &mut [u32]) {
        debug_assert!(i < j);
        if row_tail[i as usize] == NONE {
            self.row_head[i as usize] = idx;
        } else {
            self.next_row[row_tail[i as usize] as usize] = idx;
        }
        row_tail[i as usize] = idx;
        if col_tail[j as usize] == NONE {
            self.col_head[j as usize] = idx;
        } else {
            self.next_col[col_tail[j as usize] as usize] = idx;
        }
        col_tail[j as usize] = idx;
    }

    /// Splices a newly sub-threshold cell into its row and column lists,
    /// keeping them sorted (sequential scan, as the paper describes).
    fn insert(&mut self, idx: u32, i: u32, j: u32) {
        debug_assert!(i < j);
        // Row i, sorted by column.
        let head = self.row_head[i as usize];
        if head == NONE || self.cell_col(head) > j {
            self.next_row[idx as usize] = head;
            self.row_head[i as usize] = idx;
        } else {
            debug_assert_ne!(self.cell_col(head), j, "cell already linked");
            let mut cur = head;
            while self.next_row[cur as usize] != NONE
                && self.cell_col(self.next_row[cur as usize]) < j
            {
                cur = self.next_row[cur as usize];
            }
            self.next_row[idx as usize] = self.next_row[cur as usize];
            self.next_row[cur as usize] = idx;
        }
        // Column j, sorted by row.
        let head = self.col_head[j as usize];
        if head == NONE || self.row_of[head as usize] > i {
            self.next_col[idx as usize] = head;
            self.col_head[j as usize] = idx;
        } else {
            debug_assert_ne!(self.row_of[head as usize], i, "cell already linked");
            let mut cur = head;
            while self.next_col[cur as usize] != NONE
                && self.row_of[self.next_col[cur as usize] as usize] < i
            {
                cur = self.next_col[cur as usize];
            }
            self.next_col[idx as usize] = self.next_col[cur as usize];
            self.next_col[cur as usize] = idx;
        }
        let _ = self.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floyd::floyd_warshall;
    use crate::pruned::l_pruned_floyd_warshall;
    use lopacity_graph::Graph;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn matches_pruned_and_classic_on_paper_graph() {
        let g = paper_graph();
        let full = floyd_warshall(&g);
        for l in 0..=6u8 {
            let pointer = pointer_floyd_warshall(&g, l);
            assert_eq!(pointer, full.truncate(l), "vs classic, L = {l}");
            assert_eq!(pointer, l_pruned_floyd_warshall(&g, l), "vs pruned, L = {l}");
        }
    }

    #[test]
    fn l_one_is_pure_adjacency() {
        let g = paper_graph();
        let m = pointer_floyd_warshall(&g, 1);
        assert_eq!(m.count_within(1), g.num_edges());
    }

    #[test]
    fn star_graph_distances() {
        // All leaf pairs are at distance 2 through the hub.
        let g = Graph::from_edges(5, [(0u32, 1u32), (0, 2), (0, 3), (0, 4)]).unwrap();
        let m = pointer_floyd_warshall(&g, 2);
        for i in 1..5u32 {
            assert_eq!(m.get(0, i), 1);
            for j in (i + 1)..5u32 {
                assert_eq!(m.get(i, j), 2);
            }
        }
    }

    #[test]
    fn long_cycle_truncates_far_side() {
        let g = Graph::from_edges(8, (0..8u32).map(|i| (i, (i + 1) % 8))).unwrap();
        let m = pointer_floyd_warshall(&g, 3);
        assert_eq!(m.get(0, 3), 3);
        assert_eq!(m.get(0, 4), INF); // distance 4 > L
        assert_eq!(m.get(0, 5), 3); // around the other side
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        for n in 0..3usize {
            let g = Graph::new(n);
            let m = pointer_floyd_warshall(&g, 4);
            assert_eq!(m.count_within(MAX_L), 0);
        }
    }
}
