//! Algorithm 2: the L-pruned Floyd–Warshall.
//!
//! Identical relaxation order to the classic algorithm, but any relaxation
//! that cannot produce a distance `<= L` is skipped: a shortest path of
//! length `<= L` through intermediate `k` splits into two parts of length
//! `>= 1` each, so both parts are `< L` — hence cells already at `>= L`
//! never participate as inputs. Paths from/to `k` itself are also skipped,
//! mirroring the pseudo-code's `i != k` / `j != k` guards.

use crate::dist::DistanceMatrix;
use crate::MAX_L;
use lopacity_graph::{Graph, VertexId};

/// Truncated APSP via the L-pruned Floyd–Warshall (paper Algorithm 2).
///
/// Produces exactly the distances `<= l`; longer or unreachable pairs are
/// [`crate::INF`].
///
/// # Panics
/// Panics when `l > MAX_L`.
pub fn l_pruned_floyd_warshall(graph: &Graph, l: u8) -> DistanceMatrix {
    assert!(l <= MAX_L, "l {l} exceeds MAX_L");
    let n = graph.num_vertices();
    let mut m = DistanceMatrix::new(n, l);
    if l == 0 {
        return m;
    }
    for e in graph.edges() {
        m.set(e.u(), e.v(), 1);
    }
    for k in 0..n as VertexId {
        for i in 0..n as VertexId {
            if i == k {
                continue;
            }
            let dik = m.get(i, k);
            // Pruning: a useful first leg must leave room for at least one
            // more edge within the budget L.
            if dik >= l {
                continue;
            }
            for j in (i + 1)..n as VertexId {
                if j == k {
                    continue;
                }
                let dkj = m.get(k, j);
                if dkj >= l {
                    continue;
                }
                let sum = dik + dkj;
                if sum <= l && sum < m.get(i, j) {
                    m.set(i, j, sum);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::INF;
    use crate::floyd::floyd_warshall;
    use lopacity_graph::Graph;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn matches_clamped_classic_floyd_warshall() {
        let g = paper_graph();
        let full = floyd_warshall(&g);
        for l in 0..=5u8 {
            assert_eq!(l_pruned_floyd_warshall(&g, l), full.truncate(l), "L = {l}");
        }
    }

    #[test]
    fn l_one_equals_adjacency() {
        let g = paper_graph();
        let m = l_pruned_floyd_warshall(&g, 1);
        for (i, j, d) in m.iter_pairs() {
            if g.has_edge(i, j) {
                assert_eq!(d, 1);
            } else {
                assert_eq!(d, INF);
            }
        }
    }

    #[test]
    fn l_zero_is_empty() {
        let m = l_pruned_floyd_warshall(&paper_graph(), 0);
        assert_eq!(m.count_within(MAX_L), 0);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(6, [(0u32, 1u32), (1, 2), (3, 4)]).unwrap();
        let m = l_pruned_floyd_warshall(&g, 3);
        assert_eq!(m.get(0, 2), 2);
        assert_eq!(m.get(0, 4), INF);
        assert_eq!(m.get(3, 4), 1);
        assert_eq!(m.get(0, 5), INF);
    }
}
