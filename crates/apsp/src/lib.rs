//! All-pairs shortest-path engines for L-opacity (paper Section 5.1.2).
//!
//! The opacity computation (Algorithm 1) only needs to know, for every
//! vertex pair, whether the geodesic distance is `<= L` — and if so its exact
//! value. The paper derives three engines of increasing sophistication, all
//! implemented here and cross-checked against each other:
//!
//! * [`floyd::floyd_warshall`] — the classic `O(V^3)` algorithm (baseline);
//! * [`pruned::l_pruned_floyd_warshall`] — **Algorithm 2**, which skips any
//!   relaxation that cannot produce a distance `<= L`;
//! * [`pointer::pointer_floyd_warshall`] — **Algorithm 3**, which rides
//!   linked lists of sub-threshold cells to avoid re-scanning rows/columns;
//! * [`bfs::truncated_bfs_apsp`] — one depth-limited BFS per source, the
//!   asymptotically best choice on the sparse graphs of the evaluation
//!   (`O(V (V + E))` versus `O(V^3)`), used as the default engine.
//!
//! All engines produce a [`DistanceMatrix`]: a triangular matrix where
//! entries `> L` are truncated to [`INF`]. Because exact entries never
//! exceed `L`, the matrix nibble-packs two pairs per byte whenever
//! `L <= NIBBLE_MAX_L` (one byte per pair beyond), and the default BFS
//! engine can shard its per-source sweeps across a scoped-thread pool
//! ([`ApspEngine::compute_with`]) — output identical to the sequential
//! build for every worker count.

pub mod bfs;
pub mod dist;
pub mod engine;
pub mod floyd;
pub mod pointer;
pub mod pruned;
pub mod store;

pub use bfs::{sampled_mean_ball, truncated_bfs_apsp, truncated_bfs_apsp_sharded, TruncatedBfs};
pub use dist::{DistanceMatrix, INF, NIBBLE_MAX_L};
pub use engine::ApspEngine;
pub use store::{
    auto_prefers_sparse, estimate_footprint, expected_mean_ball, DistStore, SparseStore,
    StoreBackend,
};
pub use floyd::{floyd_warshall, FullDistanceMatrix, INF_FULL};
pub use pointer::pointer_floyd_warshall;
pub use pruned::l_pruned_floyd_warshall;

/// The maximum path-length threshold supported by the truncated engines.
///
/// Distances are stored as `u8` with 255 reserved for [`INF`]; real-world
/// L values are tiny (the paper never exceeds 4; small-world arguments cap
/// interesting values near 6).
pub const MAX_L: u8 = 254;
