//! Engine selection.

use crate::dist::DistanceMatrix;
use crate::{bfs, floyd, pointer, pruned};
use lopacity_graph::Graph;
use lopacity_util::Parallelism;

/// Fewest vertices for which [`Parallelism::Auto`] shards the BFS build:
/// below this, one BFS sweep over the whole graph is cheaper than spawning
/// scoped threads and allocating per-worker scratch. `Fixed(n)` ignores the
/// floor (the equivalence suites force sharded builds on tiny graphs).
const AUTO_PARALLEL_MIN_BUILD_VERTICES: usize = 512;

/// Worker count for a truncated-BFS build over `n` sources (shared with
/// the sparse-store build, which shards the same per-source BFS sweep).
pub(crate) fn build_workers(parallelism: Parallelism, n: usize) -> usize {
    parallelism.resolve(n, AUTO_PARALLEL_MIN_BUILD_VERTICES)
}

/// Which algorithm computes the truncated distance matrix.
///
/// All engines are interchangeable (property-tested to produce identical
/// output); they differ only in cost profile:
///
/// | engine | complexity | sweet spot |
/// |---|---|---|
/// | `TruncatedBfs` | `O(V (V + E))` | sparse graphs (default) |
/// | `FloydWarshall` | `O(V^3)` | reference / dense tiny graphs |
/// | `PrunedFloydWarshall` | `O(V^3)` w/ pruning | paper Algorithm 2 |
/// | `PointerFloydWarshall` | output-sensitive | paper Algorithm 3 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApspEngine {
    /// One depth-limited BFS per source (default).
    #[default]
    TruncatedBfs,
    /// Classic Floyd–Warshall, then clamp to `L`.
    FloydWarshall,
    /// Paper Algorithm 2.
    PrunedFloydWarshall,
    /// Paper Algorithm 3.
    PointerFloydWarshall,
}

impl ApspEngine {
    /// Computes the truncated distance matrix of `graph` for threshold `l`.
    pub fn compute(self, graph: &Graph, l: u8) -> DistanceMatrix {
        self.compute_with(graph, l, Parallelism::Off)
    }

    /// Like [`ApspEngine::compute`] with an explicit parallelism budget.
    ///
    /// Only [`ApspEngine::TruncatedBfs`] has a parallel build (one
    /// independent BFS per source, sharded over a scoped-thread pool); the
    /// Floyd–Warshall family is inherently sequential in `k` and ignores
    /// the knob. The output is **identical** to the sequential build for
    /// every setting (each vertex pair is written by exactly one source's
    /// BFS), so callers may key caches on `(engine, l)` alone.
    pub fn compute_with(self, graph: &Graph, l: u8, parallelism: Parallelism) -> DistanceMatrix {
        match self {
            ApspEngine::TruncatedBfs => bfs::truncated_bfs_apsp_sharded(
                graph,
                l,
                build_workers(parallelism, graph.num_vertices()),
            ),
            ApspEngine::FloydWarshall => floyd::floyd_warshall(graph).truncate(l),
            ApspEngine::PrunedFloydWarshall => pruned::l_pruned_floyd_warshall(graph, l),
            ApspEngine::PointerFloydWarshall => pointer::pointer_floyd_warshall(graph, l),
        }
    }

    /// Like [`ApspEngine::compute_with`], but producing a
    /// [`DistStore`](crate::DistStore) —
    /// the representation-abstracted surface the incremental evaluator
    /// consumes. `backend` picks the representation
    /// ([`crate::StoreBackend::Auto`] samples the within-L density); the
    /// *contents* are identical for every choice, only the memory layout
    /// and access costs differ. With the truncated-BFS engine the sparse
    /// backend is built directly from the per-source sweeps, so no
    /// `Θ(n²)` intermediate ever materializes.
    pub fn compute_store(
        self,
        graph: &Graph,
        l: u8,
        parallelism: Parallelism,
        backend: crate::StoreBackend,
    ) -> crate::DistStore {
        crate::DistStore::build(graph, l, self, parallelism, backend)
    }

    /// All engines, for cross-checking and benches.
    pub const ALL: [ApspEngine; 4] = [
        ApspEngine::TruncatedBfs,
        ApspEngine::FloydWarshall,
        ApspEngine::PrunedFloydWarshall,
        ApspEngine::PointerFloydWarshall,
    ];

    /// Short stable name (used in bench ids and CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            ApspEngine::TruncatedBfs => "bfs",
            ApspEngine::FloydWarshall => "floyd",
            ApspEngine::PrunedFloydWarshall => "pruned-fw",
            ApspEngine::PointerFloydWarshall => "pointer-fw",
        }
    }
}

impl std::str::FromStr for ApspEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bfs" => Ok(ApspEngine::TruncatedBfs),
            "floyd" => Ok(ApspEngine::FloydWarshall),
            "pruned-fw" => Ok(ApspEngine::PrunedFloydWarshall),
            "pointer-fw" => Ok(ApspEngine::PointerFloydWarshall),
            other => Err(format!(
                "unknown apsp engine {other:?} (expected bfs, floyd, pruned-fw or pointer-fw)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity_graph::Graph;

    #[test]
    fn all_engines_agree_on_a_fixed_graph() {
        let g = Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap();
        for l in 0..=4u8 {
            let reference = ApspEngine::FloydWarshall.compute(&g, l);
            for engine in ApspEngine::ALL {
                assert_eq!(engine.compute(&g, l), reference, "engine {} at L={l}", engine.name());
            }
        }
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for engine in ApspEngine::ALL {
            let parsed: ApspEngine = engine.name().parse().unwrap();
            assert_eq!(parsed, engine);
        }
        assert!("nope".parse::<ApspEngine>().is_err());
    }

    #[test]
    fn default_is_bfs() {
        assert_eq!(ApspEngine::default(), ApspEngine::TruncatedBfs);
    }

    #[test]
    fn sharded_build_matches_sequential() {
        let g = Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap();
        for l in 0..=4u8 {
            let sequential = ApspEngine::TruncatedBfs.compute(&g, l);
            for workers in [1usize, 2, 3, 8] {
                let sharded = ApspEngine::TruncatedBfs.compute_with(
                    &g,
                    l,
                    Parallelism::Fixed(workers),
                );
                assert_eq!(sharded, sequential, "workers={workers} L={l}");
            }
        }
    }

    #[test]
    fn build_workers_honors_the_auto_floor() {
        assert_eq!(build_workers(Parallelism::Off, 10_000), 1);
        assert_eq!(
            build_workers(Parallelism::Auto, AUTO_PARALLEL_MIN_BUILD_VERTICES - 1),
            1,
            "Auto stays sequential below the floor"
        );
        assert!(build_workers(Parallelism::Auto, AUTO_PARALLEL_MIN_BUILD_VERTICES) >= 1);
        assert_eq!(build_workers(Parallelism::Fixed(4), 8), 4, "Fixed ignores the floor");
        assert_eq!(build_workers(Parallelism::Fixed(16), 3), 3, "capped at source count");
        assert_eq!(build_workers(Parallelism::Fixed(4), 0), 1, "empty graph still resolves");
    }
}
