//! Link-disclosure bookkeeping (Zhang & Zhang's model at `L = 1`).

use lopacity::{LoAssessment, TypeSpec, TypeSystem};
use lopacity_graph::{Edge, Graph};

/// Per-degree-pair-type edge counts: the disclosure of type `T` is
/// `#edges of type T / |T|`, which equals `LO_G(T)` at `L = 1`.
///
/// Types are frozen from the *original* degrees at construction, mirroring
/// both Zhang & Zhang's adversary (who knows original degrees) and the
/// L-opacity publication model.
pub struct LinkDisclosure {
    types: TypeSystem,
    counts: Vec<u64>,
}

impl LinkDisclosure {
    /// Builds the disclosure table for `graph`.
    pub fn new(graph: &Graph) -> Self {
        let types = TypeSystem::build(graph, &TypeSpec::DegreePairs);
        Self::with_types(types, graph)
    }

    /// Builds the table for `graph` under an already-frozen type system —
    /// the session-routed entry point: a churn repair's types were frozen
    /// from the *pre-churn* graph, so its disclosure mirror must count
    /// under those same types rather than re-freeze from mutated degrees.
    pub fn with_types(types: TypeSystem, graph: &Graph) -> Self {
        let mut counts = vec![0u64; types.num_types()];
        for e in graph.edges() {
            if let Some(t) = types.type_of(e.u(), e.v()) {
                counts[t as usize] += 1;
            }
        }
        LinkDisclosure { types, counts }
    }

    /// The frozen type system.
    pub fn types(&self) -> &TypeSystem {
        &self.types
    }

    /// Current edge count of type `t`.
    pub fn count_of(&self, t: u32) -> u64 {
        self.counts[t as usize]
    }

    /// All per-type edge counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Maximum disclosure and its multiplicity.
    pub fn max_disclosure(&self) -> LoAssessment {
        LoAssessment::from_counts(&self.counts, self.types.denominators())
    }

    /// Sum of all per-type disclosures (Zhang & Zhang's "total link
    /// disclosure", the GADED-Max tie-breaker).
    pub fn total_disclosure(&self) -> f64 {
        self.counts
            .iter()
            .zip(self.types.denominators())
            .filter(|&(_, &d)| d > 0)
            .map(|(&c, &d)| c as f64 / d as f64)
            .sum()
    }

    /// Whether the edge participates in a type whose disclosure exceeds θ.
    pub fn edge_violates(&self, e: Edge, theta: f64) -> bool {
        match self.types.type_of(e.u(), e.v()) {
            None => false,
            Some(t) => {
                let d = self.types.denominators()[t as usize];
                d > 0 && self.counts[t as usize] as f64 > theta * d as f64 + 1e-9
            }
        }
    }

    /// `(max, total)` disclosure if `e` were removed. O(#types).
    pub fn after_remove(&self, e: Edge) -> (LoAssessment, f64) {
        self.after_delta(e, -1)
    }

    /// `(max, total)` disclosure if `e` were inserted. O(#types).
    pub fn after_insert(&self, e: Edge) -> (LoAssessment, f64) {
        self.after_delta(e, 1)
    }

    fn after_delta(&self, e: Edge, delta: i64) -> (LoAssessment, f64) {
        let mut counts = self.counts.clone();
        if let Some(t) = self.types.type_of(e.u(), e.v()) {
            let slot = &mut counts[t as usize];
            *slot = (*slot as i64 + delta) as u64;
        }
        let max = LoAssessment::from_counts(&counts, self.types.denominators());
        let total = counts
            .iter()
            .zip(self.types.denominators())
            .filter(|&(_, &d)| d > 0)
            .map(|(&c, &d)| c as f64 / d as f64)
            .sum();
        (max, total)
    }

    /// Commits an edge removal.
    pub fn commit_remove(&mut self, e: Edge) {
        if let Some(t) = self.types.type_of(e.u(), e.v()) {
            self.counts[t as usize] -= 1;
        }
    }

    /// Commits an edge insertion.
    pub fn commit_insert(&mut self, e: Edge) {
        if let Some(t) = self.types.type_of(e.u(), e.v()) {
            self.counts[t as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn matches_l1_opacity() {
        let g = paper_graph();
        let ld = LinkDisclosure::new(&g);
        let report = lopacity::opacity_report(&g, &TypeSpec::DegreePairs, 1);
        assert_eq!(ld.max_disclosure().ratio(), report.max_lo.ratio());
        assert_eq!(ld.max_disclosure().n_at_max(), report.max_lo.n_at_max());
    }

    #[test]
    fn after_remove_matches_commit() {
        let g = paper_graph();
        let mut ld = LinkDisclosure::new(&g);
        let e = Edge::new(1, 2);
        let (predicted, _) = ld.after_remove(e);
        ld.commit_remove(e);
        assert_eq!(ld.max_disclosure().ratio(), predicted.ratio());
    }

    #[test]
    fn total_disclosure_decreases_on_removal() {
        let g = paper_graph();
        let ld = LinkDisclosure::new(&g);
        let before = ld.total_disclosure();
        let (_, after) = ld.after_remove(Edge::new(0, 1));
        assert!(after < before);
    }

    #[test]
    fn edge_violates_tracks_theta() {
        let g = paper_graph();
        let ld = LinkDisclosure::new(&g);
        // Edge (5,6) is the only P{1,3} pair: disclosure 1.0.
        assert!(ld.edge_violates(Edge::new(5, 6), 0.9));
        assert!(!ld.edge_violates(Edge::new(5, 6), 1.0));
        // P{2,4} edges have disclosure 2/3.
        assert!(ld.edge_violates(Edge::new(0, 1), 0.5));
        assert!(!ld.edge_violates(Edge::new(0, 1), 0.7));
    }
}
