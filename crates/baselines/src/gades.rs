//! GADES: graph anonymization by degree-preserving edge swaps.
//!
//! A swap takes two vertex-disjoint edges `(a, b)` and `(c, d)` and rewires
//! them as `(a, c)+(b, d)` or `(a, d)+(b, c)`, preserving every vertex's
//! degree. Each iteration commits a swap that strictly reduces
//! `(max disclosure, total disclosure)`; when no such swap exists the
//! heuristic gives up. The L-opacity paper finds that on its datasets GADES
//! "cannot find any L-opaque graph unless returning an empty graph" — the
//! `achieved: false` outcome downstream harnesses report as failure.

use crate::disclosure::LinkDisclosure;
use lopacity::{AnonymizationOutcome, LoAssessment};
use lopacity_graph::{Edge, Graph};

/// Default cap on swap-candidate evaluations per GADES run. The search is
/// `O(|E|^2)` per step just to *prove* no improving swap exists; beyond a
/// few hundred vertices this dwarfs every other method. The cap preserves
/// the paper-reported behaviour (GADES fails except via the empty graph)
/// while keeping runs bounded; exceeding it reports `achieved: false`.
pub const DEFAULT_SWAP_BUDGET: u64 = 500_000;

/// **GADES**: swap edges while the maximum disclosure exceeds θ and an
/// improving swap exists, with the default trial budget. A thin one-shot
/// session wrapper over [`crate::Gades`]; the legacy standalone
/// implementation is retained in the test module as the regression oracle.
pub fn gades(graph: &Graph, theta: f64) -> AnonymizationOutcome {
    gades_with_budget(graph, theta, DEFAULT_SWAP_BUDGET)
}

/// [`gades`] with an explicit swap-evaluation budget.
pub fn gades_with_budget(graph: &Graph, theta: f64, budget: u64) -> AnonymizationOutcome {
    crate::strategies::run_once_at_l1(graph, theta, 0, crate::Gades { budget })
}

pub(crate) struct Swap {
    pub(crate) out1: Edge,
    pub(crate) out2: Edge,
    pub(crate) in1: Edge,
    pub(crate) in2: Edge,
}

/// Finds a swap that strictly reduces the maximum disclosure
/// (first-improvement local search; among the two orientations of a pair,
/// the better `(max, total)` is taken). Returns `None` when no improving
/// swap exists or the budget runs out mid-scan.
pub(crate) fn first_improving_swap(
    g: &Graph,
    ld: &LinkDisclosure,
    current: &LoAssessment,
    trials: &mut u64,
    budget: u64,
) -> Option<Swap> {
    let edges = g.edge_vec();
    let mut scratch: Vec<u64> = ld.counts().to_vec();
    let base_total = ld.total_disclosure();
    for (i, &e1) in edges.iter().enumerate() {
        for &e2 in &edges[i + 1..] {
            if e1.shares_endpoint(&e2) {
                continue;
            }
            let (a, b) = e1.endpoints();
            let (c, d) = e2.endpoints();
            let mut best: Option<(Swap, LoAssessment, f64)> = None;
            for (in1, in2) in [(Edge::new(a, c), Edge::new(b, d)), (Edge::new(a, d), Edge::new(b, c))]
            {
                if g.has_edge(in1.u(), in1.v()) || g.has_edge(in2.u(), in2.v()) || in1 == in2 {
                    continue;
                }
                *trials += 1;
                let (max, total) =
                    evaluate_swap(ld, &mut scratch, base_total, e1, e2, in1, in2);
                if max.cmp_value(current) != std::cmp::Ordering::Less {
                    continue; // not a strict reduction of the max disclosure
                }
                let better = match &best {
                    None => true,
                    Some((_, bmax, btotal)) => match max.cmp_value(bmax) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => total < *btotal - 1e-12,
                    },
                };
                if better {
                    best = Some((Swap { out1: e1, out2: e2, in1, in2 }, max, total));
                }
            }
            if let Some((swap, _, _)) = best {
                return Some(swap);
            }
            if *trials >= budget {
                return None;
            }
        }
    }
    None
}

fn evaluate_swap(
    ld: &LinkDisclosure,
    scratch: &mut [u64],
    base_total: f64,
    out1: Edge,
    out2: Edge,
    in1: Edge,
    in2: Edge,
) -> (LoAssessment, f64) {
    // Apply the four deltas on the shared scratch count table, evaluate,
    // then revert — O(#types) per candidate without reallocation.
    let types = ld.types();
    let denoms = types.denominators();
    let mut total = base_total;
    let mut touched: [(u32, i64); 4] = [(0, 0); 4];
    let mut k = 0;
    for (e, delta) in [(out1, -1i64), (out2, -1), (in1, 1), (in2, 1)] {
        if let Some(t) = types.type_of(e.u(), e.v()) {
            let d = denoms[t as usize];
            scratch[t as usize] = (scratch[t as usize] as i64 + delta) as u64;
            if d > 0 {
                total += delta as f64 / d as f64;
            }
            touched[k] = (t, delta);
            k += 1;
        }
    }
    let max = LoAssessment::from_counts(scratch, denoms);
    for &(t, delta) in &touched[..k] {
        scratch[t as usize] = (scratch[t as usize] as i64 - delta) as u64;
    }
    (max, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retired standalone implementation, kept verbatim as the
    /// regression oracle for the session-routed path.
    mod legacy {
        use super::super::{first_improving_swap, Swap};
        use crate::disclosure::LinkDisclosure;
        use lopacity::AnonymizationOutcome;
        use lopacity_graph::{Edge, Graph};

        pub fn gades_with_budget(
            graph: &Graph,
            theta: f64,
            budget: u64,
        ) -> AnonymizationOutcome {
            let mut g = graph.clone();
            let mut ld = LinkDisclosure::new(&g);
            let mut removed = Vec::new();
            let mut inserted = Vec::new();
            let mut steps = 0usize;
            let mut trials = 0u64;

            loop {
                let current = ld.max_disclosure();
                if current.satisfies(theta) {
                    break;
                }
                if trials >= budget {
                    break;
                }
                let Some(swap) = first_improving_swap(&g, &ld, &current, &mut trials, budget)
                else {
                    break;
                };
                let Swap { out1, out2, in1, in2 } = swap;
                g.remove_edge(out1.u(), out1.v());
                g.remove_edge(out2.u(), out2.v());
                g.add_edge(in1.u(), in1.v());
                g.add_edge(in2.u(), in2.v());
                ld.commit_remove(out1);
                ld.commit_remove(out2);
                ld.commit_insert(in1);
                ld.commit_insert(in2);
                record_edit(&mut removed, &mut inserted, out1, out2, in1, in2, graph);
                steps += 1;
            }

            let final_a = ld.max_disclosure();
            AnonymizationOutcome {
                graph: g,
                removed,
                inserted,
                steps,
                trials,
                final_lo: final_a.as_f64(),
                final_n_at_max: final_a.n_at_max(),
                achieved: final_a.satisfies(theta),
                fork_clones: 0,
            }
        }

        /// Books a swap into the cumulative edit lists relative to the
        /// *original* graph: swapping back an edge that was previously
        /// swapped out must cancel rather than double-count.
        fn record_edit(
            removed: &mut Vec<Edge>,
            inserted: &mut Vec<Edge>,
            out1: Edge,
            out2: Edge,
            in1: Edge,
            in2: Edge,
            original: &Graph,
        ) {
            for e in [out1, out2] {
                if let Some(pos) = inserted.iter().position(|&x| x == e) {
                    inserted.swap_remove(pos); // cancelled an earlier insertion
                } else {
                    debug_assert!(original.has_edge(e.u(), e.v()));
                    removed.push(e);
                }
            }
            for e in [in1, in2] {
                if let Some(pos) = removed.iter().position(|&x| x == e) {
                    removed.swap_remove(pos); // restored an original edge
                } else {
                    inserted.push(e);
                }
            }
        }
    }

    /// The session-routed path reproduces the retired standalone
    /// implementation field for field, across θ values and budgets.
    #[test]
    fn session_route_matches_legacy_implementation() {
        let graphs = [
            paper_graph(),
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)])
                .unwrap(),
        ];
        for (gi, g) in graphs.iter().enumerate() {
            for theta in [0.2, 0.5, 0.8, 1.0] {
                for budget in [50u64, 500_000] {
                    let new = gades_with_budget(g, theta, budget);
                    let old = legacy::gades_with_budget(g, theta, budget);
                    let ctx = format!("graph {gi}, θ={theta}, budget={budget}");
                    assert_eq!(new.graph, old.graph, "graph: {ctx}");
                    assert_eq!(new.removed, old.removed, "removed: {ctx}");
                    assert_eq!(new.inserted, old.inserted, "inserted: {ctx}");
                    assert_eq!(new.steps, old.steps, "steps: {ctx}");
                    assert_eq!(new.trials, old.trials, "trials: {ctx}");
                    assert_eq!(new.final_lo, old.final_lo, "final_lo: {ctx}");
                    assert_eq!(new.achieved, old.achieved, "achieved: {ctx}");
                }
            }
        }
    }

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn preserves_every_degree() {
        let g = paper_graph();
        let out = gades(&g, 0.3);
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
    }

    #[test]
    fn gives_up_rather_than_looping() {
        // Whatever the outcome, the run must terminate and report honestly.
        let g = paper_graph();
        let out = gades(&g, 0.2);
        if out.achieved {
            assert!(out.final_lo <= 0.2 + 1e-9);
        } else {
            assert!(out.final_lo > 0.2);
        }
    }

    #[test]
    fn theta_one_is_noop() {
        let g = paper_graph();
        let out = gades(&g, 1.0);
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
        assert_eq!(out.graph, g);
    }

    #[test]
    fn edit_lists_replay_to_final_graph() {
        let g = paper_graph();
        let out = gades(&g, 0.5);
        let mut replay = g.clone();
        for e in &out.removed {
            assert!(replay.remove_edge(e.u(), e.v()), "bad removal {e}");
        }
        for e in &out.inserted {
            assert!(replay.add_edge(e.u(), e.v()), "bad insertion {e}");
        }
        assert_eq!(replay, out.graph);
    }

    #[test]
    fn is_deterministic() {
        let g = paper_graph();
        let a = gades(&g, 0.5);
        let b = gades(&g, 0.5);
        assert_eq!(a.removed, b.removed);
        assert_eq!(a.inserted, b.inserted);
    }
}
