//! Competing heuristics of Zhang & Zhang, *Edge anonymity in social network
//! graphs* (CSE 2009) — the comparison baselines of the paper's evaluation
//! (Section 6).
//!
//! Their model limits an adversary's confidence that a **single edge**
//! connects two individuals of given degrees; for `L = 1` and degree-pair
//! types their *link disclosure* coincides exactly with `LO_G(T)`, which is
//! why the paper compares against them only at `L = 1`.
//!
//! Three heuristics are reproduced as described in Section 6 of the
//! L-opacity paper:
//!
//! * [`gaded_rand`] — removes a uniformly random edge among those
//!   participating in a disclosure above θ;
//! * [`gaded_max`] — removes the edge with the maximum reduction of the
//!   maximum link disclosure, tie-broken by the minimum total disclosure;
//! * [`gades()`](crate::gades()) — degree-preserving edge swaps that reduce the maximum
//!   disclosure; gives up when no improving swap exists (the paper observes
//!   it "cannot find any L-opaque graph unless returning an empty graph").
//!
//! Each heuristic is also available as a session [`lopacity::Strategy`]
//! ([`GadedRand`], [`GadedMax`], [`Gades`]) so it can run anywhere the
//! [`lopacity::Anonymizer`] surface is the entry point — sweeps, progress
//! observers, and `ChurnSession::repair`. The free functions are thin
//! one-shot wrappers over those strategies and reproduce the historical
//! standalone implementations bit-for-bit (regression-tested in
//! [`gaded`] / [`mod@gades`]).

pub mod disclosure;
pub mod gaded;
pub mod gades;
pub mod strategies;

pub use disclosure::LinkDisclosure;
pub use gaded::{gaded_max, gaded_rand};
pub use gades::{gades, gades_with_budget, DEFAULT_SWAP_BUDGET};
pub use strategies::{Gades, GadedMax, GadedRand};
