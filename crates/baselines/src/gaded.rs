//! GADED-Rand and GADED-Max: greedy edge deletion against link disclosure.
//!
//! Both are thin wrappers over their session-routed [`lopacity::Strategy`] forms
//! ([`crate::GadedRand`], [`crate::GadedMax`]) — one-shot
//! [`lopacity::Anonymizer`] runs at `L = 1` over degree-pair types. The
//! legacy standalone implementations live on in this module's test module
//! as the regression oracle: the session route must reproduce them field
//! for field.

use crate::strategies::{run_once_at_l1, GadedMax, GadedRand};
use lopacity::AnonymizationOutcome;
use lopacity_graph::Graph;

/// **GADED-Rand**: while some degree-pair type discloses above θ, remove a
/// uniformly random edge among the edges participating in a violating type.
pub fn gaded_rand(graph: &Graph, theta: f64, seed: u64) -> AnonymizationOutcome {
    run_once_at_l1(graph, theta, seed, GadedRand)
}

/// **GADED-Max**: while some type discloses above θ, remove the edge whose
/// removal yields the smallest maximum disclosure, tie-broken by the
/// smallest total disclosure (Zhang & Zhang's "maximum reduction of the
/// maximum link disclosure and minimum increase of the total link
/// disclosures"). Deterministic — no seed.
pub fn gaded_max(graph: &Graph, theta: f64) -> AnonymizationOutcome {
    run_once_at_l1(graph, theta, 0, GadedMax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity::opacity::opacity_report_against_original;
    use lopacity::TypeSpec;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn gaded_rand_achieves_theta() {
        let g = paper_graph();
        let out = gaded_rand(&g, 0.5, 42);
        assert!(out.achieved, "{out}");
        let report = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
        assert!(report.max_lo.satisfies(0.5));
        assert!(out.inserted.is_empty());
    }

    #[test]
    fn gaded_max_achieves_theta_with_fewer_or_equal_removals() {
        let g = paper_graph();
        let rand_out = gaded_rand(&g, 0.5, 1);
        let max_out = gaded_max(&g, 0.5);
        assert!(max_out.achieved);
        // Informed deletion should not need more removals than random on
        // this instance (regression guard, not a theorem).
        assert!(max_out.removed.len() <= rand_out.removed.len() + 1);
    }

    #[test]
    fn gaded_max_is_deterministic() {
        let g = paper_graph();
        let a = gaded_max(&g, 0.4);
        let b = gaded_max(&g, 0.4);
        assert_eq!(a.removed, b.removed);
    }

    #[test]
    fn theta_one_is_noop() {
        let g = paper_graph();
        let out = gaded_rand(&g, 1.0, 0);
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
        let out = gaded_max(&g, 1.0);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn theta_zero_removes_all_typed_edges() {
        let g = paper_graph();
        let out = gaded_max(&g, 0.0);
        assert!(out.achieved);
        assert_eq!(out.graph.num_edges(), 0);
    }

    #[test]
    fn gaded_rand_deterministic_per_seed() {
        let g = paper_graph();
        assert_eq!(gaded_rand(&g, 0.4, 9).removed, gaded_rand(&g, 0.4, 9).removed);
    }

    /// The retired standalone implementations, kept verbatim as the
    /// regression oracle for the session-routed path.
    mod legacy {
        use crate::disclosure::LinkDisclosure;
        use lopacity::AnonymizationOutcome;
        use lopacity_graph::{Edge, Graph};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        pub fn gaded_rand(graph: &Graph, theta: f64, seed: u64) -> AnonymizationOutcome {
            let mut g = graph.clone();
            let mut ld = LinkDisclosure::new(&g);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut removed = Vec::new();
            let mut steps = 0usize;
            let mut trials = 0u64;
            while !ld.max_disclosure().satisfies(theta) {
                let violating: Vec<Edge> =
                    g.edges().filter(|&e| ld.edge_violates(e, theta)).collect();
                trials += violating.len() as u64;
                let Some(&pick) = violating.get(rng.random_range(0..violating.len().max(1)))
                else {
                    break;
                };
                g.remove_edge(pick.u(), pick.v());
                ld.commit_remove(pick);
                removed.push(pick);
                steps += 1;
            }
            let final_a = ld.max_disclosure();
            AnonymizationOutcome {
                graph: g,
                removed,
                inserted: Vec::new(),
                steps,
                trials,
                final_lo: final_a.as_f64(),
                final_n_at_max: final_a.n_at_max(),
                achieved: final_a.satisfies(theta),
                fork_clones: 0,
            }
        }

        pub fn gaded_max(graph: &Graph, theta: f64) -> AnonymizationOutcome {
            let mut g = graph.clone();
            let mut ld = LinkDisclosure::new(&g);
            let mut removed = Vec::new();
            let mut steps = 0usize;
            let mut trials = 0u64;
            while !ld.max_disclosure().satisfies(theta) && g.num_edges() > 0 {
                let mut best: Option<(Edge, lopacity::LoAssessment, f64)> = None;
                for e in g.edges() {
                    let (max, total) = ld.after_remove(e);
                    trials += 1;
                    let better = match &best {
                        None => true,
                        Some((_, bmax, btotal)) => match max.cmp_value(bmax) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => total < *btotal - 1e-12,
                        },
                    };
                    if better {
                        best = Some((e, max, total));
                    }
                }
                let Some((pick, _, _)) = best else { break };
                g.remove_edge(pick.u(), pick.v());
                ld.commit_remove(pick);
                removed.push(pick);
                steps += 1;
            }
            let final_a = ld.max_disclosure();
            AnonymizationOutcome {
                graph: g,
                removed,
                inserted: Vec::new(),
                steps,
                trials,
                final_lo: final_a.as_f64(),
                final_n_at_max: final_a.n_at_max(),
                achieved: final_a.satisfies(theta),
                fork_clones: 0,
            }
        }
    }

    fn assert_outcomes_match(a: &AnonymizationOutcome, b: &AnonymizationOutcome, ctx: &str) {
        assert_eq!(a.graph, b.graph, "graph: {ctx}");
        assert_eq!(a.removed, b.removed, "removed: {ctx}");
        assert_eq!(a.inserted, b.inserted, "inserted: {ctx}");
        assert_eq!(a.steps, b.steps, "steps: {ctx}");
        assert_eq!(a.trials, b.trials, "trials: {ctx}");
        assert_eq!(a.final_lo, b.final_lo, "final_lo: {ctx}");
        assert_eq!(a.final_n_at_max, b.final_n_at_max, "final_n_at_max: {ctx}");
        assert_eq!(a.achieved, b.achieved, "achieved: {ctx}");
    }

    /// The session-routed path reproduces the retired standalone
    /// implementation field for field, across θ values and seeds.
    #[test]
    fn session_route_matches_legacy_implementation() {
        let graphs = [
            paper_graph(),
            Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap(),
            Graph::from_edges(9, (0..8u32).map(|i| (i, i + 1))).unwrap(),
        ];
        for (gi, g) in graphs.iter().enumerate() {
            for theta in [0.0, 0.3, 0.5, 0.8, 1.0] {
                for seed in [0u64, 7, 42] {
                    let ctx = format!("graph {gi}, θ={theta}, seed={seed}");
                    assert_outcomes_match(
                        &gaded_rand(g, theta, seed),
                        &legacy::gaded_rand(g, theta, seed),
                        &format!("gaded_rand, {ctx}"),
                    );
                }
                let ctx = format!("graph {gi}, θ={theta}");
                assert_outcomes_match(
                    &gaded_max(g, theta),
                    &legacy::gaded_max(g, theta),
                    &format!("gaded_max, {ctx}"),
                );
            }
        }
    }
}
