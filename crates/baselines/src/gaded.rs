//! GADED-Rand and GADED-Max: greedy edge deletion against link disclosure.

use crate::disclosure::LinkDisclosure;
use lopacity::AnonymizationOutcome;
use lopacity_graph::{Edge, Graph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// **GADED-Rand**: while some degree-pair type disclosres above θ, remove a
/// uniformly random edge among the edges participating in a violating type.
pub fn gaded_rand(graph: &Graph, theta: f64, seed: u64) -> AnonymizationOutcome {
    let mut g = graph.clone();
    let mut ld = LinkDisclosure::new(&g);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut removed = Vec::new();
    let mut steps = 0usize;
    let mut trials = 0u64;
    while !ld.max_disclosure().satisfies(theta) {
        let violating: Vec<Edge> = g.edges().filter(|&e| ld.edge_violates(e, theta)).collect();
        trials += violating.len() as u64;
        let Some(&pick) = violating.get(rng.random_range(0..violating.len().max(1)))
        else {
            break; // no participating edge left (cannot happen at L = 1)
        };
        g.remove_edge(pick.u(), pick.v());
        ld.commit_remove(pick);
        removed.push(pick);
        steps += 1;
    }
    let final_a = ld.max_disclosure();
    AnonymizationOutcome {
        graph: g,
        removed,
        inserted: Vec::new(),
        steps,
        trials,
        final_lo: final_a.as_f64(),
        final_n_at_max: final_a.n_at_max(),
        achieved: final_a.satisfies(theta),
        fork_clones: 0,
    }
}

/// **GADED-Max**: while some type discloses above θ, remove the edge whose
/// removal yields the smallest maximum disclosure, tie-broken by the
/// smallest total disclosure (Zhang & Zhang's "maximum reduction of the
/// maximum link disclosure and minimum increase of the total link
/// disclosures").
pub fn gaded_max(graph: &Graph, theta: f64) -> AnonymizationOutcome {
    let mut g = graph.clone();
    let mut ld = LinkDisclosure::new(&g);
    let mut removed = Vec::new();
    let mut steps = 0usize;
    let mut trials = 0u64;
    while !ld.max_disclosure().satisfies(theta) && g.num_edges() > 0 {
        let mut best: Option<(Edge, lopacity::LoAssessment, f64)> = None;
        for e in g.edges() {
            let (max, total) = ld.after_remove(e);
            trials += 1;
            let better = match &best {
                None => true,
                Some((_, bmax, btotal)) => {
                    match max.cmp_value(bmax) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => total < *btotal - 1e-12,
                    }
                }
            };
            if better {
                best = Some((e, max, total));
            }
        }
        let Some((pick, _, _)) = best else { break };
        g.remove_edge(pick.u(), pick.v());
        ld.commit_remove(pick);
        removed.push(pick);
        steps += 1;
    }
    let final_a = ld.max_disclosure();
    AnonymizationOutcome {
        graph: g,
        removed,
        inserted: Vec::new(),
        steps,
        trials,
        final_lo: final_a.as_f64(),
        final_n_at_max: final_a.n_at_max(),
        achieved: final_a.satisfies(theta),
        fork_clones: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopacity::opacity::opacity_report_against_original;
    use lopacity::TypeSpec;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn gaded_rand_achieves_theta() {
        let g = paper_graph();
        let out = gaded_rand(&g, 0.5, 42);
        assert!(out.achieved, "{out}");
        let report = opacity_report_against_original(&g, &out.graph, &TypeSpec::DegreePairs, 1);
        assert!(report.max_lo.satisfies(0.5));
        assert!(out.inserted.is_empty());
    }

    #[test]
    fn gaded_max_achieves_theta_with_fewer_or_equal_removals() {
        let g = paper_graph();
        let rand_out = gaded_rand(&g, 0.5, 1);
        let max_out = gaded_max(&g, 0.5);
        assert!(max_out.achieved);
        // Informed deletion should not need more removals than random on
        // this instance (regression guard, not a theorem).
        assert!(max_out.removed.len() <= rand_out.removed.len() + 1);
    }

    #[test]
    fn gaded_max_is_deterministic() {
        let g = paper_graph();
        let a = gaded_max(&g, 0.4);
        let b = gaded_max(&g, 0.4);
        assert_eq!(a.removed, b.removed);
    }

    #[test]
    fn theta_one_is_noop() {
        let g = paper_graph();
        let out = gaded_rand(&g, 1.0, 0);
        assert!(out.achieved);
        assert_eq!(out.steps, 0);
        let out = gaded_max(&g, 1.0);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn theta_zero_removes_all_typed_edges() {
        let g = paper_graph();
        let out = gaded_max(&g, 0.0);
        assert!(out.achieved);
        assert_eq!(out.graph.num_edges(), 0);
    }

    #[test]
    fn gaded_rand_deterministic_per_seed() {
        let g = paper_graph();
        assert_eq!(gaded_rand(&g, 0.4, 9).removed, gaded_rand(&g, 0.4, 9).removed);
    }
}
