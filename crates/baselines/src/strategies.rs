//! The baselines as session [`Strategy`] values.
//!
//! The free functions ([`crate::gaded_rand`], [`crate::gaded_max`],
//! [`crate::gades()`]) historically bypassed the [`Anonymizer`] session
//! surface entirely — their own graph clone, their own counters, their own
//! outcome assembly. That made them unusable anywhere the session is the
//! entry point: sweeps, progress observers, and (the reason this module
//! exists) churn repair, where `ChurnSession::repair` accepts any
//! [`Strategy`] and re-runs it over the *live* evaluator state.
//!
//! Each wrapper runs the **verbatim** decision procedure of its free
//! function — same candidate enumeration order, same RNG call sequence,
//! same tie-breaking epsilons — while routing every commit through
//! [`RunContext::commit`], so edit lists, trial clocks, step counts, and
//! the final graph are bit-for-bit those of the legacy path (pinned by the
//! regression tests in [`crate::gaded`] / [`mod@crate::gades`]). The free
//! functions are now thin `run_once` wrappers over these types.
//!
//! The disclosure mirror is rebuilt at `execute` time from the evaluator's
//! **frozen** type system ([`LinkDisclosure::with_types`]): on a pristine
//! session that equals the legacy behaviour exactly (the types were frozen
//! from the same graph), and under churn it keeps the baseline answering
//! the session's privacy question instead of silently re-freezing types
//! from mutated degrees.
//!
//! All three baselines model single-edge linkage, so they assert
//! `config.l == 1` — running them at higher L would report disclosure
//! numbers that do not bound the evaluator's L-ball opacity.

use crate::disclosure::LinkDisclosure;
use crate::gades::{first_improving_swap, Swap, DEFAULT_SWAP_BUDGET};
use lopacity::{Anonymizer, MoveKind, RunContext, Strategy};
use lopacity_graph::Edge;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds the disclosure mirror for a baseline run and checks the L = 1
/// contract.
fn mirror(ctx: &RunContext<'_>, name: &str) -> LinkDisclosure {
    assert_eq!(
        ctx.config().l,
        1,
        "{name} models single-edge link disclosure and is only defined at L = 1"
    );
    LinkDisclosure::with_types(ctx.evaluator().types().clone(), ctx.evaluator().graph())
}

/// [`crate::gaded_rand`] as a [`Strategy`]: while some type disclosures
/// above θ, remove a uniformly random edge among those participating in a
/// violating type. The RNG is seeded from `config.seed`, exactly as the
/// free function seeds from its `seed` argument.
#[derive(Debug, Clone, Copy, Default)]
pub struct GadedRand;

impl Strategy for GadedRand {
    fn name(&self) -> &'static str {
        "gaded-rand"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        let mut ld = mirror(ctx, "GADED-Rand");
        let theta = ctx.config().theta;
        let mut rng = StdRng::seed_from_u64(ctx.config().seed);
        while !ld.max_disclosure().satisfies(theta) {
            let violating: Vec<Edge> = ctx
                .evaluator()
                .graph()
                .edges()
                .filter(|&e| ld.edge_violates(e, theta))
                .collect();
            ctx.add_trials(violating.len() as u64);
            let Some(&pick) = violating.get(rng.random_range(0..violating.len().max(1)))
            else {
                break; // no participating edge left (cannot happen at L = 1)
            };
            ld.commit_remove(pick);
            ctx.commit(MoveKind::Remove, &[pick]);
            ctx.step_committed();
        }
    }
}

/// [`crate::gaded_max`] as a [`Strategy`]: remove the edge with the
/// maximum reduction of the maximum disclosure, tie-broken by the minimum
/// total disclosure.
#[derive(Debug, Clone, Copy, Default)]
pub struct GadedMax;

impl Strategy for GadedMax {
    fn name(&self) -> &'static str {
        "gaded-max"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        let mut ld = mirror(ctx, "GADED-Max");
        let theta = ctx.config().theta;
        while !ld.max_disclosure().satisfies(theta) && ctx.evaluator().graph().num_edges() > 0
        {
            let mut best: Option<(Edge, lopacity::LoAssessment, f64)> = None;
            let mut scanned = 0u64;
            for e in ctx.evaluator().graph().edges() {
                let (max, total) = ld.after_remove(e);
                scanned += 1;
                let better = match &best {
                    None => true,
                    Some((_, bmax, btotal)) => match max.cmp_value(bmax) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => total < *btotal - 1e-12,
                    },
                };
                if better {
                    best = Some((e, max, total));
                }
            }
            ctx.add_trials(scanned);
            let Some((pick, _, _)) = best else { break };
            ld.commit_remove(pick);
            ctx.commit(MoveKind::Remove, &[pick]);
            ctx.step_committed();
        }
    }
}

/// [`crate::gades()`] as a [`Strategy`]: degree-preserving edge swaps that
/// strictly reduce the maximum disclosure, bounded by a swap-evaluation
/// budget. Swapping an earlier swap back in cancels in the edit lists
/// (that is [`RunContext::commit`]'s bookkeeping rule, which mirrors the
/// free function's `record_edit`).
#[derive(Debug, Clone, Copy)]
pub struct Gades {
    /// Cap on swap-candidate evaluations for this run; see
    /// [`DEFAULT_SWAP_BUDGET`].
    pub budget: u64,
}

impl Default for Gades {
    fn default() -> Self {
        Gades { budget: DEFAULT_SWAP_BUDGET }
    }
}

impl Strategy for Gades {
    fn name(&self) -> &'static str {
        "gades"
    }

    fn execute(&mut self, ctx: &mut RunContext<'_>) {
        let mut ld = mirror(ctx, "GADES");
        let theta = ctx.config().theta;
        // The free function's budget counts this run's own evaluations;
        // mirror with a local clock and stream it into the session's.
        let mut trials = 0u64;
        let mut synced = 0u64;
        loop {
            let current = ld.max_disclosure();
            if current.satisfies(theta) {
                break;
            }
            if trials >= self.budget {
                break; // budget exhausted: report failure honestly
            }
            let found = first_improving_swap(
                ctx.evaluator().graph(),
                &ld,
                &current,
                &mut trials,
                self.budget,
            );
            ctx.add_trials(trials - synced);
            synced = trials;
            let Some(Swap { out1, out2, in1, in2 }) = found else {
                break; // stuck: no degree-preserving improvement exists
            };
            ld.commit_remove(out1);
            ld.commit_remove(out2);
            ld.commit_insert(in1);
            ld.commit_insert(in2);
            ctx.commit(MoveKind::Remove, &[out1, out2]);
            ctx.commit(MoveKind::Insert, &[in1, in2]);
            ctx.step_committed();
        }
    }
}

/// Shared shape of the legacy free functions: a one-shot session at L = 1
/// over degree-pair types.
pub(crate) fn run_once_at_l1<S: Strategy>(
    graph: &lopacity_graph::Graph,
    theta: f64,
    seed: u64,
    strategy: S,
) -> lopacity::AnonymizationOutcome {
    let spec = lopacity::TypeSpec::DegreePairs;
    Anonymizer::new(graph, &spec)
        .config(lopacity::AnonymizeConfig::new(1, theta).with_seed(seed))
        .run_once(strategy)
}
