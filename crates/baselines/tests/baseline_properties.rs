//! Property tests: the Zhang & Zhang heuristics honour their contracts on
//! random graphs.

use lopacity_baselines::{gaded_max, gaded_rand, gades, LinkDisclosure};
use lopacity_graph::Graph;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4..=max_n).prop_flat_map(|n| {
        let pair = (0..n as u32, 0..n as u32);
        proptest::collection::vec(pair, 0..n * 2).prop_map(move |pairs| {
            let mut g = Graph::new(n);
            for (a, b) in pairs {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gaded_rand_always_achieves_and_only_removes(
        g in arb_graph(14),
        theta in 0.2f64..0.9,
        seed in any::<u64>()
    ) {
        let out = gaded_rand(&g, theta, seed);
        // Pure deletion can always fall to the empty graph, so it must
        // terminate with the threshold met.
        prop_assert!(out.achieved);
        prop_assert!(out.inserted.is_empty());
        let ld = LinkDisclosure::new(&g);
        let _ = ld; // types frozen from original degrees
        let cert = lopacity::opacity::opacity_report_against_original(
            &g, &out.graph, &lopacity::TypeSpec::DegreePairs, 1);
        prop_assert!(cert.max_lo.satisfies(theta));
    }

    #[test]
    fn gaded_max_achieves_deterministically(g in arb_graph(14), theta in 0.3f64..0.9) {
        // (Greedy max-reduction does NOT always need fewer removals than a
        // lucky random order — proptest found counterexamples — so the only
        // honest contracts are: achievement, pure deletion, determinism.)
        let a = gaded_max(&g, theta);
        let b = gaded_max(&g, theta);
        prop_assert!(a.achieved);
        prop_assert!(a.inserted.is_empty());
        prop_assert!(a.removed.len() <= g.num_edges());
        prop_assert_eq!(a.removed, b.removed);
        let cert = lopacity::opacity::opacity_report_against_original(
            &g, &a.graph, &lopacity::TypeSpec::DegreePairs, 1);
        prop_assert!(cert.max_lo.satisfies(theta));
    }

    #[test]
    fn gades_preserves_every_degree(g in arb_graph(12), theta in 0.2f64..0.9) {
        let out = gades(&g, theta);
        prop_assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        prop_assert!(out.graph.check_invariants().is_ok());
        // Honest reporting: achieved iff the final disclosure satisfies θ.
        let ld = LinkDisclosure::new(&out.graph);
        let _ = ld;
        let cert = lopacity::opacity::opacity_report_against_original(
            &g, &out.graph, &lopacity::TypeSpec::DegreePairs, 1);
        prop_assert_eq!(out.achieved, cert.max_lo.satisfies(theta));
    }

    #[test]
    fn gades_edit_lists_replay(g in arb_graph(12), theta in 0.3f64..0.9) {
        let out = gades(&g, theta);
        let mut replay = g.clone();
        for e in &out.removed {
            prop_assert!(replay.remove_edge(e.u(), e.v()));
        }
        for e in &out.inserted {
            prop_assert!(replay.add_edge(e.u(), e.v()));
        }
        prop_assert_eq!(replay, out.graph);
    }

    #[test]
    fn disclosure_deltas_match_commits(g in arb_graph(12)) {
        prop_assume!(g.num_edges() > 0);
        let mut ld = LinkDisclosure::new(&g);
        for e in g.edge_vec() {
            let (predicted, _) = ld.after_remove(e);
            ld.commit_remove(e);
            prop_assert_eq!(ld.max_disclosure().ratio(), predicted.ratio());
            ld.commit_insert(e);
        }
    }
}
