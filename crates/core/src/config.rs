//! Anonymization tuning knobs.

use lopacity_apsp::{ApspEngine, StoreBackend};
use lopacity_util::Parallelism;

/// How the look-ahead explores multi-edge moves (Section 5's description is
/// ambiguous between these two readings; both are provided and ablated in
/// the benchmark suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookaheadMode {
    /// Try single-edge moves first; escalate to combinations of size `s + 1`
    /// only when no size-`<= s` move strictly improves `(maxLO, N)` — the
    /// reading of Section 5's opening ("if there is no beneficial move
    /// involving one edge..."). Default.
    #[default]
    Escalating,
    /// Evaluate *all* combinations of size `1..=la` every step and pick the
    /// overall best — the reading of Section 5.2 ("delay this random
    /// decision until after checking all the possible combinations").
    /// Exponentially more expensive; faithful to the runtime blow-up the
    /// paper reports for `la = 2`.
    Exhaustive,
}

/// Parameters of Algorithms 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnonymizeConfig {
    /// Path-length threshold L (`>= 1`).
    pub l: u8,
    /// Confidence threshold θ in `[0, 1]`; the run stops when
    /// `maxLO <= θ`.
    pub theta: f64,
    /// Look-ahead `la`: maximum number of edges considered jointly per
    /// greedy step (`>= 1`).
    pub lookahead: usize,
    /// How the look-ahead space is explored.
    pub lookahead_mode: LookaheadMode,
    /// Beam width for multi-edge look-ahead: combinations of size `>= 2`
    /// draw their edges only from the `beam` best single-edge candidates of
    /// the current step. `None` (default, paper-faithful) searches all
    /// `O(|E|^la)` combinations — the paper pays ~90,000-second runs for
    /// that at la = 2; a beam of 32–128 keeps the "look-ahead rescues
    /// Rem-Ins" effect at a tiny fraction of the cost.
    pub lookahead_beam: Option<usize>,
    /// Seed for the reservoir tie-breaker (Algorithm 4, lines 14–18).
    pub seed: u64,
    /// Safety valve: stop after this many greedy steps (`None` = run to
    /// candidate exhaustion, as the paper's pseudo-code does).
    pub max_steps: Option<usize>,
    /// Safety valve: stop after this many candidate evaluations (`None` =
    /// unbounded). Look-ahead `la >= 2` on an infeasible instance otherwise
    /// enumerates `O(|E|^la)` combinations per step — the paper reports
    /// ~90,000-second runs for Rem-Ins la=2 at 1000 vertices; this knob
    /// bounds such runs, which end `achieved: false` either way.
    pub max_trials: Option<u64>,
    /// Edit budget: stop once this many *net* edge edits (removals +
    /// insertions, after cancellation) have been committed (`None` =
    /// unbounded). This is the matched-budget knob of the cross-model
    /// comparison harness: every privacy model is granted the same number
    /// of edits, so utility differences are attributable to the model, not
    /// to how much it was allowed to change the graph. Checked at the same
    /// step boundaries as `max_steps`, so the final step may overshoot by
    /// at most one step's worth of edits minus one (`phases * la - 1`,
    /// e.g. `2*la - 1` for removal/insertion).
    pub max_edits: Option<usize>,
    /// Engine for the initial all-pairs computation.
    pub engine: ApspEngine,
    /// Worker threads for the single-edge candidate scan (the hot loop of
    /// both heuristics) **and** for the initial truncated-BFS APSP build.
    /// Both parallel paths are bit-for-bit equivalent to their sequential
    /// counterparts — same argmin, same seeded tie-breaking, same RNG
    /// evolution, same distance matrix — for every worker count
    /// (property-tested in `tests/tests/parallel_equivalence.rs` and
    /// `crates/apsp/tests/packed_matrix.rs`), so this knob only trades
    /// wall-clock for cores. `Auto` (default) falls back to sequential
    /// scans/builds on small inputs; `Fixed(n)` always shards. Scan
    /// workers trial against persistent evaluator forks cloned once per
    /// run (see `AnonymizationOutcome::fork_clones`), not per step.
    pub parallelism: Parallelism,
    /// Distance-store representation for the evaluator build: the packed
    /// dense matrix, the sparse within-L CSR store, or an adaptive choice
    /// from `|V|` and the sampled within-L density (default). Never
    /// affects results — sparse- and dense-backed runs are bit-for-bit
    /// equivalent (property-tested) — only memory footprint (`Θ(|V|²)` vs
    /// `O(Σ |ball_L|)`) and per-trial scan cost (`O(|V|)` vs `O(ball)`
    /// per affected source).
    pub store: StoreBackend,
}

impl AnonymizeConfig {
    /// Configuration with the paper's defaults: `la = 1`, escalating
    /// look-ahead, deterministic seed.
    pub fn new(l: u8, theta: f64) -> Self {
        assert!(l >= 1, "L must be at least 1");
        assert!((0.0..=1.0).contains(&theta), "theta = {theta} out of [0, 1]");
        AnonymizeConfig {
            l,
            theta,
            lookahead: 1,
            lookahead_mode: LookaheadMode::default(),
            lookahead_beam: None,
            seed: DEFAULT_SEED,
            max_steps: None,
            max_trials: None,
            max_edits: None,
            engine: ApspEngine::default(),
            parallelism: Parallelism::default(),
            store: StoreBackend::default(),
        }
    }

    /// Sets the look-ahead depth `la`.
    pub fn with_lookahead(mut self, la: usize) -> Self {
        assert!(la >= 1, "look-ahead must be at least 1");
        self.lookahead = la;
        self
    }

    /// Sets the look-ahead exploration mode.
    pub fn with_mode(mut self, mode: LookaheadMode) -> Self {
        self.lookahead_mode = mode;
        self
    }

    /// Sets the multi-edge look-ahead beam width.
    pub fn with_beam(mut self, beam: usize) -> Self {
        assert!(beam >= 2, "a beam below 2 cannot form a pair");
        self.lookahead_beam = Some(beam);
        self
    }

    /// Sets the tie-breaking seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Sets the candidate-evaluation budget.
    pub fn with_max_trials(mut self, trials: u64) -> Self {
        self.max_trials = Some(trials);
        self
    }

    /// Sets the edge-edit budget (matched-budget model comparisons).
    pub fn with_max_edits(mut self, edits: usize) -> Self {
        self.max_edits = Some(edits);
        self
    }

    /// Sets the initial APSP engine.
    pub fn with_engine(mut self, engine: ApspEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the candidate-scan parallelism.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the distance-store backend.
    pub fn with_store(mut self, store: StoreBackend) -> Self {
        self.store = store;
        self
    }
}

/// Default tie-breaking seed ("lopacity" leet-speak). Any fixed value works;
/// having one makes unseeded runs reproducible.
pub const DEFAULT_SEED: u64 = 0x10_7AC1_7EED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AnonymizeConfig::new(2, 0.5);
        assert_eq!(c.l, 2);
        assert_eq!(c.theta, 0.5);
        assert_eq!(c.lookahead, 1);
        assert_eq!(c.lookahead_mode, LookaheadMode::Escalating);
        assert_eq!(c.max_steps, None);
        assert_eq!(c.parallelism, Parallelism::Auto);
    }

    #[test]
    fn store_knob_round_trips() {
        let c = AnonymizeConfig::new(1, 0.5);
        assert_eq!(c.store, StoreBackend::Auto, "adaptive selection is the default");
        let c = c.with_store(StoreBackend::Sparse);
        assert_eq!(c.store, StoreBackend::Sparse);
        let c = c.with_store(StoreBackend::Dense);
        assert_eq!(c.store, StoreBackend::Dense);
    }

    #[test]
    fn parallelism_knob_round_trips() {
        let c = AnonymizeConfig::new(1, 0.5).with_parallelism(Parallelism::Fixed(4));
        assert_eq!(c.parallelism, Parallelism::Fixed(4));
        assert_eq!(c.parallelism.workers(), 4);
        let c = c.with_parallelism(Parallelism::Off);
        assert_eq!(c.parallelism.workers(), 1);
    }

    #[test]
    fn builder_chain() {
        let c = AnonymizeConfig::new(1, 0.3)
            .with_lookahead(2)
            .with_mode(LookaheadMode::Exhaustive)
            .with_seed(7)
            .with_max_steps(100)
            .with_max_edits(40);
        assert_eq!(c.lookahead, 2);
        assert_eq!(c.lookahead_mode, LookaheadMode::Exhaustive);
        assert_eq!(c.seed, 7);
        assert_eq!(c.max_steps, Some(100));
        assert_eq!(c.max_edits, Some(40));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        AnonymizeConfig::new(1, 1.5);
    }

    #[test]
    #[should_panic(expected = "L must be")]
    fn rejects_l_zero() {
        AnonymizeConfig::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "look-ahead")]
    fn rejects_la_zero() {
        AnonymizeConfig::new(1, 0.5).with_lookahead(0);
    }
}
