//! Incremental opacity evaluation with trial / apply / undo.
//!
//! The greedy heuristics (Algorithms 4 and 5) evaluate `LO(G')` for *every*
//! candidate edge at *every* step — the dominant cost in the paper's
//! `O(|E|^2 |V|^3)` worst case. Recomputing all-pairs distances per trial is
//! wasteful: removing edge `(u, v)` can only lengthen pairs whose shortest
//! `≤ L` path crosses that edge, and any such path reaches `u` or `v` within
//! `L − 1` hops from its source. The evaluator therefore:
//!
//! 1. maintains the truncated distance store and the per-type within-L
//!    counts of the *current* graph;
//! 2. for a **trial**, re-runs a depth-L BFS only from the affected sources
//!    `S = { i : min(d(i,u), d(i,v)) ≤ L−1 }` (old distances for removal,
//!    new for insertion) and diffs each source's stored within-L row —
//!    counts change only when a pair crosses the `≤ L` boundary;
//! 3. for an **apply**, additionally writes the changed cells and returns an
//!    [`UndoToken`] so look-ahead combinations roll back in O(changes).
//!
//! Distances live behind a [`DistStore`] — the packed dense matrix or the
//! sparse within-L CSR store, chosen at build time. Every hot loop above is
//! **output-sensitive** against that interface: sources, balls, and
//! per-source diffs are enumerated from the store's finite rows, so with
//! the sparse backend a trial costs `O(Σ_{i ∈ S} |ball_L(i)|)` instead of
//! `O(|S| · |V|)`. All mutation journaling ([`UndoToken`],
//! [`CommitDelta`]) addresses cells as representation-independent `(i, j)`
//! pairs, so deltas captured on one backend replay exactly on the other.
//!
//! `L = 1` short-circuits entirely: a single edge flip changes exactly one
//! pair. Equivalence with full recomputation is property-tested
//! (`tests/evaluator_equivalence.rs`).

use crate::lo::LoAssessment;
use crate::types::{TypeSpec, TypeSystem};
use lopacity_apsp::{ApspEngine, DistStore, DistanceMatrix, StoreBackend, TruncatedBfs, INF};
use lopacity_graph::{Edge, Graph, VertexId};
use lopacity_util::{pool, Parallelism};

/// Fewest affected sources for which [`Parallelism::Auto`] shards the
/// per-commit row recomputation inside [`OpacityEvaluator::apply_remove`],
/// and only for the **dense** backend: a dense source row costs `O(|V|)`
/// to diff, so a hundred-source commit on an ACM-scale graph is
/// milliseconds of recompute that a handful of scoped threads genuinely
/// split. Sparse rows are ball-bounded — microseconds each — so `Auto`
/// never shards them (thread spawns would dominate); `Fixed` still forces
/// sharding on both backends, which the equivalence suites rely on.
const APPLY_AUTO_MIN_SOURCES: usize = 128;

/// Worker count for the per-commit BFS/diff loop over `sources` affected
/// sources. The sharded loop is bit-for-bit the sequential one (each
/// changed cell is found by exactly one source, shards are contiguous and
/// merged in source order), so the decision only trades wall-clock.
pub(crate) fn apply_workers(parallelism: Parallelism, sources: usize, dense: bool) -> usize {
    if parallelism.is_adaptive() && (!dense || sources < APPLY_AUTO_MIN_SOURCES) {
        return 1;
    }
    parallelism.workers().min(sources.max(1))
}

/// Incremental `maxLO` evaluator over a mutable working graph.
///
/// `Clone` is a first-class operation: the parallel candidate scan forks
/// one evaluator per worker (graph, [`DistStore`], within-L counters,
/// scratch) and trials candidates against the forks — trials never mutate
/// lasting state. Cost: `O(|V|²)` for the dense store (half that when
/// nibble-packed) or `O(Σ |ball|)` for the sparse one, which is why forks
/// are **persistent**: they are cloned once at the first sharded scan of a
/// run and then kept state-identical by replaying each committed move's
/// [`CommitDelta`] ([`OpacityEvaluator::replay_commit`], O(changed cells))
/// instead of being re-cloned every step.
#[derive(Clone)]
pub struct OpacityEvaluator {
    graph: Graph,
    types: TypeSystem,
    l: u8,
    dist: DistStore,
    counts: Vec<u64>,
    revision: u64,
    /// Unordered pairs currently within L (all pairs, typed or not) —
    /// maintained incrementally so the ball-bounded cost estimate behind
    /// the scan's `Auto` heuristic never scans the store.
    live_pairs: usize,
    /// Parallelism budget for the per-commit row recomputation.
    parallelism: Parallelism,
    // Scratch (allocated once):
    bfs: TruncatedBfs,
    in_sources: Vec<bool>,
    sources: Vec<VertexId>,
    counts_scratch: Vec<u64>,
    /// Per-commit change buffer: `(i, j, old, new)` per changed cell.
    changes: Vec<(VertexId, VertexId, u8, u8)>,
    /// Insertion scratch: `(vertex, dist to near endpoint, dist to far
    /// endpoint)` snapshots of the `L-1` balls around the inserted edge's
    /// endpoints, plus membership marks for pair deduplication.
    ball_a: Vec<(VertexId, u8, u8)>,
    ball_b: Vec<(VertexId, u8, u8)>,
    in_ball_a: Vec<bool>,
    in_ball_b: Vec<bool>,
    /// Row snapshots for ball collection: `du[x] = d(x, u)`, `dv[x] =
    /// d(x, v)` (INF-initialized, reset via the touched lists).
    du: Vec<u8>,
    dv: Vec<u8>,
    du_touched: Vec<VertexId>,
    dv_touched: Vec<VertexId>,
    /// Cached two largest distinct opacity values with multiplicities;
    /// rebuilt lazily after any committed change. Lets a single-type-delta
    /// trial (the whole candidate scan at `L = 1`) run in O(1) instead of
    /// O(#types).
    top_two: Option<TopTwo>,
}

/// The two largest distinct per-type opacity values and their
/// multiplicities.
#[derive(Debug, Clone, Copy)]
struct TopTwo {
    first: Ratio,
    n_first: usize,
    second: Option<(Ratio, usize)>,
}

/// An exact non-negative rational with positive denominator.
#[derive(Debug, Clone, Copy)]
struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    fn cmp(self, other: Ratio) -> std::cmp::Ordering {
        (self.num as u128 * other.den as u128).cmp(&(other.num as u128 * self.den as u128))
    }
}

impl TopTwo {
    fn scan(counts: &[u64], denoms: &[u64]) -> TopTwo {
        let mut top = TopTwo { first: Ratio { num: 0, den: 1 }, n_first: 0, second: None };
        for (&c, &d) in counts.iter().zip(denoms) {
            if d == 0 {
                continue;
            }
            top.offer(Ratio { num: c, den: d });
        }
        top
    }

    fn offer(&mut self, r: Ratio) {
        use std::cmp::Ordering::*;
        if self.n_first == 0 {
            self.first = r;
            self.n_first = 1;
            return;
        }
        match r.cmp(self.first) {
            Greater => {
                self.second = Some((self.first, self.n_first));
                self.first = r;
                self.n_first = 1;
            }
            Equal => self.n_first += 1,
            Less => match &mut self.second {
                None => self.second = Some((r, 1)),
                Some((s, n)) => match r.cmp(*s) {
                    Greater => {
                        *s = r;
                        *n = 1;
                    }
                    Equal => *n += 1,
                    Less => {}
                },
            },
        }
    }
}

/// Which mutation an [`UndoToken`] reverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Removed(Edge),
    Inserted(Edge),
}

/// Proof of an applied mutation; feed back to [`OpacityEvaluator::undo`] in
/// LIFO order to roll back.
pub struct UndoToken {
    op: Op,
    /// `(i, j, previous truncated distance)` per changed cell, `i < j` —
    /// representation-independent addressing, identical whichever
    /// [`DistStore`] backend recorded it.
    dist_changes: Vec<(VertexId, VertexId, u8)>,
    /// `(type id, delta applied to counts)`.
    count_changes: Vec<(u32, i64)>,
    /// Evaluator revision right after this apply (LIFO check).
    revision: u64,
}

/// The **forward** net effect of one committed mutation: the edge flip,
/// the distance cells it changed (with their *new* values), and the
/// per-type count deltas.
///
/// This is the replay-sync half of the persistent-fork protocol: a worker
/// fork that was state-identical to the main evaluator before an apply can
/// be brought back in sync by [`OpacityEvaluator::replay_commit`] in
/// O(changed cells) — a pure memory patch, no BFS, no `O(|V|²)` copy.
/// Cells are addressed as `(i, j)` pairs, never as layout offsets, so a
/// delta captured from a dense-backed evaluator replays exactly on a
/// sparse-backed one (and vice versa). Captured from the apply's
/// [`UndoToken`] (which records the same cells backward) via
/// [`OpacityEvaluator::commit_delta`].
#[derive(Debug, Clone)]
pub struct CommitDelta {
    op: Op,
    /// `(i, j, new truncated distance)` per changed cell, `i < j`.
    dist_changes: Vec<(VertexId, VertexId, u8)>,
    /// `(type id, delta to apply to counts)`.
    count_changes: Vec<(u32, i64)>,
}

impl CommitDelta {
    /// Number of distance cells this commit changed.
    pub fn changed_cells(&self) -> usize {
        self.dist_changes.len()
    }
}

/// A run of consecutive [`CommitDelta`]s coalesced into one replayable
/// patch: the edge flips in order, but each distance cell and each type
/// count exactly **once**, at its final value / net delta. This is the
/// batch-level coalescing named in the churn roadmap — a churn batch that
/// touches the same neighborhood `k` times costs every fork one cell write
/// instead of `k`.
///
/// Replaying an absorbed batch ([`OpacityEvaluator::replay_batch`]) leaves
/// an in-sync fork in exactly the state that replaying each source delta
/// in order would have — same graph, distances, counts, live-pair counter,
/// and revision — because cell writes are last-wins, count deltas are
/// additive, and within-L membership is binary (only the initial-vs-final
/// value of a cell decides the live-pair transition, not the path between
/// them).
#[derive(Debug, Clone, Default)]
pub struct BatchDelta {
    ops: Vec<Op>,
    /// `(i, j, final truncated distance)`, first-touch order, one entry
    /// per distinct cell.
    dist_changes: Vec<(VertexId, VertexId, u8)>,
    /// Position of each cell in `dist_changes` (last-wins updates).
    index: std::collections::HashMap<(VertexId, VertexId), usize>,
    /// `(type id, net delta)`, one entry per distinct type.
    count_changes: Vec<(u32, i64)>,
    count_index: std::collections::HashMap<u32, usize>,
}

impl BatchDelta {
    /// An empty batch (replays as a no-op).
    pub fn new() -> Self {
        BatchDelta::default()
    }

    /// Folds one more committed delta into the batch. Deltas must be
    /// absorbed in the order they were applied to the source evaluator.
    pub fn absorb(&mut self, delta: &CommitDelta) {
        self.ops.push(delta.op);
        for &(i, j, new) in &delta.dist_changes {
            match self.index.entry((i, j)) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    self.dist_changes[*slot.get()].2 = new;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(self.dist_changes.len());
                    self.dist_changes.push((i, j, new));
                }
            }
        }
        for &(t, d) in &delta.count_changes {
            match self.count_index.entry(t) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    self.count_changes[*slot.get()].1 += d;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(self.count_changes.len());
                    self.count_changes.push((t, d));
                }
            }
        }
    }

    /// Number of deltas absorbed so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no delta has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Distinct distance cells the batch touches (≤ the sum over its
    /// source deltas — the coalescing win).
    pub fn distinct_cells(&self) -> usize {
        self.dist_changes.len()
    }

    /// Empties the batch for reuse, keeping its allocations.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.dist_changes.clear();
        self.index.clear();
        self.count_changes.clear();
        self.count_index.clear();
    }
}

impl OpacityEvaluator {
    /// Builds the evaluator: one full truncated APSP plus the per-type
    /// counts. The type system is frozen from `graph`'s current degrees.
    ///
    /// # Panics
    /// Panics when `l == 0` (no linkage shorter than one edge exists) or
    /// `l > MAX_L`.
    pub fn new(graph: Graph, spec: &TypeSpec, l: u8) -> Self {
        Self::with_engine(graph, spec, l, ApspEngine::default())
    }

    /// Like [`OpacityEvaluator::new`] with an explicit initial APSP engine.
    pub fn with_engine(graph: Graph, spec: &TypeSpec, l: u8, engine: ApspEngine) -> Self {
        Self::with_engine_parallel(graph, spec, l, engine, Parallelism::Off)
    }

    /// Like [`OpacityEvaluator::with_engine`], additionally sharding the
    /// initial APSP build over up to `parallelism` scoped threads (only the
    /// default truncated-BFS engine parallelizes; the build output is
    /// identical for every setting, see [`ApspEngine::compute_with`]).
    /// The distance representation is chosen adaptively
    /// ([`StoreBackend::Auto`]).
    pub fn with_engine_parallel(
        graph: Graph,
        spec: &TypeSpec,
        l: u8,
        engine: ApspEngine,
        parallelism: Parallelism,
    ) -> Self {
        Self::with_options(graph, spec, l, engine, parallelism, StoreBackend::Auto)
    }

    /// The fully explicit constructor: engine, build/commit parallelism,
    /// and distance-store backend. `backend` never affects results — a
    /// sparse-backed evaluator is bit-for-bit equivalent to a dense-backed
    /// one (property-tested) — only memory footprint and per-trial cost.
    pub fn with_options(
        graph: Graph,
        spec: &TypeSpec,
        l: u8,
        engine: ApspEngine,
        parallelism: Parallelism,
        backend: StoreBackend,
    ) -> Self {
        let types = TypeSystem::build(&graph, spec);
        Self::with_type_system(graph, types, l, engine, parallelism, backend)
    }

    /// Like [`OpacityEvaluator::with_options`] but adopting a pre-resolved
    /// [`TypeSystem`] instead of freezing one from `graph`'s current
    /// degrees. This is the fresh-build **oracle** constructor of the churn
    /// equivalence contract: a [`crate::churn::ChurnSession`] freezes its
    /// types once at session start, so a from-scratch rebuild over the
    /// *mutated* graph must count pairs under those same frozen types —
    /// re-freezing from mutated degrees would compare different privacy
    /// questions, not different code paths.
    pub fn with_type_system(
        graph: Graph,
        types: TypeSystem,
        l: u8,
        engine: ApspEngine,
        parallelism: Parallelism,
        backend: StoreBackend,
    ) -> Self {
        assert!(l >= 1, "L must be at least 1");
        let dist = engine.compute_store(&graph, l, parallelism, backend);
        let counts = crate::opacity::count_within_l_store(&dist, &types);
        let live_pairs = dist.live_pairs();
        let n = graph.num_vertices();
        OpacityEvaluator {
            graph,
            l,
            dist,
            revision: 0,
            live_pairs,
            parallelism,
            bfs: TruncatedBfs::new(n),
            in_sources: vec![false; n],
            sources: Vec::new(),
            counts_scratch: counts.clone(),
            changes: Vec::new(),
            ball_a: Vec::new(),
            ball_b: Vec::new(),
            in_ball_a: vec![false; n],
            in_ball_b: vec![false; n],
            du: vec![INF; n],
            dv: vec![INF; n],
            du_touched: Vec::new(),
            dv_touched: Vec::new(),
            counts,
            types,
            top_two: None,
        }
    }

    /// The current working graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The frozen type system.
    pub fn types(&self) -> &TypeSystem {
        &self.types
    }

    /// The length threshold L.
    pub fn l(&self) -> u8 {
        self.l
    }

    /// The distance store backing this evaluator (backend, footprint, and
    /// density introspection for benches and the scan heuristics).
    pub fn dist_store(&self) -> &DistStore {
        &self.dist
    }

    /// The parallelism budget for the per-commit row recomputation.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Re-budgets the per-commit row recomputation. The construction-time
    /// knob also sharded the APSP build (already done); this updates the
    /// only place the evaluator consults it afterwards, so a session
    /// reusing a cached build under a new config stays faithful to
    /// `Parallelism::Off`'s never-spawn contract (and vice versa). Never
    /// affects results — the sharded diff is bit-for-bit the sequential
    /// one.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Consumes the evaluator, returning the working graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Current per-type within-L counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Net applied mutations (applies minus undos) since construction.
    /// A fork and its main evaluator agree on this exactly when every
    /// commit has been replayed — the cheap half of the fork sync check.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Unordered vertex pairs currently within L, maintained in O(1) per
    /// changed cell.
    pub fn live_pairs(&self) -> usize {
        self.live_pairs
    }

    /// Estimated cost of one removal trial, in distance-cell visits: the
    /// mean within-L ball bounds the affected-source count, and each
    /// source costs one stored-row scan — `O(ball)` sparse, `O(|V|)`
    /// dense. This is the number the scan's `Auto` fallback weighs against
    /// thread-spawn overhead; it is a heuristic, never part of any
    /// equivalence contract.
    pub fn estimated_trial_cost(&self) -> usize {
        let n = self.graph.num_vertices();
        if n == 0 {
            return 1;
        }
        let mean_ball = (2 * self.live_pairs / n).max(1);
        let row_scan = if self.dist.is_sparse() { mean_ball } else { n };
        mean_ball.saturating_mul(row_scan).max(1)
    }

    /// `maxLO` and `N(maxLO)` of the current graph.
    pub fn assessment(&self) -> LoAssessment {
        LoAssessment::from_counts(&self.counts, self.types.denominators())
    }

    /// Assessment of the graph with `e` removed, without mutating state.
    ///
    /// # Panics
    /// Panics when `e` is not currently an edge.
    pub fn trial_remove(&mut self, e: Edge) -> LoAssessment {
        let (u, v) = e.endpoints();
        if self.l == 1 {
            // Only the pair (u, v) itself crosses the boundary.
            debug_assert!(self.graph.has_edge(u, v), "trial_remove of non-edge {e}");
            return self.single_pair_assessment(u, v, -1);
        }
        let removed = self.graph.remove_edge(u, v);
        assert!(removed, "trial_remove of non-edge {e}");
        self.collect_sources_from_dist(u, v);
        self.counts_scratch.copy_from_slice(&self.counts);
        for idx in 0..self.sources.len() {
            let i = self.sources[idx];
            self.bfs.run(&self.graph, i, self.l);
            let (dist, bfs, types, in_sources) =
                (&self.dist, &self.bfs, &self.types, &self.in_sources);
            let counts_scratch = &mut self.counts_scratch;
            // Removal never shortens: only stored (finite) pairs of row i
            // can change, and only by leaving the within-L set.
            dist.for_each_finite_in_row(i, |j, _old| {
                if in_sources[j as usize] && j < i {
                    return; // each unordered pair diffed from one source
                }
                if bfs.dist(j) == INF {
                    if let Some(t) = types.type_of(i, j) {
                        counts_scratch[t as usize] -= 1;
                    }
                }
            });
        }
        self.clear_sources();
        self.graph.add_edge(u, v);
        LoAssessment::from_counts(&self.counts_scratch, self.types.denominators())
    }

    /// Assessment of the graph with `e` inserted, without mutating state.
    ///
    /// Unlike removal, single-edge insertion has a closed form over the old
    /// distances — a new shortest path uses the inserted edge at most once,
    /// so `d'(i,j) = min(d(i,j), d(i,u)+1+d(v,j), d(i,v)+1+d(u,j))` — and
    /// every pair entering the `<= L` set has both legs inside the `L-1`
    /// balls around `u` and `v`. No BFS, no graph mutation: `O(|B_u| +
    /// |B_v| + |B_u| |B_v|)` per trial, which is what makes Algorithm 5's
    /// `O(|V|^2)` insertion candidate scans tractable.
    ///
    /// # Panics
    /// Panics when `e` already is an edge or touches out-of-range vertices.
    pub fn trial_insert(&mut self, e: Edge) -> LoAssessment {
        let (u, v) = e.endpoints();
        assert!(!self.graph.has_edge(u, v), "trial_insert of existing edge {e}");
        if self.l == 1 {
            return self.single_pair_assessment(u, v, 1);
        }
        self.collect_balls(u, v);
        self.counts_scratch.copy_from_slice(&self.counts);
        let l = self.l as u16;
        for a in 0..self.ball_a.len() {
            let (i, diu, div) = self.ball_a[a];
            for b in 0..self.ball_b.len() {
                let (j, dvj, duj) = self.ball_b[b];
                if i == j
                    || (i > j && self.in_ball_b[i as usize] && self.in_ball_a[j as usize])
                {
                    continue; // each unordered pair handled exactly once
                }
                if self.dist.get(i, j) != INF {
                    continue; // already within L; membership cannot change
                }
                let via1 = diu as u16 + 1 + dvj as u16;
                let via2 = div as u16 + 1 + duj as u16;
                if via1.min(via2) <= l {
                    if let Some(t) = self.types.type_of(i, j) {
                        self.counts_scratch[t as usize] += 1;
                    }
                }
            }
        }
        self.clear_balls();
        LoAssessment::from_counts(&self.counts_scratch, self.types.denominators())
    }

    /// Removes `e` permanently, updating distances and counts; returns an
    /// undo token.
    ///
    /// The change set is computed first (one BFS + stored-row diff per
    /// affected source, reads only) and applied second — two phases so the
    /// sparse backend never mutates a row mid-scan, and so the read phase
    /// can shard over the configured [`Parallelism`] (each changed cell is
    /// found by exactly one source, sources shard contiguously, shards
    /// merge in source order: the change list is identical to the
    /// sequential one for every worker count).
    pub fn apply_remove(&mut self, e: Edge) -> UndoToken {
        let (u, v) = e.endpoints();
        let removed = self.graph.remove_edge(u, v);
        assert!(removed, "apply_remove of non-edge {e}");
        // Sources from the *pre-removal* distances: the store still holds
        // them (the graph edge is already gone, but `dist` is stale-by-one).
        self.collect_sources_from_dist(u, v);
        let mut token = UndoToken {
            op: Op::Removed(e),
            dist_changes: Vec::new(),
            count_changes: Vec::new(),
            revision: self.revision + 1,
        };
        let workers =
            apply_workers(self.parallelism, self.sources.len(), !self.dist.is_sparse());
        let mut changes = std::mem::take(&mut self.changes);
        changes.clear();
        if workers <= 1 {
            for idx in 0..self.sources.len() {
                let i = self.sources[idx];
                self.bfs.run(&self.graph, i, self.l);
                let (dist, bfs, in_sources) = (&self.dist, &self.bfs, &self.in_sources);
                dist.for_each_finite_in_row(i, |j, old| {
                    if in_sources[j as usize] && j < i {
                        return;
                    }
                    let new = bfs.dist(j);
                    if new != old {
                        changes.push((i, j, old, new));
                    }
                });
            }
        } else {
            let (graph, dist, in_sources, l) =
                (&self.graph, &self.dist, &self.in_sources, self.l);
            let n = graph.num_vertices();
            let shards = pool::run_sharded(&self.sources, workers, |_offset, shard| {
                let mut bfs = TruncatedBfs::new(n);
                let mut out: Vec<(VertexId, VertexId, u8, u8)> = Vec::new();
                for &i in shard {
                    bfs.run(graph, i, l);
                    dist.for_each_finite_in_row(i, |j, old| {
                        if in_sources[j as usize] && j < i {
                            return;
                        }
                        let new = bfs.dist(j);
                        if new != old {
                            out.push((i, j, old, new));
                        }
                    });
                }
                out
            });
            for shard in shards {
                changes.extend(shard);
            }
        }
        for &(i, j, old, new) in &changes {
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            token.dist_changes.push((a, b, old));
            self.dist.set(a, b, new);
            if new == INF {
                self.live_pairs -= 1;
                if let Some(t) = self.types.type_of(i, j) {
                    self.counts[t as usize] -= 1;
                    token.count_changes.push((t, -1));
                }
            }
        }
        self.changes = changes;
        self.clear_sources();
        self.revision += 1;
        self.top_two = None;
        token
    }

    /// Inserts `e` permanently, updating distances and counts; returns an
    /// undo token. Uses the same closed form as [`Self::trial_insert`]; the
    /// ball snapshots are taken from the pre-insertion store, so in-place
    /// cell updates cannot contaminate later reads (each unordered pair is
    /// visited exactly once).
    pub fn apply_insert(&mut self, e: Edge) -> UndoToken {
        let (u, v) = e.endpoints();
        let added = self.graph.add_edge(u, v);
        assert!(added, "apply_insert of existing edge {e}");
        self.collect_balls(u, v);
        let mut token = UndoToken {
            op: Op::Inserted(e),
            dist_changes: Vec::new(),
            count_changes: Vec::new(),
            revision: self.revision + 1,
        };
        let l = self.l as u16;
        for a in 0..self.ball_a.len() {
            let (i, diu, div) = self.ball_a[a];
            for b in 0..self.ball_b.len() {
                let (j, dvj, duj) = self.ball_b[b];
                if i == j
                    || (i > j && self.in_ball_b[i as usize] && self.in_ball_a[j as usize])
                {
                    continue;
                }
                let via1 = diu as u16 + 1 + dvj as u16;
                let via2 = div as u16 + 1 + duj as u16;
                let best = via1.min(via2);
                if best > l {
                    continue;
                }
                let old = self.dist.get(i, j);
                let best = best as u8;
                if old == INF || best < old {
                    let (x, y) = if i < j { (i, j) } else { (j, i) };
                    token.dist_changes.push((x, y, old));
                    self.dist.set(x, y, best);
                    if old == INF {
                        self.live_pairs += 1;
                        if let Some(t) = self.types.type_of(i, j) {
                            self.counts[t as usize] += 1;
                            token.count_changes.push((t, 1));
                        }
                    }
                }
            }
        }
        self.clear_balls();
        self.revision += 1;
        self.top_two = None;
        token
    }

    /// Rolls back the most recent un-undone apply. Tokens must be returned
    /// in LIFO order.
    ///
    /// # Panics
    /// Panics when tokens are undone out of order.
    pub fn undo(&mut self, token: UndoToken) {
        assert_eq!(
            token.revision, self.revision,
            "undo out of order: token revision {} vs evaluator {}",
            token.revision, self.revision
        );
        for &(i, j, old) in &token.dist_changes {
            let cur = self.dist.get(i, j);
            if cur == INF && old != INF {
                self.live_pairs += 1;
            } else if cur != INF && old == INF {
                self.live_pairs -= 1;
            }
            self.dist.set(i, j, old);
        }
        for &(t, delta) in &token.count_changes {
            let slot = &mut self.counts[t as usize];
            *slot = (*slot as i64 - delta) as u64;
        }
        match token.op {
            Op::Removed(e) => {
                self.graph.add_edge(e.u(), e.v());
            }
            Op::Inserted(e) => {
                self.graph.remove_edge(e.u(), e.v());
            }
        }
        self.revision -= 1;
        self.top_two = None;
    }

    /// Captures the forward diff of the most recent apply on `self` —
    /// `token` must be that apply's (not yet undone) token. The new cell
    /// values are read back from `self`, so the delta replays the apply
    /// exactly, cell for cell, on any backend.
    ///
    /// # Panics
    /// Panics when `token` is not the evaluator's most recent apply.
    pub fn commit_delta(&self, token: &UndoToken) -> CommitDelta {
        assert_eq!(
            token.revision, self.revision,
            "commit_delta of a stale token: token revision {} vs evaluator {}",
            token.revision, self.revision
        );
        CommitDelta {
            op: token.op,
            dist_changes: token
                .dist_changes
                .iter()
                .map(|&(i, j, _old)| (i, j, self.dist.get(i, j)))
                .collect(),
            count_changes: token.count_changes.clone(),
        }
    }

    /// Replays a captured [`CommitDelta`] onto this evaluator, which must
    /// be state-identical to the evaluator the delta was captured from as
    /// of *before* that apply (the fork contract: forks only ever mutate
    /// through replayed commits, so they stay identical forever). Runs in
    /// O(changed cells) — no BFS, no allocation beyond the delta itself.
    /// Cell addressing is `(i, j)`, so the fork and the delta's source may
    /// even use different store backends.
    ///
    /// # Panics
    /// Panics (debug) when the edge flip does not apply, i.e. the fork was
    /// out of sync.
    pub fn replay_commit(&mut self, delta: &CommitDelta) {
        match delta.op {
            Op::Removed(e) => {
                let removed = self.graph.remove_edge(e.u(), e.v());
                debug_assert!(removed, "replay of removal {e} on an out-of-sync fork");
            }
            Op::Inserted(e) => {
                let added = self.graph.add_edge(e.u(), e.v());
                debug_assert!(added, "replay of insertion {e} on an out-of-sync fork");
            }
        }
        for &(i, j, new) in &delta.dist_changes {
            let cur = self.dist.get(i, j);
            if cur == INF && new != INF {
                self.live_pairs += 1;
            } else if cur != INF && new == INF {
                self.live_pairs -= 1;
            }
            self.dist.set(i, j, new);
        }
        for &(t, d) in &delta.count_changes {
            let slot = &mut self.counts[t as usize];
            *slot = (*slot as i64 + d) as u64;
        }
        self.revision += 1;
        self.top_two = None;
    }

    /// Replays a coalesced [`BatchDelta`] onto this evaluator, which must
    /// be in sync as of *before* the batch's first absorbed delta. One
    /// write per distinct cell, one add per distinct type — equivalent to
    /// replaying each source delta via [`OpacityEvaluator::replay_commit`]
    /// in order, including the final revision (advanced by the batch's
    /// length, so the fork set's revision-sync guard holds).
    pub fn replay_batch(&mut self, batch: &BatchDelta) {
        for op in &batch.ops {
            match *op {
                Op::Removed(e) => {
                    let removed = self.graph.remove_edge(e.u(), e.v());
                    debug_assert!(removed, "batched replay of removal {e} on an out-of-sync fork");
                }
                Op::Inserted(e) => {
                    let added = self.graph.add_edge(e.u(), e.v());
                    debug_assert!(added, "batched replay of insertion {e} on an out-of-sync fork");
                }
            }
        }
        for &(i, j, new) in &batch.dist_changes {
            let cur = self.dist.get(i, j);
            if cur == INF && new != INF {
                self.live_pairs += 1;
            } else if cur != INF && new == INF {
                self.live_pairs -= 1;
            }
            self.dist.set(i, j, new);
        }
        for &(t, d) in &batch.count_changes {
            let slot = &mut self.counts[t as usize];
            *slot = (*slot as i64 + d) as u64;
        }
        self.revision += batch.ops.len() as u64;
        if !batch.is_empty() {
            self.top_two = None;
        }
    }

    /// Applies an **external** edge event — an insert or delete that came
    /// from outside the greedy scan (a churn stream), not from a strategy's
    /// candidate selection — and returns its forward [`CommitDelta`] for
    /// fork replay. External streams are noisy: inserting an edge that
    /// already exists, deleting one that does not, or touching a vertex
    /// beyond the graph are **no-ops** and return `None` (the strict
    /// [`OpacityEvaluator::apply_insert`] / [`OpacityEvaluator::apply_remove`]
    /// panic on those, which is right for internal moves where a duplicate
    /// is a programming error). The change is permanent — no undo token
    /// survives; external events are facts about the world, not search
    /// moves to roll back.
    pub fn apply_external(&mut self, e: Edge, insert: bool) -> Option<CommitDelta> {
        let (u, v) = e.endpoints();
        if (v as usize) >= self.graph.num_vertices() {
            return None; // u < v by Edge's canonical form, so v covers both
        }
        let present = self.graph.has_edge(u, v);
        let token = match (insert, present) {
            (true, true) | (false, false) => return None,
            (true, false) => self.apply_insert(e),
            (false, true) => self.apply_remove(e),
        };
        Some(self.commit_delta(&token))
    }

    /// Full recomputation of distances and counts — the reference the
    /// incremental path is validated against.
    pub fn recompute_full(&self) -> (DistanceMatrix, Vec<u64>) {
        let dist = ApspEngine::TruncatedBfs.compute(&self.graph, self.l);
        let counts = crate::opacity::count_within_l(&dist, &self.types, self.l);
        (dist, counts)
    }

    /// Debug check: incremental state equals a full recomputation
    /// (logically — the store backend is irrelevant).
    pub fn verify_consistency(&self) -> Result<(), String> {
        let (dist, counts) = self.recompute_full();
        if self.dist != dist {
            for (i, j, d) in dist.iter_pairs() {
                if self.dist.get(i, j) != d {
                    return Err(format!(
                        "distance mismatch at ({i}, {j}): incremental {} vs full {d}",
                        self.dist.get(i, j)
                    ));
                }
            }
            return Err("store disagrees with full recompute (extra live entries)".into());
        }
        if counts != self.counts {
            return Err(format!(
                "count mismatch: incremental {:?} vs full {counts:?}",
                self.counts
            ));
        }
        let live = self.dist.live_pairs();
        if live != self.live_pairs {
            return Err(format!(
                "live-pair counter drifted: cached {} vs store {live}",
                self.live_pairs
            ));
        }
        Ok(())
    }

    /// L = 1 fast path: flipping edge `(u, v)` changes exactly that pair,
    /// i.e. one type's count by ±1. With the cached top-two opacity values
    /// the resulting `(maxLO, N)` follows in O(1).
    fn single_pair_assessment(&mut self, u: VertexId, v: VertexId, delta: i64) -> LoAssessment {
        let Some(t) = self.types.type_of(u, v) else {
            return self.assessment();
        };
        let den = self.types.denominators()[t as usize];
        if den == 0 {
            return self.assessment();
        }
        let top = *self
            .top_two
            .get_or_insert_with(|| TopTwo::scan(&self.counts, self.types.denominators()));
        let old = Ratio { num: self.counts[t as usize], den };
        let new = Ratio { num: (self.counts[t as usize] as i64 + delta) as u64, den };

        use std::cmp::Ordering::*;
        // Remove one instance of `old` from the cached top values.
        let base = if old.cmp(top.first) == Equal {
            if top.n_first > 1 {
                Some((top.first, top.n_first - 1))
            } else {
                top.second
            }
        } else {
            // `old` is below the max; the max is untouched.
            Some((top.first, top.n_first))
        };
        // Fold `new` back in.
        match base {
            None => LoAssessment::new(new.num, new.den, 1),
            Some((b, nb)) => match new.cmp(b) {
                Greater => LoAssessment::new(new.num, new.den, 1),
                Equal => LoAssessment::new(b.num, b.den, nb + 1),
                Less => LoAssessment::new(b.num, b.den, nb),
            },
        }
    }

    /// `S = { i : min(d(i,u), d(i,v)) <= L-1 }`, ascending, from the
    /// stored distances: the endpoints themselves plus every finite entry
    /// within `L-1` of either stored row — O(ball(u) + ball(v)) on the
    /// sparse backend, one row scan each on the dense one.
    fn collect_sources_from_dist(&mut self, u: VertexId, v: VertexId) {
        let cutoff = self.l - 1;
        self.sources.clear();
        let (dist, in_sources, sources) = (&self.dist, &mut self.in_sources, &mut self.sources);
        let mut add = |i: VertexId| {
            if !in_sources[i as usize] {
                in_sources[i as usize] = true;
                sources.push(i);
            }
        };
        add(u); // d(u, u) = 0 <= cutoff, always a source
        add(v);
        dist.for_each_finite_in_row(u, |i, d| {
            if d <= cutoff {
                add(i);
            }
        });
        dist.for_each_finite_in_row(v, |i, d| {
            if d <= cutoff {
                add(i);
            }
        });
        self.sources.sort_unstable();
    }

    /// Snapshots the `L-1` balls around `u` and `v` from the stored (old)
    /// distances: `ball_a = { (i, d(i,u), d(i,v)) : d(i,u) <= L-1 }`
    /// ascending, and symmetrically for `ball_b` around `v`. The two
    /// stored rows are read once each into INF-initialized scratch (`du`,
    /// `dv`), so cross-distances cost O(1) lookups instead of per-pair
    /// store probes.
    fn collect_balls(&mut self, u: VertexId, v: VertexId) {
        let cutoff = self.l - 1;
        self.ball_a.clear();
        self.ball_b.clear();
        {
            let (dist, du, dv) = (&self.dist, &mut self.du, &mut self.dv);
            let (du_touched, dv_touched) = (&mut self.du_touched, &mut self.dv_touched);
            du[u as usize] = 0;
            du_touched.push(u);
            dist.for_each_finite_in_row(u, |x, d| {
                du[x as usize] = d;
                du_touched.push(x);
            });
            dv[v as usize] = 0;
            dv_touched.push(v);
            dist.for_each_finite_in_row(v, |x, d| {
                dv[x as usize] = d;
                dv_touched.push(x);
            });
        }
        for &x in &self.du_touched {
            let d = self.du[x as usize];
            if d <= cutoff {
                self.ball_a.push((x, d, self.dv[x as usize]));
                self.in_ball_a[x as usize] = true;
            }
        }
        for &x in &self.dv_touched {
            let d = self.dv[x as usize];
            if d <= cutoff {
                self.ball_b.push((x, d, self.du[x as usize]));
                self.in_ball_b[x as usize] = true;
            }
        }
        // The apply/trial pair loops must visit pairs in the dense scan's
        // ascending-id order so journals are backend-identical.
        self.ball_a.sort_unstable_by_key(|&(x, _, _)| x);
        self.ball_b.sort_unstable_by_key(|&(x, _, _)| x);
        for &x in &self.du_touched {
            self.du[x as usize] = INF;
        }
        self.du_touched.clear();
        for &x in &self.dv_touched {
            self.dv[x as usize] = INF;
        }
        self.dv_touched.clear();
    }

    fn clear_balls(&mut self) {
        for &(i, _, _) in &self.ball_a {
            self.in_ball_a[i as usize] = false;
        }
        for &(j, _, _) in &self.ball_b {
            self.in_ball_b[j as usize] = false;
        }
    }

    fn clear_sources(&mut self) {
        for &i in &self.sources {
            self.in_sources[i as usize] = false;
        }
        self.sources.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::from_edges(
            7,
            [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4), (2, 4), (2, 5), (3, 4), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    /// Both store backends, for backend-parametric tests.
    const BACKENDS: [StoreBackend; 2] = [StoreBackend::Dense, StoreBackend::Sparse];

    fn evaluator(l: u8) -> OpacityEvaluator {
        OpacityEvaluator::new(paper_graph(), &TypeSpec::DegreePairs, l)
    }

    fn evaluator_on(l: u8, backend: StoreBackend) -> OpacityEvaluator {
        OpacityEvaluator::with_options(
            paper_graph(),
            &TypeSpec::DegreePairs,
            l,
            ApspEngine::default(),
            Parallelism::Off,
            backend,
        )
    }

    #[test]
    fn initial_assessment_matches_algorithm_1() {
        let ev = evaluator(1);
        let a = ev.assessment();
        assert_eq!(a.as_f64(), 1.0);
        assert_eq!(a.n_at_max(), 2);
        ev.verify_consistency().unwrap();
    }

    #[test]
    fn trial_remove_matches_full_recomputation() {
        for backend in BACKENDS {
            for l in 1..=3u8 {
                let mut ev = evaluator_on(l, backend);
                for e in paper_graph().edge_vec() {
                    let trial = ev.trial_remove(e);
                    let mut g = paper_graph();
                    g.remove_edge(e.u(), e.v());
                    let full = reference_assessment(&g, ev.types(), l);
                    assert_eq!(trial.ratio(), full.ratio(), "edge {e}, L={l}, {backend}");
                    assert_eq!(trial.n_at_max(), full.n_at_max(), "edge {e}, L={l}, {backend}");
                    // Trial must not change state.
                    ev.verify_consistency().unwrap();
                }
            }
        }
    }

    #[test]
    fn trial_insert_matches_full_recomputation() {
        for backend in BACKENDS {
            for l in 1..=3u8 {
                let mut ev = evaluator_on(l, backend);
                for e in paper_graph().non_edges().collect::<Vec<_>>() {
                    let trial = ev.trial_insert(e);
                    let mut g = paper_graph();
                    g.add_edge(e.u(), e.v());
                    let full = reference_assessment(&g, ev.types(), l);
                    assert_eq!(trial.ratio(), full.ratio(), "edge {e}, L={l}, {backend}");
                    ev.verify_consistency().unwrap();
                }
            }
        }
    }

    #[test]
    fn apply_then_undo_restores_everything() {
        for backend in BACKENDS {
            for l in 1..=3u8 {
                let mut ev = evaluator_on(l, backend);
                let before_counts = ev.counts().to_vec();
                let e = Edge::new(1, 4);
                let token = ev.apply_remove(e);
                assert!(!ev.graph().has_edge(1, 4));
                ev.verify_consistency().unwrap();
                ev.undo(token);
                assert!(ev.graph().has_edge(1, 4));
                assert_eq!(ev.counts(), before_counts.as_slice(), "L={l}, {backend}");
                ev.verify_consistency().unwrap();
            }
        }
    }

    #[test]
    fn nested_apply_undo_is_lifo() {
        for backend in BACKENDS {
            let mut ev = evaluator_on(2, backend);
            let t1 = ev.apply_remove(Edge::new(1, 4));
            let t2 = ev.apply_insert(Edge::new(0, 6));
            ev.verify_consistency().unwrap();
            ev.undo(t2);
            ev.undo(t1);
            ev.verify_consistency().unwrap();
            assert_eq!(ev.graph(), &paper_graph());
        }
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn undo_rejects_wrong_order() {
        let mut ev = evaluator(2);
        let t1 = ev.apply_remove(Edge::new(1, 4));
        let _t2 = ev.apply_insert(Edge::new(0, 6));
        ev.undo(t1); // t2 still outstanding
    }

    #[test]
    fn applies_compose_with_full_recompute() {
        for backend in BACKENDS {
            let mut ev = evaluator_on(3, backend);
            let _ = ev.apply_remove(Edge::new(1, 4));
            let _ = ev.apply_remove(Edge::new(2, 5));
            let _ = ev.apply_insert(Edge::new(0, 6));
            ev.verify_consistency().unwrap();
            let a = ev.assessment();
            let full = reference_assessment(ev.graph(), ev.types(), 3);
            assert_eq!(a.ratio(), full.ratio());
        }
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn trial_remove_rejects_non_edges() {
        let mut ev = evaluator(2);
        ev.trial_remove(Edge::new(0, 6));
    }

    #[test]
    #[should_panic(expected = "existing edge")]
    fn trial_insert_rejects_existing_edges() {
        let mut ev = evaluator(2);
        ev.trial_insert(Edge::new(0, 1));
    }

    /// A replayed fork is state-identical to the evaluator it mirrors:
    /// same distances, counts, graph, and (crucially for the scan) the
    /// same trial results afterwards — on both backends.
    #[test]
    fn replay_commit_keeps_forks_identical() {
        for backend in BACKENDS {
            for l in 1..=3u8 {
                let mut main = evaluator_on(l, backend);
                let mut fork = main.clone();
                for (edge, insert) in
                    [(Edge::new(1, 4), false), (Edge::new(0, 6), true), (Edge::new(2, 5), false)]
                {
                    let token =
                        if insert { main.apply_insert(edge) } else { main.apply_remove(edge) };
                    let delta = main.commit_delta(&token);
                    fork.replay_commit(&delta);
                    fork.verify_consistency().unwrap();
                    assert_eq!(fork.graph(), main.graph(), "L={l}, {backend}");
                    assert_eq!(fork.counts(), main.counts(), "L={l}, {backend}");
                    for e in main.graph().edge_vec() {
                        let a = main.trial_remove(e);
                        let b = fork.trial_remove(e);
                        assert_eq!(a.ratio(), b.ratio(), "trial {e} diverged, L={l}");
                        assert_eq!(a.n_at_max(), b.n_at_max(), "trial {e} diverged, L={l}");
                    }
                }
            }
        }
    }

    /// A delta captured on one backend replays exactly on the other: the
    /// `(i, j)` cell addressing owes nothing to the source's layout.
    #[test]
    fn commit_deltas_replay_across_backends() {
        for l in 1..=3u8 {
            let mut dense_main = evaluator_on(l, StoreBackend::Dense);
            let mut sparse_fork = evaluator_on(l, StoreBackend::Sparse);
            for (edge, insert) in
                [(Edge::new(1, 4), false), (Edge::new(0, 6), true), (Edge::new(4, 5), false)]
            {
                let token = if insert {
                    dense_main.apply_insert(edge)
                } else {
                    dense_main.apply_remove(edge)
                };
                let delta = dense_main.commit_delta(&token);
                sparse_fork.replay_commit(&delta);
                sparse_fork.verify_consistency().unwrap();
                assert_eq!(sparse_fork.graph(), dense_main.graph(), "L={l}");
                assert_eq!(sparse_fork.counts(), dense_main.counts(), "L={l}");
            }
        }
    }

    /// Regression (issue 7 satellite): a batch of deltas coalesced into
    /// one [`BatchDelta`] replays to **exactly** the state that replaying
    /// each delta in order produces — graph, distances, counts, live-pair
    /// counter, and revision — even when later events in the batch rewrite
    /// (or revert) cells touched by earlier ones, on both backends.
    #[test]
    fn batched_replay_matches_per_event_replay() {
        // Remove then re-insert the same edge inside one batch: its cells
        // take two values, and the coalesced patch must keep the last.
        let script = [
            (Edge::new(1, 4), false),
            (Edge::new(0, 6), true),
            (Edge::new(1, 4), true),
            (Edge::new(2, 5), false),
        ];
        for backend in BACKENDS {
            for l in 1..=3u8 {
                let mut main = evaluator_on(l, backend);
                let mut per_event = main.clone();
                let mut batched = main.clone();
                let mut batch = BatchDelta::new();
                let mut uncoalesced_cells = 0;
                for (edge, insert) in script {
                    let token =
                        if insert { main.apply_insert(edge) } else { main.apply_remove(edge) };
                    let delta = main.commit_delta(&token);
                    uncoalesced_cells += delta.changed_cells();
                    per_event.replay_commit(&delta);
                    batch.absorb(&delta);
                }
                assert_eq!(batch.len(), script.len());
                assert!(
                    batch.distinct_cells() <= uncoalesced_cells,
                    "coalescing may never grow the patch"
                );
                batched.replay_batch(&batch);
                assert_eq!(batched.revision(), per_event.revision(), "L={l}, {backend}");
                assert_eq!(batched.graph(), per_event.graph(), "L={l}, {backend}");
                assert_eq!(batched.counts(), per_event.counts(), "L={l}, {backend}");
                assert_eq!(batched.live_pairs(), per_event.live_pairs(), "L={l}, {backend}");
                batched.verify_consistency().unwrap();
            }
        }
    }

    /// An empty batch replays as a true no-op (same revision, no cache
    /// invalidation needed).
    #[test]
    fn empty_batch_replay_is_a_noop() {
        let mut ev = evaluator(2);
        let before = ev.revision();
        ev.replay_batch(&BatchDelta::new());
        assert_eq!(ev.revision(), before);
        ev.verify_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "stale token")]
    fn commit_delta_rejects_stale_tokens() {
        let mut ev = evaluator(2);
        let t1 = ev.apply_remove(Edge::new(1, 4));
        let _t2 = ev.apply_remove(Edge::new(2, 5));
        ev.commit_delta(&t1); // t1 is no longer the most recent apply
    }

    /// Trial/apply/undo round-trips are exact on every storage layout —
    /// the nibble-packed and byte dense matrices across the
    /// `L > NIBBLE_MAX_L` boundary, and the sparse store (whose layout is
    /// L-independent but must agree with both).
    #[test]
    fn apply_undo_round_trips_across_the_packing_boundary() {
        use lopacity_apsp::NIBBLE_MAX_L;
        for backend in BACKENDS {
            for l in [NIBBLE_MAX_L - 1, NIBBLE_MAX_L, NIBBLE_MAX_L + 1, NIBBLE_MAX_L + 2] {
                let mut ev = evaluator_on(l, backend);
                let before_counts = ev.counts().to_vec();
                let t1 = ev.apply_remove(Edge::new(4, 5));
                let t2 = ev.apply_insert(Edge::new(0, 6));
                ev.verify_consistency().unwrap();
                let trial = ev.trial_remove(Edge::new(0, 1));
                let full = {
                    let mut g = ev.graph().clone();
                    g.remove_edge(0, 1);
                    reference_assessment(&g, ev.types(), l)
                };
                assert_eq!(trial.ratio(), full.ratio(), "L={l}, {backend}");
                ev.undo(t2);
                ev.undo(t1);
                ev.verify_consistency().unwrap();
                assert_eq!(ev.counts(), before_counts.as_slice(), "L={l}, {backend}");
                assert_eq!(ev.graph(), &paper_graph(), "L={l}, {backend}");
            }
        }
    }

    /// The sharded per-commit row recomputation produces the identical
    /// token (same cells, same order, same values) for every worker count,
    /// on both backends.
    #[test]
    fn parallel_apply_matches_sequential() {
        for backend in BACKENDS {
            for l in 2..=3u8 {
                let reference = {
                    let mut ev = evaluator_on(l, backend);
                    let t = ev.apply_remove(Edge::new(1, 4));
                    (ev.commit_delta(&t).dist_changes.clone(), ev.counts().to_vec())
                };
                for workers in [1usize, 2, 3, 8] {
                    let mut ev = OpacityEvaluator::with_options(
                        paper_graph(),
                        &TypeSpec::DegreePairs,
                        l,
                        ApspEngine::default(),
                        Parallelism::Fixed(workers),
                        backend,
                    );
                    let t = ev.apply_remove(Edge::new(1, 4));
                    let delta = ev.commit_delta(&t);
                    assert_eq!(
                        delta.dist_changes, reference.0,
                        "L={l} workers={workers} {backend}"
                    );
                    assert_eq!(ev.counts(), reference.1.as_slice());
                    ev.verify_consistency().unwrap();
                }
            }
        }
    }

    /// Pins the `Auto` decision for the per-commit shard: dense rows shard
    /// from [`APPLY_AUTO_MIN_SOURCES`] affected sources, sparse rows never
    /// (ball-bounded diffs are too cheap to ship to threads); `Fixed`
    /// forces sharding everywhere, `Off` none.
    #[test]
    fn apply_worker_decision_is_pinned() {
        use Parallelism::*;
        for dense in [false, true] {
            assert_eq!(apply_workers(Off, 10_000, dense), 1);
            assert_eq!(apply_workers(Fixed(4), 10, dense), 4);
            assert_eq!(apply_workers(Fixed(8), 3, dense), 3, "capped at source count");
        }
        assert_eq!(apply_workers(Auto, APPLY_AUTO_MIN_SOURCES - 1, true), 1);
        assert!(apply_workers(Auto, APPLY_AUTO_MIN_SOURCES, true) >= 1);
        assert_eq!(
            apply_workers(Auto, 1_000_000, false),
            1,
            "Auto never shards ball-bounded sparse diffs"
        );
        let cores = Auto.workers();
        assert_eq!(apply_workers(Auto, 10_000, true), cores.min(10_000));
    }

    /// The live-pair counter powering the trial-cost estimate tracks the
    /// store through apply/undo churn.
    #[test]
    fn live_pairs_and_trial_cost_track_mutations() {
        for backend in BACKENDS {
            let mut ev = evaluator_on(2, backend);
            assert_eq!(ev.live_pairs(), ev.dist_store().live_pairs());
            assert!(ev.estimated_trial_cost() >= 1);
            let t1 = ev.apply_remove(Edge::new(5, 6));
            assert_eq!(ev.live_pairs(), ev.dist_store().live_pairs(), "{backend}");
            let t2 = ev.apply_insert(Edge::new(0, 6));
            assert_eq!(ev.live_pairs(), ev.dist_store().live_pairs(), "{backend}");
            ev.undo(t2);
            ev.undo(t1);
            assert_eq!(ev.live_pairs(), ev.dist_store().live_pairs(), "{backend}");
            ev.verify_consistency().unwrap();
        }
    }

    /// Reference: assessment from a scratch APSP with a *fixed* type system
    /// (original degrees of the paper graph).
    fn reference_assessment(g: &Graph, types: &TypeSystem, l: u8) -> LoAssessment {
        let dist = ApspEngine::TruncatedBfs.compute(g, l);
        let counts = crate::opacity::count_within_l(&dist, types, l);
        LoAssessment::from_counts(&counts, types.denominators())
    }
}
